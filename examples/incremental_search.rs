//! Incremental ("give me more") retrieval with AM-IDJ (§4.2).
//!
//! An interactive user keeps asking for the next batch of closest pairs —
//! the stopping cardinality is never known in advance. AM-IDJ streams
//! results out in distance order, raising its estimated cutoff `eDmax`
//! stage by stage and *compensating* (re-examining only what earlier
//! stages skipped) whenever the estimate proved too small.
//!
//! Run with: `cargo run --release -p amdj-core --example incremental_search`

use amdj_core::{AmIdj, AmIdjOptions, JoinConfig};
use amdj_datagen::{uniform_points, unit_universe};
use amdj_rtree::{RTree, RTreeParams};

fn main() {
    // Uniform sets keep the distance spectrum spread out, so the cursor's
    // stage advances (and eDmax growth) are visible batch by batch.
    let red = uniform_points(40_000, unit_universe(), 7);
    let blue = uniform_points(40_000, unit_universe(), 8);
    let r = RTree::bulk_load(RTreeParams::paper_defaults(), red);
    let s = RTree::bulk_load(RTreeParams::paper_defaults(), blue);

    let opts = AmIdjOptions {
        initial_k: 1_000,
        ..AmIdjOptions::default()
    };
    let mut cursor = AmIdj::new(&r, &s, &JoinConfig::default(), opts);

    println!("streaming red–blue pairs in distance order, 1,000 at a time:\n");
    println!(
        "{:>10} {:>12} {:>7} {:>12} {:>14} {:>12}",
        "pairs", "last dist", "stage", "eDmax", "real dists", "resp. time"
    );
    let mut last = 0.0;
    for batch in 1..=5 {
        let mut got = 0;
        while got < 1_000 {
            match cursor.next() {
                Some(p) => {
                    assert!(p.dist >= last, "stream must be ordered");
                    last = p.dist;
                    got += 1;
                }
                None => break,
            }
        }
        let st = cursor.stats();
        println!(
            "{:>10} {:>12.6} {:>7} {:>12.6} {:>14} {:>11.3}s",
            batch * 1_000,
            last,
            cursor.stage(),
            cursor.current_edmax(),
            st.real_dist,
            st.response_time()
        );
    }
    println!("\nthe user said \"enough already!\" — no work was spent beyond the last batch.");
}
