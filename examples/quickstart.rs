//! Quickstart: build two R*-trees and fetch the 10 closest pairs.
//!
//! Run with: `cargo run --release -p amdj-core --example quickstart`

use amdj_core::{b_kdj, JoinConfig};
use amdj_datagen::{uniform_points, unit_universe};
use amdj_rtree::{RTree, RTreeParams};

fn main() {
    // Two synthetic point sets over the unit square.
    let red = uniform_points(20_000, unit_universe(), 1);
    let blue = uniform_points(20_000, unit_universe(), 2);

    // Index both sides (STR bulk load, 4 KB pages, 512 KB buffer — the
    // paper's configuration).
    let r = RTree::bulk_load(RTreeParams::paper_defaults(), red);
    let s = RTree::bulk_load(RTreeParams::paper_defaults(), blue);

    // k-distance join: the 10 closest red/blue pairs.
    let out = b_kdj(&r, &s, 10, &JoinConfig::default());

    println!("the 10 closest pairs:");
    for (rank, p) in out.results.iter().enumerate() {
        println!(
            "  #{:<2} red {:>6} — blue {:>6}   dist {:.6}",
            rank + 1,
            p.r,
            p.s,
            p.dist
        );
    }
    let st = out.stats;
    println!("\nwork done:");
    println!("  distance computations : {}", st.real_dist);
    println!("  main-queue insertions : {}", st.mainq_insertions);
    println!(
        "  node accesses         : {} ({} from disk)",
        st.node_requests, st.node_disk_reads
    );
    println!("  response time (model) : {:.3}s", st.response_time());
}
