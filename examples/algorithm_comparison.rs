//! Side-by-side run of all five algorithms of the paper on one workload:
//! HS-KDJ, B-KDJ, AM-KDJ, AM-IDJ (driven to k results), and SJ-SORT (with
//! its oracle Dmax). Verifies they return identical distance sequences and
//! prints the full statistics table.
//!
//! Run with: `cargo run --release -p amdj-core --example algorithm_comparison`

use amdj_core::{
    am_kdj, b_kdj, hs_kdj, sj_sort, AmIdj, AmIdjOptions, AmKdjOptions, JoinConfig, JoinOutput,
};
use amdj_datagen::tiger::Geography;
use amdj_rtree::{RTree, RTreeParams};

fn build() -> (RTree<2>, RTree<2>) {
    let geo = Geography::arizona_like(42);
    (
        RTree::bulk_load(RTreeParams::paper_defaults(), geo.streets(50_000)),
        RTree::bulk_load(RTreeParams::paper_defaults(), geo.hydro(15_000)),
    )
}

fn reset(r: &RTree<2>, s: &RTree<2>) {
    r.clear_buffer();
    s.clear_buffer();
    r.reset_stats();
    s.reset_stats();
}

fn main() {
    let k = 1_000;
    let cfg = JoinConfig::default();
    let (r, s) = build();
    println!(
        "joining {} streets × {} hydro objects, k = {k}\n",
        r.len(),
        s.len()
    );

    let mut runs: Vec<(&str, JoinOutput)> = Vec::new();

    reset(&r, &s);
    runs.push(("HS-KDJ", hs_kdj(&r, &s, k, &cfg)));

    reset(&r, &s);
    runs.push(("B-KDJ", b_kdj(&r, &s, k, &cfg)));

    reset(&r, &s);
    runs.push(("AM-KDJ", am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default())));

    // AM-IDJ has no k; drive the cursor until k pairs have streamed out.
    reset(&r, &s);
    let (results, stats) = {
        let mut cursor = AmIdj::new(&r, &s, &cfg, AmIdjOptions::default());
        let mut results = Vec::with_capacity(k);
        while results.len() < k {
            match cursor.next() {
                Some(p) => results.push(p),
                None => break,
            }
        }
        (results, cursor.stats())
    };
    runs.push(("AM-IDJ", JoinOutput { results, stats }));

    // SJ-SORT gets the true Dmax — the paper's favorable assumption.
    let dmax = runs[1].1.results.last().map_or(0.0, |p| p.dist);
    reset(&r, &s);
    runs.push(("SJ-SORT", sj_sort(&r, &s, k, dmax, &cfg)));

    // Cross-check: identical distance sequences everywhere.
    for (name, out) in &runs[1..] {
        for (i, (a, b)) in runs[0].1.results.iter().zip(out.results.iter()).enumerate() {
            assert!(
                (a.dist - b.dist).abs() < 1e-9,
                "{name} disagrees with HS-KDJ at rank {i}"
            );
        }
        assert_eq!(out.results.len(), runs[0].1.results.len());
    }
    println!("all five algorithms returned identical distance sequences ✓\n");

    println!(
        "{:<9} {:>13} {:>13} {:>13} {:>9} {:>9} {:>7} {:>11}",
        "algo", "axis dists", "real dists", "mainq ins", "nodes", "disk rd", "stages", "resp. time"
    );
    for (name, out) in &runs {
        let st = &out.stats;
        println!(
            "{:<9} {:>13} {:>13} {:>13} {:>9} {:>9} {:>7} {:>10.3}s",
            name,
            st.axis_dist,
            st.real_dist,
            st.mainq_insertions,
            st.node_requests,
            st.node_disk_reads,
            st.stages,
            st.response_time()
        );
    }
}
