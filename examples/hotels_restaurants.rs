//! The paper's motivating query (§1):
//!
//! ```sql
//! SELECT h.name, r.name
//! FROM Hotel h, Restaurant r
//! ORDER BY distance(h.location, r.location)
//! STOP AFTER k;
//! ```
//!
//! Hotels cluster downtown, restaurants cluster around nightlife spots —
//! a skewed, realistic city. We run the same `STOP AFTER k` query with
//! every k-distance-join algorithm and show they agree while doing very
//! different amounts of work.
//!
//! Run with: `cargo run --release -p amdj-core --example hotels_restaurants`

use amdj_core::{am_kdj, b_kdj, hs_kdj, AmKdjOptions, JoinConfig};
use amdj_datagen::{clustered_points, unit_universe};
use amdj_rtree::{RTree, RTreeParams};

fn main() {
    let k = 1_000;
    // 30k hotels in 8 districts, 60k restaurants in 25 hot spots.
    let hotels = clustered_points(30_000, 8, 0.03, unit_universe(), 71);
    let restaurants = clustered_points(60_000, 25, 0.02, unit_universe(), 72);

    let h = RTree::bulk_load(RTreeParams::paper_defaults(), hotels);
    let r = RTree::bulk_load(RTreeParams::paper_defaults(), restaurants);
    let cfg = JoinConfig::default();

    println!("STOP AFTER {k}: nearest hotel–restaurant pairs\n");

    let runs = [
        ("HS-KDJ (baseline)", hs_kdj(&h, &r, k, &cfg)),
        ("B-KDJ  (plane sweep)", b_kdj(&h, &r, k, &cfg)),
        (
            "AM-KDJ (multi-stage)",
            am_kdj(&h, &r, k, &cfg, &AmKdjOptions::default()),
        ),
    ];

    // All algorithms must agree on the distances.
    for w in runs.windows(2) {
        for (a, b) in w[0].1.results.iter().zip(w[1].1.results.iter()) {
            assert!((a.dist - b.dist).abs() < 1e-9, "algorithms disagree!");
        }
    }

    println!("top pairs (from B-KDJ):");
    for (rank, p) in runs[1].1.results.iter().take(8).enumerate() {
        println!(
            "  #{:<2} hotel {:>6} — restaurant {:>6}  dist {:.6}",
            rank + 1,
            p.r,
            p.s,
            p.dist
        );
    }

    println!(
        "\n{:<22} {:>14} {:>14} {:>12}",
        "algorithm", "real dists", "queue inserts", "resp. time"
    );
    for (name, out) in &runs {
        println!(
            "{:<22} {:>14} {:>14} {:>11.3}s",
            name,
            out.stats.real_dist,
            out.stats.mainq_insertions,
            out.stats.response_time()
        );
    }
    println!("\nsame answers, different work — that is the paper in one table.");
    println!("(B-KDJ computes ~3× fewer distances than HS-KDJ; AM-KDJ's eDmax");
    println!(" pruning also keeps the queue small, which is what wins on I/O.)");
}
