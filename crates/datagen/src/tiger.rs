//! TIGER/Line-like synthetic geography.
//!
//! The Arizona extract the paper joins — street segments against
//! hydrographic objects — has three properties the join algorithms care
//! about: (1) strong spatial skew (most objects concentrate in a few urban
//! areas), (2) small, elongated object MBRs, and (3) *correlated but not
//! identical* distributions of the two sets (rivers and streets both
//! follow population, imperfectly). This module synthesizes both sets from
//! one shared "geography" so those correlations hold:
//!
//! * towns: Zipf-sized Gaussian clusters of short street segments,
//! * highways: long polylines of segments crossing the universe,
//! * hydro: lake blobs biased near towns plus river polylines.

use amdj_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    clamp_point, gaussian_around, random_point, sample_weighted, std_normal, unit_universe,
    zipf_weights, Dataset,
};

/// Shared geography from which both data sets are drawn.
#[derive(Clone, Debug)]
pub struct Geography {
    towns: Vec<Point<2>>,
    town_weights: Vec<f64>,
    town_spread: f64,
    bounds: Rect<2>,
    seed: u64,
}

impl Geography {
    /// Builds a geography over the unit square: `towns` Zipf-weighted town
    /// centers (θ = 1.0) with the given spread (fraction of the diagonal).
    pub fn new(towns: usize, town_spread: f64, seed: u64) -> Self {
        assert!(towns > 0);
        let bounds = unit_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = (0..towns)
            .map(|_| random_point(&mut rng, &bounds))
            .collect();
        Geography {
            towns: centers,
            town_weights: zipf_weights(towns, 1.0),
            town_spread,
            bounds,
            seed,
        }
    }

    /// The paper-like default geography: 40 towns, spread 2 % of diagonal.
    pub fn arizona_like(seed: u64) -> Self {
        Geography::new(40, 0.02, seed)
    }

    /// The universe rectangle.
    pub fn bounds(&self) -> Rect<2> {
        self.bounds
    }

    fn sd(&self) -> f64 {
        self.town_spread * std::f64::consts::SQRT_2 // unit-square diagonal = √2
    }

    /// `n` street segments: 80 % short town-street segments around
    /// Zipf-weighted towns, 20 % highway segments along long polylines.
    /// Ids are `0..n`.
    pub fn streets(&self, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5752_4545_5453_0001);
        let mut out = Vec::with_capacity(n);
        let n_highway = n / 5;
        let n_town = n - n_highway;
        let seg_len = 0.0015;
        for i in 0..n_town {
            let town = self.towns[sample_weighted(&mut rng, &self.town_weights)];
            let a = clamp_point(gaussian_around(&mut rng, town, self.sd()), &self.bounds);
            // Streets are axis-biased: mostly horizontal or vertical.
            let along = rng.gen::<f64>() * seg_len + 0.0002;
            let across = rng.gen::<f64>() * seg_len * 0.05;
            let (dx, dy) = if rng.gen::<bool>() {
                (along, across)
            } else {
                (across, along)
            };
            let b = clamp_point(Point::new([a[0] + dx, a[1] + dy]), &self.bounds);
            out.push((Rect::from_corners(a, b), i as u64));
        }
        // Highways: polylines from one random town to another.
        let mut i = n_town;
        while i < n {
            let from = self.towns[sample_weighted(&mut rng, &self.town_weights)];
            let to = self.towns[sample_weighted(&mut rng, &self.town_weights)];
            let steps = ((from.dist(&to) / 0.003).ceil() as usize).clamp(2, 400);
            let mut prev = from;
            for s in 1..=steps {
                if i >= n {
                    break;
                }
                let t = s as f64 / steps as f64;
                let jitter = 0.0004;
                let next = clamp_point(
                    Point::new([
                        from[0] + (to[0] - from[0]) * t + std_normal(&mut rng) * jitter,
                        from[1] + (to[1] - from[1]) * t + std_normal(&mut rng) * jitter,
                    ]),
                    &self.bounds,
                );
                out.push((Rect::from_corners(prev, next), i as u64));
                prev = next;
                i += 1;
            }
        }
        out.truncate(n);
        out
    }

    /// `n` hydrographic objects: 60 % lake/pond blobs biased toward towns
    /// (population follows water), 40 % river segments along meandering
    /// polylines. Ids are `0..n`.
    pub fn hydro(&self, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4859_4452_4f00_0002);
        let mut out = Vec::with_capacity(n);
        let n_river = (n * 2) / 5;
        let n_lake = n - n_river;
        for i in 0..n_lake {
            // Half the lakes near towns (with a wider spread than streets),
            // half anywhere — rural water exists.
            let center = if rng.gen::<f64>() < 0.4 {
                let town = self.towns[sample_weighted(&mut rng, &self.town_weights)];
                clamp_point(
                    gaussian_around(&mut rng, town, self.sd() * 4.0),
                    &self.bounds,
                )
            } else {
                random_point(&mut rng, &self.bounds)
            };
            let w = rng.gen::<f64>() * 0.001 + 0.0001;
            let h = rng.gen::<f64>() * 0.001 + 0.0001;
            let hi = clamp_point(Point::new([center[0] + w, center[1] + h]), &self.bounds);
            out.push((Rect::from_corners(center, hi), i as u64));
        }
        // Rivers: meandering random walks.
        let mut i = n_lake;
        while i < n {
            let mut prev = random_point(&mut rng, &self.bounds);
            let mut heading = rng.gen::<f64>() * std::f64::consts::TAU;
            let reach = rng.gen_range(20..150);
            for _ in 0..reach {
                if i >= n {
                    break;
                }
                heading += std_normal(&mut rng) * 0.3;
                let step = 0.002;
                let next = clamp_point(
                    Point::new([
                        prev[0] + heading.cos() * step,
                        prev[1] + heading.sin() * step,
                    ]),
                    &self.bounds,
                );
                out.push((Rect::from_corners(prev, next), i as u64));
                prev = next;
                i += 1;
            }
        }
        out.truncate(n);
        out
    }
}

/// The default experiment workload at `scale` (1.0 reproduces the paper's
/// cardinalities: 633,461 streets and 189,642 hydro objects). Returns
/// `(streets, hydro)`.
pub fn arizona_workload(scale: f64, seed: u64) -> (Dataset, Dataset) {
    let geo = Geography::arizona_like(seed);
    let n_streets = ((633_461.0 * scale).round() as usize).max(1);
    let n_hydro = ((189_642.0 * scale).round() as usize).max(1);
    (geo.streets(n_streets), geo.hydro(n_hydro))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_bounds;

    #[test]
    fn streets_properties() {
        let geo = Geography::arizona_like(11);
        let s = geo.streets(5000);
        assert_eq!(s.len(), 5000);
        assert!(unit_universe().contains_rect(&dataset_bounds(&s).unwrap()));
        // Objects are small relative to the universe.
        let max_area = s.iter().map(|(r, _)| r.area()).fold(0.0, f64::max);
        assert!(max_area < 0.01, "street MBRs must be small, got {max_area}");
        // Deterministic.
        assert_eq!(geo.streets(5000), s);
    }

    #[test]
    fn hydro_properties() {
        let geo = Geography::arizona_like(11);
        let h = geo.hydro(2000);
        assert_eq!(h.len(), 2000);
        assert!(unit_universe().contains_rect(&dataset_bounds(&h).unwrap()));
        assert_eq!(geo.hydro(2000), h);
    }

    #[test]
    fn streets_are_skewed() {
        let geo = Geography::arizona_like(3);
        let s = geo.streets(10_000);
        // Count occupancy of a 20x20 grid: the top cell must hold far more
        // than the uniform share.
        let mut counts = std::collections::HashMap::new();
        for (r, _) in &s {
            let c = r.center();
            *counts
                .entry(((c[0] * 20.0) as i64, (c[1] * 20.0) as i64))
                .or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max > 500,
            "skew expected: top cell {max} of 10k, uniform share would be 25"
        );
    }

    #[test]
    fn streets_and_hydro_are_correlated() {
        // Hydro mass near the top towns exceeds what a uniform sample puts
        // in the same region (town disks can be clipped by the universe
        // edge, so compare against an empirical uniform baseline rather
        // than an area formula).
        let geo = Geography::arizona_like(5);
        let h = geo.hydro(20_000);
        let u = crate::uniform_points(20_000, unit_universe(), 999);
        let near = |d: &Dataset| {
            d.iter()
                .filter(|(r, _)| geo.towns.iter().take(5).any(|t| r.center().dist(t) < 0.1))
                .count()
        };
        let (hydro_near, uniform_near) = (near(&h), near(&u));
        // Rivers are town-agnostic and lakes only partially town-biased,
        // so the correlation is modest — like real geography. Require a
        // clear (>10%) excess over uniform.
        assert!(
            hydro_near as f64 > 1.1 * uniform_near as f64,
            "hydro near towns = {hydro_near}, uniform baseline = {uniform_near}"
        );
    }

    #[test]
    fn workload_scaling() {
        let (s, h) = arizona_workload(0.001, 1);
        assert_eq!(s.len(), 633);
        assert_eq!(h.len(), 190);
        let ratio = s.len() as f64 / h.len() as f64;
        assert!((ratio - 3.34).abs() < 0.1);
    }
}
