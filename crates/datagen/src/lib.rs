//! Deterministic synthetic spatial workload generators.
//!
//! The paper evaluates on TIGER/Line 97 data for Arizona — 633,461 street
//! segments joined with 189,642 hydrographic objects. That data set is not
//! redistributable here, so this crate synthesizes workloads with the
//! properties the join algorithms are sensitive to:
//!
//! * [`tiger::Geography::streets`] — many small, elongated segment MBRs
//!   clustered into "towns" (with Zipf-distributed town sizes) plus long
//!   highway polylines, mimicking a road network;
//! * [`tiger::Geography::hydro`] — clustered blobs (lakes/ponds) plus
//!   river polylines, spatially correlated with — but not identical to —
//!   the street distribution;
//! * [`uniform_points`] / [`uniform_rects`] — the uniformity baseline the
//!   paper's Equation (3) assumes;
//! * [`clustered_points`] — a Gaussian-mixture point cloud for skew
//!   experiments.
//!
//! All generators are deterministic in their seed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod tiger;

use amdj_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated data set: `(object MBR, object id)` pairs, ready for
/// `amdj_rtree::RTree::bulk_load`.
pub type Dataset = Vec<(Rect<2>, u64)>;

/// The unit square universe used by all default workloads.
pub fn unit_universe() -> Rect<2> {
    Rect::new([0.0, 0.0], [1.0, 1.0])
}

/// `n` points uniformly distributed over `bounds`.
pub fn uniform_points(n: usize, bounds: Rect<2>, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = random_point(&mut rng, &bounds);
            (Rect::from_point(p), i as u64)
        })
        .collect()
}

/// `n` axis-aligned rectangles with corners uniform in `bounds` and side
/// lengths uniform in `[0, max_side]` (clipped to the universe).
pub fn uniform_rects(n: usize, bounds: Rect<2>, max_side: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = random_point(&mut rng, &bounds);
            let w = rng.gen::<f64>() * max_side;
            let h = rng.gen::<f64>() * max_side;
            let hi = [
                (p[0] + w).min(bounds.hi()[0]),
                (p[1] + h).min(bounds.hi()[1]),
            ];
            (Rect::new(p.coords(), hi), i as u64)
        })
        .collect()
}

/// `n` points drawn from a mixture of `clusters` isotropic Gaussians whose
/// centers are uniform in `bounds`; `spread` is the standard deviation as a
/// fraction of the universe diagonal. Points are clamped to `bounds`.
pub fn clustered_points(
    n: usize,
    clusters: usize,
    spread: f64,
    bounds: Rect<2>,
    seed: u64,
) -> Dataset {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point<2>> = (0..clusters)
        .map(|_| random_point(&mut rng, &bounds))
        .collect();
    let diag = {
        let dx = bounds.side(0);
        let dy = bounds.side(1);
        (dx * dx + dy * dy).sqrt()
    };
    let sd = spread * diag;
    (0..n)
        .map(|i| {
            let c = centers[rng.gen_range(0..clusters)];
            let p = clamp_point(gaussian_around(&mut rng, c, sd), &bounds);
            (Rect::from_point(p), i as u64)
        })
        .collect()
}

/// Zipf weights `1/rank^theta`, normalized.
pub fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(theta)).collect();
    let sum: f64 = w.iter().sum();
    for v in &mut w {
        *v /= sum;
    }
    w
}

/// Samples an index from normalized `weights`.
pub fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let x = rng.gen::<f64>();
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    weights.len() - 1
}

pub(crate) fn random_point(rng: &mut StdRng, bounds: &Rect<2>) -> Point<2> {
    Point::new([
        bounds.lo()[0] + rng.gen::<f64>() * bounds.side(0),
        bounds.lo()[1] + rng.gen::<f64>() * bounds.side(1),
    ])
}

/// Box–Muller standard normal.
pub(crate) fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

pub(crate) fn gaussian_around(rng: &mut StdRng, c: Point<2>, sd: f64) -> Point<2> {
    Point::new([c[0] + std_normal(rng) * sd, c[1] + std_normal(rng) * sd])
}

pub(crate) fn clamp_point(p: Point<2>, bounds: &Rect<2>) -> Point<2> {
    Point::new([
        p[0].clamp(bounds.lo()[0], bounds.hi()[0]),
        p[1].clamp(bounds.lo()[1], bounds.hi()[1]),
    ])
}

/// The tight bounding rectangle of a data set (`None` when empty).
pub fn dataset_bounds(items: &Dataset) -> Option<Rect<2>> {
    let mut it = items.iter();
    let first = it.next()?.0;
    Some(it.fold(first, |acc, (r, _)| acc.union(r)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_deterministic_and_bounded() {
        let a = uniform_points(500, unit_universe(), 42);
        let b = uniform_points(500, unit_universe(), 42);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b, "same seed => same data");
        let c = uniform_points(500, unit_universe(), 43);
        assert_ne!(a, c, "different seed => different data");
        let bounds = dataset_bounds(&a).unwrap();
        assert!(unit_universe().contains_rect(&bounds));
    }

    #[test]
    fn uniform_rects_clipped() {
        let d = uniform_rects(300, unit_universe(), 0.2, 7);
        for (r, _) in &d {
            assert!(unit_universe().contains_rect(r));
        }
    }

    #[test]
    fn clustered_points_are_clustered() {
        let d = clustered_points(2000, 5, 0.01, unit_universe(), 9);
        assert_eq!(d.len(), 2000);
        // Crude skew check: the occupied area of a fine grid is small.
        let mut cells = std::collections::HashSet::new();
        for (r, _) in &d {
            let c = r.center();
            cells.insert(((c[0] * 50.0) as i64, (c[1] * 50.0) as i64));
        }
        assert!(
            cells.len() < 1000,
            "clustered data must occupy few cells, got {}",
            cells.len()
        );
        let u = uniform_points(2000, unit_universe(), 9);
        let mut ucells = std::collections::HashSet::new();
        for (r, _) in &u {
            let c = r.center();
            ucells.insert(((c[0] * 50.0) as i64, (c[1] * 50.0) as i64));
        }
        assert!(ucells.len() > cells.len());
    }

    #[test]
    fn zipf_weights_normalized_and_skewed() {
        let w = zipf_weights(100, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > w[50]);
        assert!(w[0] > 10.0 * w[99]);
    }

    #[test]
    fn sample_weighted_respects_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = vec![0.9, 0.1];
        let hits = (0..1000)
            .filter(|_| sample_weighted(&mut rng, &w) == 0)
            .count();
        assert!(hits > 800, "90% weight must dominate, got {hits}");
    }

    #[test]
    fn ids_are_sequential() {
        let d = uniform_points(10, unit_universe(), 0);
        let ids: Vec<u64> = d.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }
}
