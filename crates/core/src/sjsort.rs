//! SJ-SORT: the non-incremental baseline of §5 — an R-tree spatial join
//! (Brinkhoff et al., sync traversal with plane sweep) run with a
//! `within(Dmax)` predicate, followed by an external sort of the candidate
//! pairs.
//!
//! As in the paper, SJ-SORT is given the *true* `Dmax` for the requested
//! `k` — a deliberately favorable assumption (no method to estimate it is
//! known) that makes it a strong baseline.

use amdj_rtree::RTree;
use amdj_storage::codec::{put_f64, put_u64, Reader};
use amdj_storage::{ExternalSorter, PageId, SpillItem};

use crate::engine::sweep::{choose_setup, MarkMode, SweepScratch, SweepSink};
use crate::stats::Baseline;
use crate::{ItemRef, JoinConfig, JoinOutput, JoinStats, Pair, ResultPair};

/// A candidate object pair headed for the external sorter.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    dist: f64,
    r: u64,
    s: u64,
}

impl SpillItem for Candidate {
    fn key(&self) -> f64 {
        self.dist
    }
    fn encoded_len(&self) -> usize {
        24
    }
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.dist);
        put_u64(out, self.r);
        put_u64(out, self.s);
    }
    fn try_decode(rd: &mut Reader<'_>) -> Result<Self, amdj_storage::codec::CodecError> {
        Ok(Candidate {
            dist: rd.try_f64("candidate dist")?,
            r: rd.try_u64("candidate r id")?,
            s: rd.try_u64("candidate s id")?,
        })
    }
}

/// Sink that routes swept pairs either to the recursion worklist (node
/// pairs) or the caller's candidate consumer (object pairs); cutoff fixed
/// at `dmax`.
struct SjSink<'x, const D: usize> {
    dmax: f64,
    out: &'x mut dyn FnMut(f64, u64, u64),
    recurse: &'x mut Vec<(PageId, PageId)>,
}

impl<const D: usize> SweepSink<D> for SjSink<'_, D> {
    fn axis_cutoff(&self) -> f64 {
        self.dmax
    }
    fn real_cutoff(&self) -> f64 {
        self.dmax
    }
    fn fixed_axis_cutoff(&self) -> Option<f64> {
        Some(self.dmax)
    }
    fn emit(&mut self, pair: Pair<D>) {
        match (pair.a, pair.b) {
            (ItemRef::Object { oid: a }, ItemRef::Object { oid: b }) => {
                (self.out)(pair.dist, a, b);
            }
            (ItemRef::Node { page: a, .. }, ItemRef::Node { page: b, .. }) => {
                self.recurse.push((PageId(a), PageId(b)));
            }
            // Mixed pairs cannot arise: `visit` only sweeps level-matched
            // nodes.
            _ => unreachable!("sync traversal pairs are level-matched"),
        }
    }
}

/// Sync-traversal spatial join within `dmax` (Brinkhoff et al. with the
/// §3 plane sweep): every qualifying object pair is handed to `out`.
/// Shared by [`sj_sort`] and [`crate::within_join`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn visit<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    pr: PageId,
    ps: PageId,
    dmax: f64,
    cfg: &JoinConfig,
    out: &mut dyn FnMut(f64, u64, u64),
    stats: &mut JoinStats,
    scratch: &mut SweepScratch<D>,
) {
    let nr = r.fetch(pr);
    let ns = s.fetch(ps);
    if nr.level > ns.level {
        // Descend the deeper side alone until the levels meet.
        let smbr = ns.mbr();
        for e in &nr.entries {
            stats.real_dist += 1;
            if e.mbr.min_dist(&smbr) <= dmax {
                visit(r, s, PageId(e.child), ps, dmax, cfg, out, stats, scratch);
            }
        }
        return;
    }
    if ns.level > nr.level {
        let rmbr = nr.mbr();
        for e in &ns.entries {
            stats.real_dist += 1;
            if e.mbr.min_dist(&rmbr) <= dmax {
                visit(r, s, pr, PageId(e.child), dmax, cfg, out, stats, scratch);
            }
        }
        return;
    }
    // Same level: sweep children against children. The scratch is free to
    // reuse during recursion: its sweep output is fully drained into
    // `recurse` before any recursive call runs.
    let setup = choose_setup(&nr.mbr(), &ns.mbr(), dmax, cfg);
    scratch.expand_nodes(&nr, &ns, setup, cfg);
    stats.stage1_expansions += 1;
    let mut recurse = Vec::new();
    let mut sink = SjSink {
        dmax,
        out,
        recurse: &mut recurse,
    };
    scratch.sweep(&mut sink, stats, MarkMode::None);
    for (a, b) in recurse {
        visit(r, s, a, b, dmax, cfg, out, stats, scratch);
    }
}

/// Runs the SJ-SORT baseline: spatial join within `dmax` (the true k-th
/// distance, supplied by the caller), external sort, then the first `k`
/// pairs.
pub fn sj_sort<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    dmax: f64,
    cfg: &JoinConfig,
) -> JoinOutput {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let mut sorter = ExternalSorter::new(cfg.queue_mem_bytes, cfg.queue_cost);
    if let (Some(rp), Some(sp)) = (r.root_page(), s.root_page()) {
        if k > 0 {
            let mut out = |dist: f64, a: u64, b: u64| sorter.push(Candidate { dist, r: a, s: b });
            let mut scratch = SweepScratch::new();
            visit(r, s, rp, sp, dmax, cfg, &mut out, &mut stats, &mut scratch);
        }
    }
    stats.mainq_insertions = sorter.len();
    let mut stream = sorter.finish();
    let mut results = Vec::with_capacity(k.min(1 << 20));
    for cand in stream.by_ref() {
        if results.len() >= k {
            break;
        }
        results.push(ResultPair {
            r: cand.r,
            s: cand.s,
            dist: cand.dist,
        });
    }
    stats.results = results.len() as u64;
    let d = stream.disk_stats();
    stats.queue_page_reads = d.pages_read;
    stats.queue_page_writes = d.pages_written;
    baseline.finish(r, s, &mut stats, d.io_seconds);
    JoinOutput { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_with_oracle_dmax() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.3, 0.45);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        for k in [1, 25, 140] {
            let dmax = bruteforce::dmax_for_k(&a, &b, k).unwrap();
            let out = sj_sort(&r, &s, k, dmax, &JoinConfig::unbounded());
            let want = bruteforce::k_closest_pairs(&a, &b, k);
            assert_eq!(out.results.len(), k);
            for (got, exp) in out.results.iter().zip(want.iter()) {
                assert!((got.dist - exp.dist).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn different_tree_heights() {
        // A big R against a tiny S exercises the level-descent arms.
        let a = grid(20, 0.0, 0.0);
        let b = grid(2, 0.4, 0.4);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        assert!(r.height() > s.height());
        let k = 10;
        let dmax = bruteforce::dmax_for_k(&a, &b, k).unwrap();
        let out = sj_sort(&r, &s, k, dmax, &JoinConfig::unbounded());
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        for (got, exp) in out.results.iter().zip(want.iter()) {
            assert!((got.dist - exp.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn sort_io_is_charged_under_budget() {
        let a = grid(15, 0.0, 0.0);
        let b = grid(15, 0.2, 0.3);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let k = 150;
        let dmax = bruteforce::dmax_for_k(&a, &b, k).unwrap();
        let mut cfg = JoinConfig::with_queue_memory(1024);
        cfg.queue_cost.page_size = 512;
        let out = sj_sort(&r, &s, k, dmax, &cfg);
        assert_eq!(out.results.len(), k);
        assert!(
            out.stats.queue_page_writes > 0,
            "external sort must spill runs"
        );
        assert!(out.stats.io_seconds > 0.0);
    }

    #[test]
    fn zero_k_does_no_traversal() {
        let a = grid(5, 0.0, 0.0);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let out = sj_sort(&r, &s, 0, 100.0, &JoinConfig::unbounded());
        assert!(out.results.is_empty());
        assert_eq!(out.stats.real_dist, 0);
    }

    #[test]
    fn candidate_count_exceeds_k_with_generous_dmax() {
        let a = grid(8, 0.0, 0.0);
        let b = grid(8, 0.5, 0.5);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let out = sj_sort(&r, &s, 5, 3.0, &JoinConfig::unbounded());
        assert_eq!(out.results.len(), 5);
        assert!(
            out.stats.mainq_insertions > 5,
            "overestimated Dmax inflates the sort input"
        );
    }
}
