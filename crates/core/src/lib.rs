//! Adaptive multi-stage spatial distance join processing.
//!
//! This crate implements the algorithms of *"Adaptive Multi-Stage Distance
//! Join Processing"* (Shin, Moon, Lee — SIGMOD 2000) over the
//! [`amdj_rtree::RTree`] index:
//!
//! The paper's join algorithms are thin configurations of one unified
//! [`engine`]: a pruning *policy* ([`engine::Exact`] or
//! [`engine::Aggressive`]) crossed with an execution *backend*
//! ([`engine::Sequential`] or [`engine::Parallel`]):
//!
//! | Algorithm | Entry point | Engine configuration | Paper section |
//! |---|---|---|---|
//! | HS-KDJ (uni-directional baseline) | [`hs_kdj`] | — (own loop) | §2.2 |
//! | HS-IDJ (incremental baseline) | [`HsIdj`] | — (own loop) | §2.2 |
//! | B-KDJ (bidirectional + optimized plane sweep) | [`b_kdj`] | Exact × Sequential | §3 |
//! | AM-KDJ (aggressive pruning + compensation) | [`am_kdj`] | Aggressive × Sequential | §4.1 |
//! | AM-IDJ (adaptive multi-stage incremental) | [`AmIdj`] | [`engine::StageDriver`] | §4.2 |
//! | SJ-SORT (spatial join + external sort baseline) | [`sj_sort`] | — (own loop) | §5 |
//! | Parallel B-KDJ | [`par_b_kdj`] | Exact × Parallel | — |
//! | Parallel AM-KDJ | [`par_am_kdj`] | Aggressive × Parallel | — |
//! | Parallel AM-IDJ | [`par_am_idj`] | StageDriver × Parallel | — |
//!
//! Every join takes its trees by `&RTree` — the page buffer synchronizes
//! internally — so joins can also run concurrently over shared indexes;
//! see the [`engine`] module docs for the parallel exactness argument and
//! the shared-bound ([`MinBound`]) soundness argument the parallel joins
//! rest on.
//!
//! Supporting machinery, each its own module:
//!
//! * [`Estimator`] — the `eDmax` estimation of §4.3 (Equation 3, with the
//!   arithmetic/geometric corrections of Equations 4 and 5), generalized
//!   to any dimension;
//! * [`DistanceQueue`] — the k-bounded max-heap producing `qDmax`;
//! * the main queue — a hybrid memory/disk [`amdj_storage::SpillQueue`]
//!   with Equation-3-derived segment boundaries (§4.4);
//! * [`JoinStats`] — the counters the paper's figures plot (distance
//!   computations, queue insertions, node accesses, modeled response
//!   time).
//!
//! # Quick start
//!
//! ```
//! use amdj_core::{b_kdj, JoinConfig};
//! use amdj_geom::{Point, Rect};
//! use amdj_rtree::{RTree, RTreeParams};
//!
//! let hotels: Vec<(Rect<2>, u64)> = (0..100)
//!     .map(|i| (Rect::from_point(Point::new([(i % 10) as f64, (i / 10) as f64])), i))
//!     .collect();
//! let restaurants: Vec<(Rect<2>, u64)> = (0..100)
//!     .map(|i| (Rect::from_point(Point::new([(i % 10) as f64 + 0.3, (i / 10) as f64 + 0.4])), i))
//!     .collect();
//!
//! let r = RTree::bulk_load(RTreeParams::paper_defaults(), hotels);
//! let s = RTree::bulk_load(RTreeParams::paper_defaults(), restaurants);
//! let out = b_kdj(&r, &s, 5, &JoinConfig::default());
//! assert_eq!(out.results.len(), 5);
//! assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod amidj;
mod amkdj;
mod bkdj;
pub mod bruteforce;
mod concurrent;
mod config;
mod distq;
pub mod engine;
mod estimate;
pub mod histogram;
mod hs;
mod knnjoin;
mod mainq;
mod pair;
pub mod serve;
mod sjsort;
mod stats;
mod within;

pub use amidj::AmIdj;
pub use amkdj::am_kdj;
pub use bkdj::b_kdj;
pub use concurrent::{par_am_idj, par_am_kdj, par_b_kdj};
pub use config::{AmIdjOptions, AmKdjOptions, Correction, EdmaxPolicy, JoinConfig, Partition};
pub use distq::DistanceQueue;
pub use engine::{
    idj_resumable, kdj_resumable, read_checkpoint, write_checkpoint, Checkpointed, EngineSnapshot,
    MinBound, PauseCtl, SnapshotError, SnapshotKind, TestSchedule,
};
pub use estimate::Estimator;
pub use histogram::HistogramEstimator;
pub use hs::{hs_kdj, HsIdj};
pub use knnjoin::{knn_join, KnnJoinOutput};
pub use pair::{ItemRef, Pair};
pub use sjsort::sj_sort;
pub use stats::{JoinOutput, JoinStats, ResultPair, MAX_TRACKED_WORKERS};
pub use within::within_join;
