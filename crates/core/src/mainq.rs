use amdj_storage::{DiskStats, SpillQueue, SpillQueueConfig};

use crate::{Estimator, JoinConfig, JoinStats, Pair};

/// How many Equation-3 segment boundaries to precompute.
const BOUNDARY_COUNT: usize = 64;

/// The main queue (`Q_M`): a facade over the hybrid memory/disk
/// [`SpillQueue`] that counts insertions into [`JoinStats`] and derives its
/// §4.4 segment boundaries from the estimator.
pub(crate) struct MainQueue<const D: usize> {
    q: SpillQueue<Pair<D>>,
    insertions: u64,
}

impl<const D: usize> MainQueue<D> {
    pub(crate) fn new(cfg: &JoinConfig, est: Option<&Estimator<D>>) -> Self {
        let boundaries = match est {
            Some(e) if cfg.queue_mem_bytes < usize::MAX && cfg.eq3_queue_boundaries => {
                // The spill queue's own per-item accounting, so the heap
                // capacity `n` behind the boundaries cannot drift from
                // what the queue actually holds.
                let per_item = SpillQueue::<Pair<D>>::per_item_cost(Pair::<D>::ENCODED_LEN);
                let n = (cfg.queue_mem_bytes / per_item).max(1);
                e.queue_boundaries(n, BOUNDARY_COUNT)
            }
            _ => Vec::new(),
        };
        let q = SpillQueue::new(SpillQueueConfig {
            mem_budget: cfg.queue_mem_bytes,
            boundaries,
            cost: cfg.queue_cost,
        });
        MainQueue { q, insertions: 0 }
    }

    pub(crate) fn push(&mut self, pair: Pair<D>) {
        self.insertions += 1;
        self.q.push(pair);
    }

    /// Total [`push`](MainQueue::push) calls (excluding
    /// [`unpop`](MainQueue::unpop) re-insertions).
    pub(crate) fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Re-inserts a pair without counting it as new work (used when a
    /// stage boundary parks the popped head). Routed through the spill
    /// queue's uncounted path so `SpillQueueStats` stays truthful too.
    pub(crate) fn unpop(&mut self, pair: Pair<D>) {
        self.q.reinsert(pair);
    }

    pub(crate) fn pop(&mut self) -> Option<Pair<D>> {
        self.q.pop()
    }

    pub(crate) fn peek_min(&mut self) -> Option<f64> {
        self.q.peek_min()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    #[allow(dead_code)] // symmetry with is_empty; used by experiments via stats
    pub(crate) fn len(&self) -> u64 {
        self.q.len()
    }

    pub(crate) fn disk_stats(&self) -> DiskStats {
        self.q.disk_stats()
    }

    /// Folds the queue's insertion count and disk traffic into `stats`
    /// and returns its modeled I/O seconds.
    pub(crate) fn account(&self, stats: &mut JoinStats) -> f64 {
        stats.mainq_insertions += self.insertions;
        let d = self.q.disk_stats();
        stats.queue_page_reads += d.pages_read;
        stats.queue_page_writes += d.pages_written;
        d.io_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ItemRef;
    use amdj_geom::Rect;

    fn pair(d: f64) -> Pair<2> {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        Pair {
            dist: d,
            a: ItemRef::Object { oid: 1 },
            b: ItemRef::Object { oid: 2 },
            a_mbr: r,
            b_mbr: r,
        }
    }

    #[test]
    fn counts_insertions_but_not_unpops() {
        let mut q: MainQueue<2> = MainQueue::new(&JoinConfig::unbounded(), None);
        q.push(pair(2.0));
        q.push(pair(1.0));
        let head = q.pop().unwrap();
        assert_eq!(head.dist, 1.0);
        q.unpop(head);
        assert_eq!(q.insertions(), 2);
        assert_eq!(q.len(), 2);
        // The underlying spill queue's own counters must agree: a parked
        // head is not a new insertion there either.
        assert_eq!(q.q.stats().insertions, 2);
        assert_eq!(q.q.stats().max_len, 2);
    }

    #[test]
    fn budgeted_queue_uses_boundaries_and_spills() {
        let est: Estimator<2> = Estimator::new(1.0, 1000, 1000);
        let cfg = JoinConfig::with_queue_memory(2048);
        let mut stats = JoinStats::default();
        let mut q: MainQueue<2> = MainQueue::new(&cfg, Some(&est));
        for i in 0..500 {
            q.push(pair((i % 37) as f64 * 0.001));
        }
        let mut last = -1.0;
        while let Some(p) = q.pop() {
            assert!(p.dist >= last);
            last = p.dist;
        }
        let io = q.account(&mut stats);
        assert_eq!(stats.queue_page_reads, q.disk_stats().pages_read);
        assert_eq!(stats.mainq_insertions, 500);
        assert!(io >= 0.0);
    }
}
