//! The claim-round execution path of the [`Parallel`] backend — with
//! peer stealing on ([`JoinConfig::steal`], the default) or off.
//!
//! A statically partitioned frontier lets a drained worker idle at the
//! stage barrier — on skewed frontiers (a clustered partition next to a
//! uniform one) that idle time dominates wall clock. Here the frontier
//! lives in a [`StealPool`]: one deque per worker, each sorted ascending
//! by key. A worker repeatedly *claims* a prefix of its own deque and
//! runs its driver over it; once its deque holds nothing below its claim
//! bound it scans the peers (most-loaded first) and steals the *tail*
//! half of a victim's claimable prefix — the victim keeps the near pairs
//! it is about to process, the thief takes the far ones. With
//! [`JoinConfig::steal`] off the peer scan is disabled: each worker
//! consumes exactly its own statically partitioned deque (incrementally,
//! through the same claim rounds) and idles once it drains, which is the
//! static-partitioning ablation `JoinStats::pairs_stolen == 0` pins.
//! Both modes share every other line — including the
//! drain-to-canonical-frontier suspend path, so `steal=false` joins are
//! checkpointable too.
//!
//! # Why dynamic claiming stays exact
//!
//! Any cut of the expansion DAG partitions the object-pair space, and
//! stealing only ever re-partitions the frontier — every seed is still
//! processed by exactly one worker. Two things do change:
//!
//! * **Past-`k` processing.** With a static partition a worker's first
//!   `k` emissions are its partition's top `k` (ascending pops), so it
//!   may stop at `k`. A stolen seed can arrive *after* the `k`-th
//!   emission and still hold closer pairs, so the stealing drivers
//!   ([`ExpansionDriver::run_stage_one_stealing`] /
//!   [`run_stage_two_stealing`]) keep consuming while the queue minimum
//!   beats the cutoff. Surplus results are sorted away by the canonical
//!   merge.
//! * **Dropped seeds must be justified per worker.** A worker exits only
//!   after its own claim *and* a full steal scan over every peer found
//!   nothing at or below its bound; the pool only ever shrinks, so the
//!   exit is race-free. Seeds left in the pool were therefore rejected
//!   against *every* worker's exit bound. For exact stage one, stage two,
//!   and the incremental join that bound clamps to a published `qDmax` —
//!   the k-th smallest of k real pair distances, hence an upper bound on
//!   the global `Dmax(k)` — so the seeds are provably outside the answer.
//!   With stealing off the same holds per deque: a seed left in worker
//!   `w`'s deque can only ever be processed by `w`, and `w` rejected it
//!   against its own `qDmax`-clamped exit bound, which upper-bounds the
//!   global `Dmax(k)` all by itself. For aggressive stage one the bound
//!   is the (ratcheted) `eDmax`, which proves nothing; unclaimed seeds
//!   are routed to stage two as [`Work::Unclaimed`] items instead of
//!   being dropped.
//!
//! # Counter discipline
//!
//! Pool seeds are counted as main-queue insertions when a worker claims
//! them (its driver's `seed_counted` / `push_seeds`) — each seed is
//! claimed exactly once, so totals match the static path. Stage-two items
//! know their history: [`Work::Fresh`] and [`Work::Comp`] were counted by
//! the stage-one worker that first enqueued them and re-enter uncounted;
//! [`Work::Unclaimed`] seeds never entered any queue and are counted on
//! entry, exactly as stage one would have. On one thread the frontier is
//! a single seed, the claim protocol degenerates to "take it", and the
//! whole path replays the sequential join bit for bit and counter for
//! counter.
//!
//! # Schedule perturbation
//!
//! Thread timing cannot be controlled from a test, so [`TestSchedule`]
//! injects it deterministically: before every claim a worker consults a
//! splitmix64 hash of `(seed, worker, step)` to decide whether to stall
//! (a yield loop) and whether to *force* a steal attempt ahead of its own
//! deque. Tests sweep the seed to drive pathological interleavings —
//! thieves racing the victim's first claim, stalls straddling the bound
//! ratchet — while every decision stays reproducible.
//!
//! [`Parallel`]: super::backend::Parallel
//! [`JoinConfig::steal`]: crate::JoinConfig::steal
//! [`ExpansionDriver::run_stage_one_stealing`]: ExpansionDriver::run_stage_one_stealing
//! [`run_stage_two_stealing`]: ExpansionDriver::run_stage_two_stealing

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use amdj_geom::Rect;
use amdj_rtree::RTree;

use crate::stats::{Baseline, WorkerBufferSpan};
use crate::{
    AmIdjOptions, DistanceQueue, Estimator, JoinConfig, JoinOutput, JoinStats, Pair, ResultPair,
};

use super::backend::{barrier_idle, seed_frontier, sort_canonical};
use super::bound::MinBound;
use super::checkpoint::{Checkpointed, PauseCtl};
use super::driver::{ExpansionDriver, StageOnePool};
use super::partition::{partition, PartitionItem};
use super::policy::PruningPolicy;
use super::snapshot::{EngineSnapshot, SnapshotKind};
use super::stage::{IdjSuspend, StageDriver, Step};
use super::sweep::CompEntry;

/// Deterministic schedule perturbation for the work-stealing backend.
///
/// Attached to a [`Parallel`](super::backend::Parallel) backend it makes
/// workers stall and steal at points derived purely from `seed`, the
/// worker index, and the worker's claim-step counter — so a test failure
/// reproduces from its seed. The default (`one_in` fields zero) perturbs
/// nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestSchedule {
    /// Seed every stall/steal decision derives from.
    pub seed: u64,
    /// Stall before roughly one in this many claim points (`0` = never).
    pub stall_one_in: u32,
    /// `yield_now` iterations per stall.
    pub stall_spins: u32,
    /// Force a steal attempt (probing peers before the worker's own
    /// deque) at roughly one in this many claim points (`0` = never).
    pub force_steal_one_in: u32,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TestSchedule {
    fn decision(&self, worker: usize, step: u64, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ step.wrapping_mul(0xbf58_476d_1ce4_e5b9)
                ^ salt,
        )
    }

    fn stall(&self, worker: usize, step: u64) -> bool {
        self.stall_one_in != 0
            && self
                .decision(worker, step, 1)
                .is_multiple_of(self.stall_one_in as u64)
    }

    fn force_steal(&self, worker: usize, step: u64) -> bool {
        self.force_steal_one_in != 0
            && self
                .decision(worker, step, 2)
                .is_multiple_of(self.force_steal_one_in as u64)
    }

    fn spin(&self) {
        for _ in 0..self.stall_spins {
            std::thread::yield_now();
        }
    }
}

/// One deque of pending work per worker, each kept ascending by key.
///
/// The per-deque `Mutex` is uncontended in the common case (a worker
/// claiming its own deque); the mirrored lengths let thieves rank victims
/// and skip empty deques without locking. Nothing is ever pushed back
/// into a pool, so a worker that observes "no claimable work anywhere"
/// may exit for good.
struct StealPool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    lens: Vec<AtomicUsize>,
    key: fn(&T) -> f64,
}

impl<T> StealPool<T> {
    fn new(buckets: Vec<Vec<T>>, key: fn(&T) -> f64) -> Self {
        let lens = buckets.iter().map(|b| AtomicUsize::new(b.len())).collect();
        StealPool {
            deques: buckets
                .into_iter()
                .map(|b| Mutex::new(VecDeque::from(b)))
                .collect(),
            lens,
            key,
        }
    }

    /// Takes the front of worker `w`'s claimable prefix (keys ≤ `bound`):
    /// all of it when `all`, else half (rounded up), leaving the rest
    /// stealable. Returns ascending items.
    fn claim_own(&self, w: usize, bound: f64, all: bool) -> Vec<T> {
        if self.lens[w].load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut dq = self.deques[w].lock().unwrap();
        let p = dq.partition_point(|t| (self.key)(t) <= bound);
        let n = if all { p } else { p.div_ceil(2) };
        let out: Vec<T> = dq.drain(..n).collect();
        self.lens[w].store(dq.len(), Ordering::Relaxed);
        out
    }

    /// Scans every peer, most-loaded first, and takes the *tail* half of
    /// the first non-empty claimable prefix found — the victim keeps the
    /// near work it is about to claim itself. Returns the stolen items
    /// (ascending) and the number of deques probed (locked); an empty
    /// result means a full scan found nothing at or below `bound`.
    fn steal(&self, thief: usize, bound: f64) -> (Vec<T>, u64) {
        let mut attempts = 0u64;
        let mut order: Vec<usize> = (0..self.deques.len()).filter(|&i| i != thief).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.lens[i].load(Ordering::Relaxed)));
        for v in order {
            // Racy reads are fine: the pool only shrinks, so an observed
            // zero stays zero.
            if self.lens[v].load(Ordering::Relaxed) == 0 {
                continue;
            }
            attempts += 1;
            let mut dq = self.deques[v].lock().unwrap();
            let p = dq.partition_point(|t| (self.key)(t) <= bound);
            if p == 0 {
                continue;
            }
            let n = p.div_ceil(2);
            let out: Vec<T> = dq.drain(p - n..p).collect();
            self.lens[v].store(dq.len(), Ordering::Relaxed);
            return (out, attempts);
        }
        (Vec::new(), attempts)
    }

    /// Everything no worker claimed, in worker order.
    fn into_remaining(self) -> Vec<T> {
        self.deques
            .into_iter()
            .flat_map(|m| m.into_inner().unwrap())
            .collect()
    }
}

/// One claim round: the worker's own deque first, then a full steal scan
/// (`forced` inverts the order — and falls back to own work, so a forced
/// decision can never fabricate an early exit). `None` means both the own
/// claim and a scan of every peer found nothing at or below `bound`:
/// since the pool only shrinks, the worker may exit.
///
/// With `steal` off the round never probes a peer (and ignores `forced`,
/// which only makes sense with stealing): the worker claims its own
/// statically partitioned deque incrementally and exits once *it* holds
/// nothing at or below `bound` — sound, because no other worker can
/// process that deque either, and the bound itself justifies dropping
/// what remains (module docs).
#[allow(clippy::too_many_arguments)]
fn claim_round<T>(
    pool: &StealPool<T>,
    w: usize,
    bound: f64,
    all_own: bool,
    forced: bool,
    steal: bool,
    stolen: &mut u64,
    attempts: &mut u64,
) -> Option<Vec<T>> {
    if !steal {
        let own = pool.claim_own(w, bound, all_own);
        return if own.is_empty() { None } else { Some(own) };
    }
    if !forced {
        let own = pool.claim_own(w, bound, all_own);
        if !own.is_empty() {
            return Some(own);
        }
    }
    let (loot, probes) = pool.steal(w, bound);
    *attempts += probes;
    if !loot.is_empty() {
        *stolen += loot.len() as u64;
        return Some(loot);
    }
    if forced {
        let own = pool.claim_own(w, bound, all_own);
        if !own.is_empty() {
            return Some(own);
        }
    }
    None
}

/// The stealing path oversplits the frontier more than the static one
/// (`8×` threads): dynamic balancing thrives on fine granularity, and a
/// claim moves a whole prefix at once so per-seed overhead stays small.
/// One thread keeps the single root seed so the lone worker replays the
/// sequential join exactly.
fn frontier_target(threads: usize) -> usize {
    if threads == 1 {
        1
    } else {
        threads * 8
    }
}

/// One stage-one worker: an [`ExpansionDriver`] fed by claim rounds. The
/// claim bound is the driver's own stage-one predicate — the clamped
/// `qDmax` for exact policies, the ratcheted `eDmax` for aggressive ones
/// (seeds beyond it could not be emitted in stage one anyway; leaving
/// them unclaimed routes them straight to stage two).
///
/// `resumed` marks a run seeded from a snapshot frontier: claims then
/// enter through [`ExpansionDriver::seed_resumed`] — uncounted (each
/// pair was counted when first enqueued, before the suspension) and
/// without distance-queue insertion (a resumed result-pair's distance
/// already lives in the snapshot's `dists` evidence; inserting it again
/// would double-count that pair once the pools merge). A fired `pause`
/// suspends the driver, and [`ExpansionDriver::into_pool`] then drains
/// its whole sub-bound frontier for the snapshot regardless of policy.
#[allow(clippy::too_many_arguments)]
fn stage_one_worker<const D: usize, P: PruningPolicy>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    pool: &StealPool<Pair<D>>,
    w: usize,
    edmax0: f64,
    shared: &MinBound,
    schedule: Option<TestSchedule>,
    pause: Option<&PauseCtl>,
    resumed: bool,
) -> StageOnePool<D> {
    let mut drv = ExpansionDriver::new(r, s, cfg, k, est, P::AGGRESSIVE, edmax0, Some(shared));
    drv.set_pause(pause);
    let mut step = 0u64;
    loop {
        if drv.suspended() {
            break;
        }
        step += 1;
        if let Some(sch) = &schedule {
            if sch.stall(w, step) {
                sch.spin();
            }
        }
        let forced = schedule.is_some_and(|sch| sch.force_steal(w, step));
        let bound = drv.stage_one_claim_bound();
        let Some(claimed) = claim_round(
            pool,
            w,
            bound,
            false,
            forced,
            cfg.steal,
            &mut drv.stats.pairs_stolen,
            &mut drv.stats.steal_attempts,
        ) else {
            break;
        };
        if resumed {
            drv.seed_resumed(claimed);
        } else {
            drv.seed_counted(claimed);
        }
        drv.run_stage_one_stealing();
    }
    let drain = P::AGGRESSIVE || drv.suspended();
    drv.into_pool(drain)
}

/// A stage-two work item, keyed for the pool's ascending deques. The
/// variants track counting history (module docs): `Fresh` pairs and
/// `Comp` entries re-enter a queue uncounted, `Unclaimed` seeds are
/// counted on entry. A stolen `Comp` entry carries its own sweep lists
/// and per-anchor marks, so skip bookkeeping migrates losslessly with it.
enum Work<const D: usize> {
    Fresh(Pair<D>),
    Unclaimed(Pair<D>),
    Comp(CompEntry<D>),
}

fn work_key<const D: usize>(w: &Work<D>) -> f64 {
    match w {
        Work::Fresh(p) | Work::Unclaimed(p) => p.dist,
        Work::Comp(e) => e.key,
    }
}

impl<const D: usize> PartitionItem<D> for Work<D> {
    fn order_key(&self) -> f64 {
        work_key(self)
    }
    fn region(&self) -> Rect<D> {
        match self {
            Work::Fresh(p) | Work::Unclaimed(p) => p.region(),
            Work::Comp(e) => e.region(),
        }
    }
    fn cost(&self) -> u64 {
        match self {
            Work::Fresh(p) | Work::Unclaimed(p) => PartitionItem::cost(p),
            Work::Comp(e) => PartitionItem::cost(e),
        }
    }
}

/// One stage-two worker: exact cutoffs, distance queue pre-seeded
/// (uncounted) with the pooled stage-one distances. The *first* claim
/// takes the worker's entire own deque — mirroring the static path's
/// whole-partition seeding, which is what keeps one-thread runs
/// counter-identical — later claims (after steals) use the exact
/// `qDmax`-clamped bound.
///
/// Returns through [`StageOnePool`]: a normally finished worker comes
/// back with empty `leftovers`/`comps` (exactly `finish`'s accounting),
/// a suspended one (fired `pause`) drains its sub-bound remainder for
/// the snapshot. Its `dists` are the seed slice plus its own new
/// insertions — the runner discards them (every worker was seeded the
/// same slice, so pooling them would double-count; the snapshot keeps
/// the seed slice itself, unchanged).
#[allow(clippy::too_many_arguments)]
fn stage_two_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    pool: &StealPool<Work<D>>,
    w: usize,
    dists: &[f64],
    shared: &MinBound,
    schedule: Option<TestSchedule>,
    pause: Option<&PauseCtl>,
) -> StageOnePool<D> {
    let mut drv = ExpansionDriver::new(r, s, cfg, k, est, false, f64::INFINITY, Some(shared));
    drv.set_pause(pause);
    drv.seed_replayed(Vec::new(), Vec::new(), dists);
    let mut first = true;
    let mut step = 0u64;
    loop {
        if drv.suspended() {
            break;
        }
        step += 1;
        if let Some(sch) = &schedule {
            if sch.stall(w, step) {
                sch.spin();
            }
        }
        let forced = !first && schedule.is_some_and(|sch| sch.force_steal(w, step));
        let bound = if first {
            f64::INFINITY
        } else {
            drv.stage_two_claim_bound()
        };
        let Some(claimed) = claim_round(
            pool,
            w,
            bound,
            first,
            forced,
            cfg.steal,
            &mut drv.stats.pairs_stolen,
            &mut drv.stats.steal_attempts,
        ) else {
            break;
        };
        first = false;
        let mut fresh = Vec::new();
        let mut unclaimed = Vec::new();
        let mut comps = Vec::new();
        for item in claimed {
            match item {
                Work::Fresh(p) => fresh.push(p),
                Work::Unclaimed(p) => unclaimed.push(p),
                Work::Comp(e) => comps.push(e),
            }
        }
        drv.seed_replayed(fresh, comps, &[]);
        drv.seed_counted(unclaimed);
        drv.run_stage_two_stealing();
    }
    let drain = drv.suspended();
    drv.into_pool(drain)
}

/// Pumps one incremental cursor while its next emission can still beat
/// the shared bound, publishing each emission's distance. Returns `true`
/// when the cursor's pause control fired (suspend it), `false` when it
/// merely ran out of claimable work (the outer claim loop decides).
fn pump_idj<const D: usize>(
    cursor: &mut StageDriver<'_, D>,
    distq: &mut DistanceQueue,
    shared: &MinBound,
    results: &mut Vec<ResultPair>,
    tightenings: &mut u64,
) -> bool {
    loop {
        // The cursor's minimum queue key lower-bounds every future
        // emission: stop before doing the work once it passes the
        // bound.
        match cursor.peek_key() {
            Some(key) if key <= shared.get() => {}
            _ => return false,
        }
        match cursor.next_step() {
            Step::Pair(pair) => {
                if pair.dist > shared.get() {
                    // The stream is ascending; everything later is farther
                    // still (and a tighter bound may admit new claims,
                    // which the outer loop handles).
                    return false;
                }
                distq.insert(pair.dist);
                let q = distq.qdmax();
                if q.is_finite() && shared.tighten(q) {
                    *tightenings += 1;
                }
                results.push(pair);
            }
            Step::Done => return false,
            Step::Paused => return true,
        }
    }
}

/// One worker of the stealing incremental join: a [`StageDriver`] cursor
/// fed by claim rounds, pumped while its next emission can still beat the
/// shared bound. There is no `take` cap on the pump — after `take`
/// insertions the worker's own published `qDmax` caps it through the
/// shared bound, and a cap on locally-claimed work would be wrong anyway
/// once seeds move between workers.
///
/// A resumed worker starts from the snapshot's cut: its stage-loop
/// scalars are `restore`d, it is dealt a share of the snapshot's parked
/// compensation entries (`seed_comps` — the pool only carries pairs),
/// and its distance queue is pre-seeded (uncounted) with the snapshot's
/// distance evidence so its published bound starts as tight as the
/// suspended run's. The pre-claim pump drains that seeded work even when
/// the pool has nothing left to claim. A fired `pause` suspends the
/// cursor instead of finishing it; the drained cut comes back as the
/// fourth return.
#[allow(clippy::too_many_arguments)]
fn idj_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: AmIdjOptions,
    pool: &StealPool<Pair<D>>,
    w: usize,
    shared: &MinBound,
    schedule: Option<TestSchedule>,
    pause: Option<&PauseCtl>,
    restore: Option<(u32, f64, u64, u64, f64)>,
    comps: Vec<CompEntry<D>>,
    seed_dists: &[f64],
) -> (Vec<ResultPair>, JoinStats, f64, Option<IdjSuspend<D>>) {
    let mut cursor = StageDriver::with_seeds(r, s, cfg, opts, Vec::new(), shared);
    cursor.set_pause(pause);
    if let Some((stage, edmax, k_target, emitted, last_dist)) = restore {
        cursor.restore_state(stage, edmax, k_target, emitted, last_dist);
    }
    cursor.seed_comps(comps);
    let mut distq = DistanceQueue::new(take);
    for &d in seed_dists {
        distq.seed(d);
    }
    let mut results = Vec::new();
    let mut tightenings = 0u64;
    let (mut stolen, mut attempts) = (0u64, 0u64);
    let mut step = 0u64;
    let mut paused = pump_idj(
        &mut cursor,
        &mut distq,
        shared,
        &mut results,
        &mut tightenings,
    );
    while !paused {
        if pause.is_some_and(|p| p.should_pause()) {
            paused = true;
            break;
        }
        step += 1;
        if let Some(sch) = &schedule {
            if sch.stall(w, step) {
                sch.spin();
            }
        }
        let forced = schedule.is_some_and(|sch| sch.force_steal(w, step));
        let Some(claimed) = claim_round(
            pool,
            w,
            shared.get(),
            false,
            forced,
            cfg.steal,
            &mut stolen,
            &mut attempts,
        ) else {
            break;
        };
        cursor.push_seeds(claimed);
        paused = pump_idj(
            &mut cursor,
            &mut distq,
            shared,
            &mut results,
            &mut tightenings,
        );
    }
    let (mut stats, queue_io, suspend) = if paused {
        let (sus, st, io) = cursor.suspend();
        (st, io, Some(sus))
    } else {
        let (st, io) = cursor.finish_worker();
        (st, io, None)
    };
    stats.bound_tightenings += tightenings;
    stats.distq_insertions += distq.insertions();
    stats.pairs_stolen += stolen;
    stats.steal_attempts += attempts;
    (results, stats, queue_io, suspend)
}

/// The stealing k-distance join: [`Parallel::run_kdj`] with the static
/// partitioning replaced by [`StealPool`] claim rounds. `threads` is
/// already resolved. A thin shell over [`run_kdj_ckpt`] with no pause
/// control and no snapshot — the uninterrupted join *is* the resumable
/// join with the checkpoint machinery idle.
///
/// [`Parallel::run_kdj`]: super::backend::Parallel
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_kdj<const D: usize, P: PruningPolicy>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    policy: &P,
    threads: usize,
    schedule: Option<TestSchedule>,
    ext_bound: Option<&MinBound>,
) -> JoinOutput {
    match run_kdj_ckpt::<D, P>(
        r, s, k, cfg, policy, threads, schedule, None, None, ext_bound,
    ) {
        Checkpointed::Done(out) => out,
        Checkpointed::Suspended(..) => unreachable!("no pause control was attached"),
    }
}

/// The checkpointable k-distance join. Without `resume` it starts from
/// the root frontier; with it, from the snapshot's cut (stage 1 resumes
/// re-partition the saved frontier, stage 2 resumes rebuild the
/// [`Work`] pool from the saved frontier and compensation entries).
/// Without `pause` it always returns [`Checkpointed::Done`]; with one,
/// a fired pause drains every worker and the shared pool into one
/// canonical [`EngineSnapshot`].
///
/// The snapshot's pruning is justified purely by `shared_bound` — a
/// published `qDmax`, the k-th smallest of k real distinct-pair
/// distances — so a cut taken at any thread count resumes at any other.
///
/// `ext_bound`, when set, replaces the run's private shared bound with a
/// caller-owned one (the partitioned plan's cross-pair bound); a
/// snapshot's saved `shared_bound` is folded into it on resume.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_kdj_ckpt<const D: usize, P: PruningPolicy>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    policy: &P,
    threads: usize,
    schedule: Option<TestSchedule>,
    resume: Option<EngineSnapshot<D>>,
    pause: Option<&PauseCtl>,
    ext_bound: Option<&MinBound>,
) -> Checkpointed<D> {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let est = Estimator::from_trees(r, s);
    // Unpack the starting cut: the root frontier, or the snapshot's.
    let (mut results, aside_dists, snap_frontier, aside_comps, stage0, edmax0, bound0, resumed) =
        match resume {
            None => (
                Vec::new(),
                Vec::new(),
                None,
                Vec::new(),
                1u32,
                policy.initial_edmax(est.as_ref(), k),
                f64::INFINITY,
                false,
            ),
            Some(snap) => (
                snap.results,
                snap.dists,
                Some(snap.frontier),
                snap.comps,
                snap.stage,
                snap.edmax,
                snap.shared_bound,
                true,
            ),
        };
    let local = MinBound::new(bound0);
    let shared: &MinBound = match ext_bound {
        Some(ext) => {
            if bound0.is_finite() {
                ext.tighten(bound0);
            }
            ext
        }
        None => &local,
    };
    let mut queue_io = 0.0;
    if k > 0 {
        let est = est.as_ref();
        // Inputs to stage two, produced by stage one (or read straight
        // from a stage-2 snapshot).
        let mut work: Vec<Work<D>> = Vec::new();
        let mut dists: Vec<f64> = Vec::new();
        let mut edmax_now = edmax0;

        if stage0 <= 1 {
            let mut frontier = match snap_frontier {
                Some(f) => f,
                None => seed_frontier(r, s, cfg, frontier_target(threads), &mut stats),
            };
            frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
            let seeds = partition(frontier, threads, cfg.partition);
            let pool = StealPool::new(seeds, |p: &Pair<D>| p.dist);

            // ---- Stage one: claim rounds over the frontier pool ----
            let t0 = std::time::Instant::now();
            let outcomes = {
                let pool = &pool;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|w| {
                            scope.spawn(move || {
                                let span = WorkerBufferSpan::begin(w);
                                let mut out = stage_one_worker::<D, P>(
                                    r, s, k, cfg, est, pool, w, edmax0, shared, schedule, pause,
                                    resumed,
                                );
                                span.record(&mut out.stats);
                                (out, t0.elapsed().as_nanos() as u64)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect::<Vec<_>>()
                })
            };
            let finishes: Vec<u64> = outcomes.iter().map(|(_, ns)| *ns).collect();
            stats.barrier_idle_ns += barrier_idle(&finishes);
            let mut leftovers = Vec::new();
            let mut comps = Vec::new();
            let mut suspended = false;
            let mut edmax_min = f64::INFINITY;
            for (outcome, _) in outcomes {
                results.extend(outcome.results);
                leftovers.extend(outcome.leftovers);
                comps.extend(outcome.comps);
                dists.extend(outcome.dists);
                stats.absorb_worker(&outcome.stats);
                queue_io += outcome.queue_io;
                suspended |= outcome.suspended;
                edmax_min = edmax_min.min(outcome.edmax);
            }
            edmax_now = edmax_min;
            // Snapshot evidence rides along: parked entries saved by the
            // interrupted run still owe their compensation replay, and
            // the saved distances stand in for the distance-queue entries
            // resumed workers deliberately did not re-insert.
            comps.extend(aside_comps);
            dists.extend(aside_dists);
            // Pooled k-th smallest stage-one distance: the tightest proven
            // bound stage one produced (see the static path). Every entry
            // is the distance of a *distinct* emitted pair (workers never
            // re-insert resumed pairs), so the k-th is a true upper bound
            // on the global Dmax(k).
            dists.sort_unstable_by(f64::total_cmp);
            dists.truncate(k);

            if suspended {
                if dists.len() == k {
                    let kth = dists[k - 1];
                    if kth.is_finite() {
                        shared.tighten(kth);
                    }
                }
                let bound = shared.get();
                // Unlike a normal exit, nothing proves the pool remainder
                // prunable (workers paused, they did not reject it) — the
                // snapshot keeps everything at or below the proven bound.
                let mut frontier = leftovers;
                frontier.extend(pool.into_remaining());
                frontier.retain(|p| p.dist <= bound);
                frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
                comps.retain(|e| e.key <= bound);
                comps.sort_by(|a, b| a.key.total_cmp(&b.key));
                sort_canonical(&mut results);
                baseline.finish(r, s, &mut stats, queue_io);
                let snap = Box::new(EngineSnapshot {
                    kind: SnapshotKind::Kdj {
                        k: k as u64,
                        aggressive: P::AGGRESSIVE,
                    },
                    stage: 1,
                    edmax: edmax_now,
                    shared_bound: bound,
                    k_target: 0,
                    emitted: 0,
                    last_dist: 0.0,
                    results,
                    dists,
                    frontier,
                    comps,
                });
                return Checkpointed::Suspended(snap, stats);
            }

            if P::AGGRESSIVE {
                if dists.len() == k {
                    let kth = dists[k - 1];
                    if kth.is_finite() && shared.tighten(kth) {
                        stats.bound_tightenings += 1;
                    }
                }
                let bound = shared.get();
                leftovers.retain(|p| p.dist <= bound);
                comps.retain(|e| e.key <= bound);
                // Seeds no stage-one worker claimed (all beyond every
                // ratcheted eDmax) still belong to stage two — they were
                // rejected against an estimate, not a proven bound.
                let mut unclaimed = pool.into_remaining();
                unclaimed.retain(|p| p.dist <= bound);

                work.reserve(leftovers.len() + unclaimed.len() + comps.len());
                work.extend(leftovers.into_iter().map(Work::Fresh));
                if resumed {
                    // A resumed pool's remainder is snapshot-frontier work:
                    // counted before the pause, and its result distances
                    // already sit in the pooled evidence. Re-entering it as
                    // `Unclaimed` would insert those distances a second
                    // time and over-tighten stage two's qDmax below the
                    // true bound, silently dropping tail results.
                    work.extend(unclaimed.into_iter().map(Work::Fresh));
                } else {
                    work.extend(unclaimed.into_iter().map(Work::Unclaimed));
                }
                work.extend(comps.into_iter().map(Work::Comp));
            }
            // Exact policies may leave unclaimed seeds behind: every worker
            // rejected them against its qDmax-clamped exit bound, which
            // upper-bounds the global Dmax(k), so they are provably outside
            // the answer and the pool drops with them.
        } else {
            // Stage-2 snapshot: its saved frontier re-enters uncounted
            // (`Fresh`), its parked entries replay (`Comp`), and its
            // distance evidence seeds the workers' queues exactly as the
            // stage-one pooling would have.
            dists = aside_dists;
            let frontier = snap_frontier.unwrap_or_default();
            work.reserve(frontier.len() + aside_comps.len());
            work.extend(frontier.into_iter().map(Work::Fresh));
            work.extend(aside_comps.into_iter().map(Work::Comp));
        }

        // ---- Stage two: claim rounds over the work-item pool ----
        if !work.is_empty() {
            stats.stages = 2;
            // Stable: parked compensation entries share equal keys en
            // masse (all at `eDmax.next_up()`), and one-thread parity
            // with the static path needs their original order kept.
            work.sort_by(|a, b| work_key(a).total_cmp(&work_key(b)));
            let wpool = StealPool::new(partition(work, threads, cfg.partition), work_key);
            let dists = &dists[..];
            let t0 = std::time::Instant::now();
            let outputs = {
                let wpool = &wpool;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|w| {
                            scope.spawn(move || {
                                let span = WorkerBufferSpan::begin(w);
                                let mut out = stage_two_worker(
                                    r, s, k, cfg, est, wpool, w, dists, shared, schedule, pause,
                                );
                                span.record(&mut out.stats);
                                (out, t0.elapsed().as_nanos() as u64)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect::<Vec<_>>()
                })
            };
            let finishes: Vec<u64> = outputs.iter().map(|(_, ns)| *ns).collect();
            stats.barrier_idle_ns += barrier_idle(&finishes);
            let mut leftovers = Vec::new();
            let mut comps = Vec::new();
            let mut suspended = false;
            for (outcome, _) in outputs {
                results.extend(outcome.results);
                leftovers.extend(outcome.leftovers);
                comps.extend(outcome.comps);
                stats.absorb_worker(&outcome.stats);
                queue_io += outcome.queue_io;
                suspended |= outcome.suspended;
                // outcome.dists is the shared seed slice plus the worker's
                // own insertions — pooling those would double-count the
                // seeds, so they are deliberately dropped; `dists` itself
                // is the snapshot's evidence.
            }
            if suspended {
                let bound = shared.get();
                let mut frontier = leftovers;
                for item in wpool.into_remaining() {
                    match item {
                        // An unclaimed seed that never entered any queue
                        // resumes as `Fresh`; the one-time counting it is
                        // owed is a stats nicety the snapshot does not
                        // carry (results stay bit-identical either way).
                        Work::Fresh(p) | Work::Unclaimed(p) => frontier.push(p),
                        Work::Comp(e) => comps.push(e),
                    }
                }
                frontier.retain(|p| p.dist <= bound);
                frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
                comps.retain(|e| e.key <= bound);
                comps.sort_by(|a, b| a.key.total_cmp(&b.key));
                sort_canonical(&mut results);
                baseline.finish(r, s, &mut stats, queue_io);
                let snap = Box::new(EngineSnapshot {
                    kind: SnapshotKind::Kdj {
                        k: k as u64,
                        aggressive: P::AGGRESSIVE,
                    },
                    stage: 2,
                    edmax: edmax_now,
                    shared_bound: bound,
                    k_target: 0,
                    emitted: 0,
                    last_dist: 0.0,
                    results,
                    dists: dists.to_vec(),
                    frontier,
                    comps,
                });
                return Checkpointed::Suspended(snap, stats);
            }
        }
        sort_canonical(&mut results);
        results.truncate(k);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    Checkpointed::Done(JoinOutput { results, stats })
}

/// The stealing incremental join: [`Parallel::run_idj`] with claim rounds
/// in place of the static seed partitioning. A thin shell over
/// [`run_idj_ckpt`] with the checkpoint machinery idle.
///
/// [`Parallel::run_idj`]: super::backend::Parallel
pub(crate) fn run_idj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    threads: usize,
    schedule: Option<TestSchedule>,
) -> JoinOutput {
    match run_idj_ckpt(r, s, take, cfg, opts, threads, schedule, None, None) {
        Checkpointed::Done(out) => out,
        Checkpointed::Suspended(..) => unreachable!("no pause control was attached"),
    }
}

/// The checkpointable incremental join. On resume, every worker's cursor
/// restores the snapshot's stage-loop scalars, is dealt a share of the
/// saved compensation entries (the pair pool cannot carry them), and
/// pre-seeds its distance queue with the saved evidence — the `take`
/// smallest result distances, all distinct pairs, so each worker's
/// published bound is individually sound. On suspension the snapshot
/// merges the cursors' cuts canonically: `edmax` the minimum (a smaller
/// estimate only advances stages earlier — completeness is unaffected),
/// `stage`/`k_target`/`last_dist` the maximum, `emitted` the global
/// result count. All of these steer heuristics only.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_idj_ckpt<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    threads: usize,
    schedule: Option<TestSchedule>,
    resume: Option<EngineSnapshot<D>>,
    pause: Option<&PauseCtl>,
) -> Checkpointed<D> {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let (mut results, seed_dists, snap_frontier, snap_comps, restore, bound0) = match resume {
        None => (
            Vec::new(),
            Vec::new(),
            None,
            Vec::new(),
            None,
            f64::INFINITY,
        ),
        Some(snap) => (
            snap.results,
            snap.dists,
            Some(snap.frontier),
            snap.comps,
            Some((
                snap.stage,
                snap.edmax,
                snap.k_target,
                snap.emitted,
                snap.last_dist,
            )),
            snap.shared_bound,
        ),
    };
    let shared = MinBound::new(bound0);
    let mut queue_io = 0.0;
    if take > 0 {
        let mut frontier = match snap_frontier {
            Some(f) => f,
            None => seed_frontier(r, s, cfg, frontier_target(threads), &mut stats),
        };
        frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
        let seeds = partition(frontier, threads, cfg.partition);
        let pool = StealPool::new(seeds, |p: &Pair<D>| p.dist);
        let comp_shares = partition(snap_comps, threads, cfg.partition);
        let seed_dists = &seed_dists[..];
        let shared = &shared;
        let t0 = std::time::Instant::now();
        let outputs = {
            let pool = &pool;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .zip(comp_shares)
                    .map(|(w, comps_w)| {
                        let opts = opts.clone();
                        scope.spawn(move || {
                            let span = WorkerBufferSpan::begin(w);
                            let mut out = idj_worker(
                                r, s, take, cfg, opts, pool, w, shared, schedule, pause, restore,
                                comps_w, seed_dists,
                            );
                            span.record(&mut out.1);
                            (out, t0.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
        };
        let finishes: Vec<u64> = outputs.iter().map(|(_, ns)| *ns).collect();
        stats.barrier_idle_ns += barrier_idle(&finishes);
        let mut sus_frontier: Vec<Pair<D>> = Vec::new();
        let mut sus_comps: Vec<CompEntry<D>> = Vec::new();
        let mut suspended = false;
        let (mut edmax_min, mut stage_max, mut k_target_max, mut last_max) =
            (f64::INFINITY, 1u32, opts.initial_k, 0.0f64);
        for ((mut part, wstats, wio, suspend), _) in outputs {
            results.append(&mut part);
            stats.stages = stats.stages.max(wstats.stages);
            stats.absorb_worker(&wstats);
            queue_io += wio;
            if let Some(sus) = suspend {
                suspended = true;
                sus_frontier.extend(sus.frontier);
                sus_comps.extend(sus.comps);
                edmax_min = edmax_min.min(sus.edmax);
                stage_max = stage_max.max(sus.stage);
                k_target_max = k_target_max.max(sus.k_target);
                last_max = last_max.max(sus.last_dist);
            }
        }
        if suspended {
            let bound = shared.get();
            sus_frontier.extend(pool.into_remaining());
            sus_frontier.retain(|p| p.dist <= bound);
            sus_frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
            sus_comps.retain(|e| e.key <= bound);
            sus_comps.sort_by(|a, b| a.key.total_cmp(&b.key));
            sort_canonical(&mut results);
            // Results beyond the proven bound can never make the final
            // `take`; dropping them bounds the snapshot's size.
            results.retain(|p| p.dist <= bound);
            // The evidence re-seeded into every resumed worker: the `take`
            // smallest result distances. Each result is a distinct emitted
            // pair, so any worker's published bound over (seed ∪ its own
            // later emissions) stays sound.
            let dists: Vec<f64> = results.iter().map(|p| p.dist).take(take).collect();
            let emitted = results.len() as u64;
            baseline.finish(r, s, &mut stats, queue_io);
            let snap = Box::new(EngineSnapshot {
                kind: SnapshotKind::Idj { take: take as u64 },
                stage: stage_max,
                edmax: edmax_min,
                shared_bound: bound,
                k_target: k_target_max,
                emitted,
                last_dist: last_max,
                results,
                dists,
                frontier: sus_frontier,
                comps: sus_comps,
            });
            return Checkpointed::Suspended(snap, stats);
        }
        sort_canonical(&mut results);
        results.truncate(take);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    Checkpointed::Done(JoinOutput { results, stats })
}
