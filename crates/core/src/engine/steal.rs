//! The work-stealing execution path of the [`Parallel`] backend.
//!
//! The static round-robin scheme in `backend.rs` partitions the frontier
//! once and lets a drained worker idle at the stage barrier — on skewed
//! frontiers (a clustered partition next to a uniform one) that idle time
//! dominates wall clock. Here the frontier lives in a [`StealPool`]: one
//! deque per worker, each sorted ascending by key. A worker repeatedly
//! *claims* a prefix of its own deque and runs its driver over it; once
//! its deque holds nothing below its claim bound it scans the peers
//! (most-loaded first) and steals the *tail* half of a victim's claimable
//! prefix — the victim keeps the near pairs it is about to process, the
//! thief takes the far ones.
//!
//! # Why dynamic claiming stays exact
//!
//! Any cut of the expansion DAG partitions the object-pair space, and
//! stealing only ever re-partitions the frontier — every seed is still
//! processed by exactly one worker. Two things do change:
//!
//! * **Past-`k` processing.** With a static partition a worker's first
//!   `k` emissions are its partition's top `k` (ascending pops), so it
//!   may stop at `k`. A stolen seed can arrive *after* the `k`-th
//!   emission and still hold closer pairs, so the stealing drivers
//!   ([`ExpansionDriver::run_stage_one_stealing`] /
//!   [`run_stage_two_stealing`]) keep consuming while the queue minimum
//!   beats the cutoff. Surplus results are sorted away by the canonical
//!   merge.
//! * **Dropped seeds must be justified per worker.** A worker exits only
//!   after its own claim *and* a full steal scan over every peer found
//!   nothing at or below its bound; the pool only ever shrinks, so the
//!   exit is race-free. Seeds left in the pool were therefore rejected
//!   against *every* worker's exit bound. For exact stage one, stage two,
//!   and the incremental join that bound clamps to a published `qDmax` —
//!   the k-th smallest of k real pair distances, hence an upper bound on
//!   the global `Dmax(k)` — so the seeds are provably outside the answer.
//!   For aggressive stage one the bound is the (ratcheted) `eDmax`, which
//!   proves nothing; unclaimed seeds are routed to stage two as
//!   [`Work::Unclaimed`] items instead of being dropped.
//!
//! # Counter discipline
//!
//! Pool seeds are counted as main-queue insertions when a worker claims
//! them (its driver's `seed_counted` / `push_seeds`) — each seed is
//! claimed exactly once, so totals match the static path. Stage-two items
//! know their history: [`Work::Fresh`] and [`Work::Comp`] were counted by
//! the stage-one worker that first enqueued them and re-enter uncounted;
//! [`Work::Unclaimed`] seeds never entered any queue and are counted on
//! entry, exactly as stage one would have. On one thread the frontier is
//! a single seed, the claim protocol degenerates to "take it", and the
//! whole path replays the sequential join bit for bit and counter for
//! counter.
//!
//! # Schedule perturbation
//!
//! Thread timing cannot be controlled from a test, so [`TestSchedule`]
//! injects it deterministically: before every claim a worker consults a
//! splitmix64 hash of `(seed, worker, step)` to decide whether to stall
//! (a yield loop) and whether to *force* a steal attempt ahead of its own
//! deque. Tests sweep the seed to drive pathological interleavings —
//! thieves racing the victim's first claim, stalls straddling the bound
//! ratchet — while every decision stays reproducible.
//!
//! [`Parallel`]: super::backend::Parallel
//! [`ExpansionDriver::run_stage_one_stealing`]: ExpansionDriver::run_stage_one_stealing
//! [`run_stage_two_stealing`]: ExpansionDriver::run_stage_two_stealing

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use amdj_geom::Rect;
use amdj_rtree::RTree;

use crate::stats::{Baseline, WorkerBufferSpan};
use crate::{
    AmIdjOptions, DistanceQueue, Estimator, JoinConfig, JoinOutput, JoinStats, Pair, ResultPair,
};

use super::backend::{barrier_idle, seed_frontier, sort_canonical};
use super::bound::MinBound;
use super::driver::{ExpansionDriver, StageOnePool};
use super::partition::{partition, PartitionItem};
use super::policy::PruningPolicy;
use super::stage::StageDriver;
use super::sweep::CompEntry;

/// Deterministic schedule perturbation for the work-stealing backend.
///
/// Attached to a [`Parallel`](super::backend::Parallel) backend it makes
/// workers stall and steal at points derived purely from `seed`, the
/// worker index, and the worker's claim-step counter — so a test failure
/// reproduces from its seed. The default (`one_in` fields zero) perturbs
/// nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestSchedule {
    /// Seed every stall/steal decision derives from.
    pub seed: u64,
    /// Stall before roughly one in this many claim points (`0` = never).
    pub stall_one_in: u32,
    /// `yield_now` iterations per stall.
    pub stall_spins: u32,
    /// Force a steal attempt (probing peers before the worker's own
    /// deque) at roughly one in this many claim points (`0` = never).
    pub force_steal_one_in: u32,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TestSchedule {
    fn decision(&self, worker: usize, step: u64, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ step.wrapping_mul(0xbf58_476d_1ce4_e5b9)
                ^ salt,
        )
    }

    fn stall(&self, worker: usize, step: u64) -> bool {
        self.stall_one_in != 0
            && self
                .decision(worker, step, 1)
                .is_multiple_of(self.stall_one_in as u64)
    }

    fn force_steal(&self, worker: usize, step: u64) -> bool {
        self.force_steal_one_in != 0
            && self
                .decision(worker, step, 2)
                .is_multiple_of(self.force_steal_one_in as u64)
    }

    fn spin(&self) {
        for _ in 0..self.stall_spins {
            std::thread::yield_now();
        }
    }
}

/// One deque of pending work per worker, each kept ascending by key.
///
/// The per-deque `Mutex` is uncontended in the common case (a worker
/// claiming its own deque); the mirrored lengths let thieves rank victims
/// and skip empty deques without locking. Nothing is ever pushed back
/// into a pool, so a worker that observes "no claimable work anywhere"
/// may exit for good.
struct StealPool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    lens: Vec<AtomicUsize>,
    key: fn(&T) -> f64,
}

impl<T> StealPool<T> {
    fn new(buckets: Vec<Vec<T>>, key: fn(&T) -> f64) -> Self {
        let lens = buckets.iter().map(|b| AtomicUsize::new(b.len())).collect();
        StealPool {
            deques: buckets
                .into_iter()
                .map(|b| Mutex::new(VecDeque::from(b)))
                .collect(),
            lens,
            key,
        }
    }

    /// Takes the front of worker `w`'s claimable prefix (keys ≤ `bound`):
    /// all of it when `all`, else half (rounded up), leaving the rest
    /// stealable. Returns ascending items.
    fn claim_own(&self, w: usize, bound: f64, all: bool) -> Vec<T> {
        if self.lens[w].load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut dq = self.deques[w].lock().unwrap();
        let p = dq.partition_point(|t| (self.key)(t) <= bound);
        let n = if all { p } else { p.div_ceil(2) };
        let out: Vec<T> = dq.drain(..n).collect();
        self.lens[w].store(dq.len(), Ordering::Relaxed);
        out
    }

    /// Scans every peer, most-loaded first, and takes the *tail* half of
    /// the first non-empty claimable prefix found — the victim keeps the
    /// near work it is about to claim itself. Returns the stolen items
    /// (ascending) and the number of deques probed (locked); an empty
    /// result means a full scan found nothing at or below `bound`.
    fn steal(&self, thief: usize, bound: f64) -> (Vec<T>, u64) {
        let mut attempts = 0u64;
        let mut order: Vec<usize> = (0..self.deques.len()).filter(|&i| i != thief).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.lens[i].load(Ordering::Relaxed)));
        for v in order {
            // Racy reads are fine: the pool only shrinks, so an observed
            // zero stays zero.
            if self.lens[v].load(Ordering::Relaxed) == 0 {
                continue;
            }
            attempts += 1;
            let mut dq = self.deques[v].lock().unwrap();
            let p = dq.partition_point(|t| (self.key)(t) <= bound);
            if p == 0 {
                continue;
            }
            let n = p.div_ceil(2);
            let out: Vec<T> = dq.drain(p - n..p).collect();
            self.lens[v].store(dq.len(), Ordering::Relaxed);
            return (out, attempts);
        }
        (Vec::new(), attempts)
    }

    /// Everything no worker claimed, in worker order.
    fn into_remaining(self) -> Vec<T> {
        self.deques
            .into_iter()
            .flat_map(|m| m.into_inner().unwrap())
            .collect()
    }
}

/// One claim round: the worker's own deque first, then a full steal scan
/// (`forced` inverts the order — and falls back to own work, so a forced
/// decision can never fabricate an early exit). `None` means both the own
/// claim and a scan of every peer found nothing at or below `bound`:
/// since the pool only shrinks, the worker may exit.
fn claim_round<T>(
    pool: &StealPool<T>,
    w: usize,
    bound: f64,
    all_own: bool,
    forced: bool,
    stolen: &mut u64,
    attempts: &mut u64,
) -> Option<Vec<T>> {
    if !forced {
        let own = pool.claim_own(w, bound, all_own);
        if !own.is_empty() {
            return Some(own);
        }
    }
    let (loot, probes) = pool.steal(w, bound);
    *attempts += probes;
    if !loot.is_empty() {
        *stolen += loot.len() as u64;
        return Some(loot);
    }
    if forced {
        let own = pool.claim_own(w, bound, all_own);
        if !own.is_empty() {
            return Some(own);
        }
    }
    None
}

/// The stealing path oversplits the frontier more than the static one
/// (`8×` threads): dynamic balancing thrives on fine granularity, and a
/// claim moves a whole prefix at once so per-seed overhead stays small.
/// One thread keeps the single root seed so the lone worker replays the
/// sequential join exactly.
fn frontier_target(threads: usize) -> usize {
    if threads == 1 {
        1
    } else {
        threads * 8
    }
}

/// One stage-one worker: an [`ExpansionDriver`] fed by claim rounds. The
/// claim bound is the driver's own stage-one predicate — the clamped
/// `qDmax` for exact policies, the ratcheted `eDmax` for aggressive ones
/// (seeds beyond it could not be emitted in stage one anyway; leaving
/// them unclaimed routes them straight to stage two).
#[allow(clippy::too_many_arguments)]
fn stage_one_worker<const D: usize, P: PruningPolicy>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    pool: &StealPool<Pair<D>>,
    w: usize,
    edmax0: f64,
    shared: &MinBound,
    schedule: Option<TestSchedule>,
) -> StageOnePool<D> {
    let mut drv = ExpansionDriver::new(r, s, cfg, k, est, P::AGGRESSIVE, edmax0, Some(shared));
    let mut step = 0u64;
    loop {
        step += 1;
        if let Some(sch) = &schedule {
            if sch.stall(w, step) {
                sch.spin();
            }
        }
        let forced = schedule.is_some_and(|sch| sch.force_steal(w, step));
        let bound = drv.stage_one_claim_bound();
        let Some(claimed) = claim_round(
            pool,
            w,
            bound,
            false,
            forced,
            &mut drv.stats.pairs_stolen,
            &mut drv.stats.steal_attempts,
        ) else {
            break;
        };
        drv.seed_counted(claimed);
        drv.run_stage_one_stealing();
    }
    drv.into_pool(P::AGGRESSIVE)
}

/// A stage-two work item, keyed for the pool's ascending deques. The
/// variants track counting history (module docs): `Fresh` pairs and
/// `Comp` entries re-enter a queue uncounted, `Unclaimed` seeds are
/// counted on entry. A stolen `Comp` entry carries its own sweep lists
/// and per-anchor marks, so skip bookkeeping migrates losslessly with it.
enum Work<const D: usize> {
    Fresh(Pair<D>),
    Unclaimed(Pair<D>),
    Comp(CompEntry<D>),
}

fn work_key<const D: usize>(w: &Work<D>) -> f64 {
    match w {
        Work::Fresh(p) | Work::Unclaimed(p) => p.dist,
        Work::Comp(e) => e.key,
    }
}

impl<const D: usize> PartitionItem<D> for Work<D> {
    fn order_key(&self) -> f64 {
        work_key(self)
    }
    fn region(&self) -> Rect<D> {
        match self {
            Work::Fresh(p) | Work::Unclaimed(p) => p.region(),
            Work::Comp(e) => e.region(),
        }
    }
    fn cost(&self) -> u64 {
        match self {
            Work::Fresh(p) | Work::Unclaimed(p) => PartitionItem::cost(p),
            Work::Comp(e) => PartitionItem::cost(e),
        }
    }
}

/// One stage-two worker: exact cutoffs, distance queue pre-seeded
/// (uncounted) with the pooled stage-one distances. The *first* claim
/// takes the worker's entire own deque — mirroring the static path's
/// whole-partition seeding, which is what keeps one-thread runs
/// counter-identical — later claims (after steals) use the exact
/// `qDmax`-clamped bound.
#[allow(clippy::too_many_arguments)]
fn stage_two_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    pool: &StealPool<Work<D>>,
    w: usize,
    dists: &[f64],
    shared: &MinBound,
    schedule: Option<TestSchedule>,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let mut drv = ExpansionDriver::new(r, s, cfg, k, est, false, f64::INFINITY, Some(shared));
    drv.seed_replayed(Vec::new(), Vec::new(), dists);
    let mut first = true;
    let mut step = 0u64;
    loop {
        step += 1;
        if let Some(sch) = &schedule {
            if sch.stall(w, step) {
                sch.spin();
            }
        }
        let forced = !first && schedule.is_some_and(|sch| sch.force_steal(w, step));
        let bound = if first {
            f64::INFINITY
        } else {
            drv.stage_two_claim_bound()
        };
        let Some(claimed) = claim_round(
            pool,
            w,
            bound,
            first,
            forced,
            &mut drv.stats.pairs_stolen,
            &mut drv.stats.steal_attempts,
        ) else {
            break;
        };
        first = false;
        let mut fresh = Vec::new();
        let mut unclaimed = Vec::new();
        let mut comps = Vec::new();
        for item in claimed {
            match item {
                Work::Fresh(p) => fresh.push(p),
                Work::Unclaimed(p) => unclaimed.push(p),
                Work::Comp(e) => comps.push(e),
            }
        }
        drv.seed_replayed(fresh, comps, &[]);
        drv.seed_counted(unclaimed);
        drv.run_stage_two_stealing();
    }
    drv.finish()
}

/// One worker of the stealing incremental join: a [`StageDriver`] cursor
/// fed by claim rounds, pumped while its next emission can still beat the
/// shared bound. There is no `take` cap on the pump — after `take`
/// insertions the worker's own published `qDmax` caps it through the
/// shared bound, and a cap on locally-claimed work would be wrong anyway
/// once seeds move between workers.
#[allow(clippy::too_many_arguments)]
fn idj_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: AmIdjOptions,
    pool: &StealPool<Pair<D>>,
    w: usize,
    shared: &MinBound,
    schedule: Option<TestSchedule>,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let mut cursor = StageDriver::with_seeds(r, s, cfg, opts, Vec::new(), shared);
    let mut distq = DistanceQueue::new(take);
    let mut results = Vec::new();
    let mut tightenings = 0u64;
    let (mut stolen, mut attempts) = (0u64, 0u64);
    let mut step = 0u64;
    loop {
        step += 1;
        if let Some(sch) = &schedule {
            if sch.stall(w, step) {
                sch.spin();
            }
        }
        let forced = schedule.is_some_and(|sch| sch.force_steal(w, step));
        let Some(claimed) = claim_round(
            pool,
            w,
            shared.get(),
            false,
            forced,
            &mut stolen,
            &mut attempts,
        ) else {
            break;
        };
        cursor.push_seeds(claimed);
        loop {
            // The cursor's minimum queue key lower-bounds every future
            // emission: stop before doing the work once it passes the
            // bound.
            match cursor.peek_key() {
                Some(key) if key <= shared.get() => {}
                _ => break,
            }
            let Some(pair) = cursor.next() else { break };
            if pair.dist > shared.get() {
                // The stream is ascending; everything later is farther
                // still (and a tighter bound may admit new claims, which
                // the outer loop handles).
                break;
            }
            distq.insert(pair.dist);
            let q = distq.qdmax();
            if q.is_finite() && shared.tighten(q) {
                tightenings += 1;
            }
            results.push(pair);
        }
    }
    let (mut stats, queue_io) = cursor.finish_worker();
    stats.bound_tightenings += tightenings;
    stats.distq_insertions += distq.insertions();
    stats.pairs_stolen += stolen;
    stats.steal_attempts += attempts;
    (results, stats, queue_io)
}

/// The stealing k-distance join: [`Parallel::run_kdj`] with the static
/// partitioning replaced by [`StealPool`] claim rounds. `threads` is
/// already resolved.
///
/// [`Parallel::run_kdj`]: super::backend::Parallel
pub(crate) fn run_kdj<const D: usize, P: PruningPolicy>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    policy: &P,
    threads: usize,
    schedule: Option<TestSchedule>,
) -> JoinOutput {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let est = Estimator::from_trees(r, s);
    let edmax0 = policy.initial_edmax(est.as_ref(), k);
    let shared = MinBound::new(f64::INFINITY);
    let mut results = Vec::new();
    let mut queue_io = 0.0;
    if k > 0 {
        let mut frontier = seed_frontier(r, s, cfg, frontier_target(threads), &mut stats);
        frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
        let seeds = partition(frontier, threads, cfg.partition);
        let pool = StealPool::new(seeds, |p: &Pair<D>| p.dist);
        let est = est.as_ref();
        let shared = &shared;

        // ---- Stage one: claim rounds over the frontier pool ----
        let t0 = std::time::Instant::now();
        let outcomes = {
            let pool = &pool;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        scope.spawn(move || {
                            let span = WorkerBufferSpan::begin(w);
                            let mut out = stage_one_worker::<D, P>(
                                r, s, k, cfg, est, pool, w, edmax0, shared, schedule,
                            );
                            span.record(&mut out.stats);
                            (out, t0.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
        };
        let finishes: Vec<u64> = outcomes.iter().map(|(_, ns)| *ns).collect();
        stats.barrier_idle_ns += barrier_idle(&finishes);
        let mut leftovers = Vec::new();
        let mut comps = Vec::new();
        let mut dists = Vec::new();
        for (outcome, _) in outcomes {
            results.extend(outcome.results);
            leftovers.extend(outcome.leftovers);
            comps.extend(outcome.comps);
            dists.extend(outcome.dists);
            stats.absorb_worker(&outcome.stats);
            queue_io += outcome.queue_io;
        }

        if P::AGGRESSIVE {
            // Pooled k-th smallest stage-one distance: the tightest proven
            // bound stage one produced (see the static path).
            dists.sort_unstable_by(f64::total_cmp);
            dists.truncate(k);
            if dists.len() == k {
                let kth = dists[k - 1];
                if kth.is_finite() && shared.tighten(kth) {
                    stats.bound_tightenings += 1;
                }
            }
            let bound = shared.get();
            leftovers.retain(|p| p.dist <= bound);
            comps.retain(|e| e.key <= bound);
            // Seeds no stage-one worker claimed (all beyond every ratcheted
            // eDmax) still belong to stage two — they were rejected against
            // an estimate, not a proven bound.
            let mut unclaimed = pool.into_remaining();
            unclaimed.retain(|p| p.dist <= bound);

            let mut work: Vec<Work<D>> =
                Vec::with_capacity(leftovers.len() + unclaimed.len() + comps.len());
            work.extend(leftovers.into_iter().map(Work::Fresh));
            work.extend(unclaimed.into_iter().map(Work::Unclaimed));
            work.extend(comps.into_iter().map(Work::Comp));

            // ---- Stage two: claim rounds over the work-item pool ----
            if !work.is_empty() {
                stats.stages = 2;
                // Stable: parked compensation entries share equal keys en
                // masse (all at `eDmax.next_up()`), and one-thread parity
                // with the static path needs their original order kept.
                work.sort_by(|a, b| work_key(a).total_cmp(&work_key(b)));
                let wpool = StealPool::new(partition(work, threads, cfg.partition), work_key);
                let dists = &dists[..];
                let t0 = std::time::Instant::now();
                let outputs = {
                    let wpool = &wpool;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..threads)
                            .map(|w| {
                                scope.spawn(move || {
                                    let span = WorkerBufferSpan::begin(w);
                                    let mut out = stage_two_worker(
                                        r, s, k, cfg, est, wpool, w, dists, shared, schedule,
                                    );
                                    span.record(&mut out.1);
                                    (out, t0.elapsed().as_nanos() as u64)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("worker panicked"))
                            .collect::<Vec<_>>()
                    })
                };
                let finishes: Vec<u64> = outputs.iter().map(|(_, ns)| *ns).collect();
                stats.barrier_idle_ns += barrier_idle(&finishes);
                for ((mut part, wstats, wio), _) in outputs {
                    results.append(&mut part);
                    stats.absorb_worker(&wstats);
                    queue_io += wio;
                }
            }
        }
        // Exact policies may leave unclaimed seeds behind: every worker
        // rejected them against its qDmax-clamped exit bound, which
        // upper-bounds the global Dmax(k), so they are provably outside
        // the answer and the pool drops with them.
        sort_canonical(&mut results);
        results.truncate(k);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    JoinOutput { results, stats }
}

/// The stealing incremental join: [`Parallel::run_idj`] with claim rounds
/// in place of the static seed partitioning.
///
/// [`Parallel::run_idj`]: super::backend::Parallel
pub(crate) fn run_idj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    threads: usize,
    schedule: Option<TestSchedule>,
) -> JoinOutput {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let shared = MinBound::new(f64::INFINITY);
    let mut results = Vec::new();
    let mut queue_io = 0.0;
    if take > 0 {
        let mut frontier = seed_frontier(r, s, cfg, frontier_target(threads), &mut stats);
        frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
        let seeds = partition(frontier, threads, cfg.partition);
        let pool = StealPool::new(seeds, |p: &Pair<D>| p.dist);
        let shared = &shared;
        let t0 = std::time::Instant::now();
        let outputs = {
            let pool = &pool;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let opts = opts.clone();
                        scope.spawn(move || {
                            let span = WorkerBufferSpan::begin(w);
                            let mut out =
                                idj_worker(r, s, take, cfg, opts, pool, w, shared, schedule);
                            span.record(&mut out.1);
                            (out, t0.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
        };
        let finishes: Vec<u64> = outputs.iter().map(|(_, ns)| *ns).collect();
        stats.barrier_idle_ns += barrier_idle(&finishes);
        for ((mut part, wstats, wio), _) in outputs {
            results.append(&mut part);
            stats.stages = stats.stages.max(wstats.stages);
            stats.absorb_worker(&wstats);
            queue_io += wio;
        }
        sort_canonical(&mut results);
        results.truncate(take);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    JoinOutput { results, stats }
}
