//! The unified join engine: one expansion driver, pluggable pruning
//! policies and execution backends.
//!
//! Every distance-join variant in the paper is the same machine —
//! bidirectional node expansion from a main queue, the Eq. 2
//! sweeping-axis plane sweep, qDmax/eDmax cutoffs, stage and
//! compensation bookkeeping — configured along two independent axes:
//!
//! * **[`PruningPolicy`]** — what stage one is allowed to skip.
//!   [`Exact`] prunes on the proven `qDmax` alone (B-KDJ); [`Aggressive`]
//!   prunes on an estimated `eDmax` with per-anchor skip marks and a
//!   compensation stage (AM-KDJ), never falsely dismissing a pair.
//! * **[`ExecBackend`]** — how many drivers run. [`Sequential`] is one
//!   driver; [`Parallel`] partitions the pair-space frontier across
//!   workers sharing one CAS-min [`MinBound`] and pools the per-worker
//!   compensation queues between stages.
//!
//! [`kdj`] runs any (policy × backend) combination; [`idj`] runs the
//! incremental join (whose per-stage loop is [`StageDriver`]) on any
//! backend. The public algorithm entry points (`b_kdj`, `am_kdj`,
//! `AmIdj`, `par_*`) are thin adapters over these two calls.
//!
//! The engine is also where cross-cutting optimizations land once: the
//! batched SoA leaf distance kernel (`batch`) accelerates every
//! leaf-heavy sweep whose axis cutoff is frozen, for every algorithm,
//! from one file.
//!
//! Above both axes sits the *plan* layer (`plan`): with
//! [`JoinConfig::partitions`](crate::JoinConfig::partitions) set, a
//! k-distance join executes as a set of independent per-partition-pair
//! engine invocations behind a bounds-only pre-filter, linked by one
//! shared [`MinBound`] — the seam future multi-shard execution builds
//! on (DESIGN.md §11).

mod backend;
pub(crate) mod batch;
mod bound;
mod checkpoint;
mod driver;
mod partition;
mod plan;
mod policy;
mod snapshot;
mod stage;
mod steal;
pub(crate) mod sweep;

pub use backend::{ExecBackend, Parallel, Sequential};
pub use bound::MinBound;
pub use checkpoint::{
    idj_resumable, kdj_resumable, read_checkpoint, write_checkpoint, Checkpointed, PauseCtl,
};
pub use policy::{Aggressive, Exact, PruningPolicy};
pub use snapshot::{EngineSnapshot, SnapshotError, SnapshotKind};
pub use stage::StageDriver;
pub use steal::TestSchedule;

use crate::{AmIdjOptions, JoinConfig, JoinOutput};
use amdj_rtree::RTree;

/// Runs a k-distance join: the `k` nearest pairs under any
/// (policy × backend) combination. `(Exact, Sequential)` is
/// [`crate::b_kdj`], `(Aggressive, Sequential)` is [`crate::am_kdj`],
/// and the [`Parallel`] backend gives their `par_*` counterparts.
///
/// With [`JoinConfig::partitions`](crate::JoinConfig::partitions) ≥ 2
/// the join executes as a partitioned plan (`plan` module): both
/// datasets are STR-tiled, partition pairs are pruned by the bounds-only
/// pre-filter, and each surviving pair runs as an independent engine
/// invocation — same policy, same backend — under one shared bound.
/// Results are bit-identical to the monolithic plan.
pub fn kdj<const D: usize, P: PruningPolicy, B: ExecBackend>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    policy: &P,
    backend: &B,
) -> JoinOutput {
    if let Some(parts) = cfg.partitions.filter(|&p| p > 1) {
        return plan::run_partitioned_kdj(r, s, k, cfg, policy, backend, parts);
    }
    backend.run_kdj(r, s, k, cfg, policy)
}

/// Runs the incremental distance join, materializing its first `take`
/// pairs. On [`Sequential`] this drives one [`StageDriver`] cursor
/// (see [`crate::AmIdj`] for the streaming API); on [`Parallel`] it is
/// [`crate::par_am_idj`].
pub fn idj<const D: usize, B: ExecBackend>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    backend: &B,
) -> JoinOutput {
    backend.run_idj(r, s, take, cfg, opts)
}
