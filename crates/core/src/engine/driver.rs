//! The expansion driver: the single owner of the main-queue loop, node
//! expansion, plane sweep, and stage/compensation bookkeeping that every
//! k-distance join variant shares.
//!
//! The driver is deliberately *runtime*-flagged on aggressiveness rather
//! than generic over the policy: the exact path is the aggressive path
//! with the ratchet, park, and early-termination steps disabled, and a
//! branch on a bool the CPU predicts perfectly is cheaper to maintain
//! than two monomorphized loops. The [`PruningPolicy`] trait supplies the
//! flag and the initial cutoff; the [`ExecBackend`] decides how many
//! drivers run and how their stages hand work to each other.
//!
//! # Why stage two's early break never fires sequentially
//!
//! [`run_stage_two`](ExpansionDriver::run_stage_two) breaks when the next
//! merged key exceeds the clamped `qDmax`. In a sequential join this is
//! provably dead code: while fewer than `k` results are out and the
//! distance queue holds `k` entries, each retained distance belongs to a
//! distinct emitted object pair that was either already popped (a result)
//! or still sits in the main queue with distance ≤ `qDmax` — so at least
//! `k − results` result pairs are pending and the main queue's minimum is
//! ≤ `qDmax`. The break exists for *parallel* stage-two workers, whose
//! distance queue is pre-seeded from the pooled stage-one queues: their
//! clamped `qDmax` upper-bounds the global k-th answer distance, so any
//! larger key cannot contribute to the merged answer.
//!
//! [`PruningPolicy`]: super::policy::PruningPolicy
//! [`ExecBackend`]: super::backend::ExecBackend

use amdj_rtree::RTree;

use crate::mainq::MainQueue;
use crate::{DistanceQueue, Estimator, ItemRef, JoinConfig, JoinStats, Pair, ResultPair};

use super::bound::MinBound;
use super::checkpoint::PauseCtl;
use super::sweep::{CompEntry, CompQueue, MarkMode, SweepScratch, SweepSink};

/// The engine's one sweep sink. `axis` selects the cutoff shape:
/// `Some(eDmax)` freezes the axis cutoff for the whole sweep (aggressive
/// stage one, which also unlocks the batched leaf kernel), `None` keeps
/// it live at the clamped `qDmax` (exact sweeps and compensation). The
/// real cutoff is always the live `qDmax`, clamped by the shared bound
/// when one exists; emitted results publish the new `qDmax` back into the
/// shared bound.
pub(crate) struct EngineSink<'x, const D: usize> {
    pub(crate) mainq: &'x mut MainQueue<D>,
    pub(crate) distq: &'x mut DistanceQueue,
    pub(crate) axis: Option<f64>,
    pub(crate) shared: Option<&'x MinBound>,
    pub(crate) tightenings: &'x mut u64,
}

impl<const D: usize> EngineSink<'_, D> {
    fn qdmax(&self) -> f64 {
        let q = self.distq.qdmax();
        match self.shared {
            Some(bound) => bound.clamp(q),
            None => q,
        }
    }
}

impl<const D: usize> SweepSink<D> for EngineSink<'_, D> {
    fn axis_cutoff(&self) -> f64 {
        self.axis.unwrap_or_else(|| self.qdmax())
    }
    fn real_cutoff(&self) -> f64 {
        self.qdmax()
    }
    fn fixed_axis_cutoff(&self) -> Option<f64> {
        self.axis
    }
    fn emit(&mut self, pair: Pair<D>) {
        let is_result = pair.is_result();
        let dist = pair.dist;
        self.mainq.push(pair);
        if is_result {
            self.distq.insert(dist);
            if let Some(bound) = self.shared {
                let q = self.distq.qdmax();
                if q.is_finite() && bound.tighten(q) {
                    *self.tightenings += 1;
                }
            }
        }
    }
}

/// Pushes the pair of root nodes, the starting point of every traversal.
/// No-op when either tree is empty.
pub(crate) fn push_roots<const D: usize>(r: &RTree<D>, s: &RTree<D>, mainq: &mut MainQueue<D>) {
    if let (Some(rb), Some(sb), Some(rp), Some(sp)) =
        (r.bounds(), s.bounds(), r.root_page(), s.root_page())
    {
        mainq.push(Pair {
            dist: rb.min_dist(&sb),
            a: ItemRef::Node {
                page: rp.0,
                level: r.height() - 1,
            },
            b: ItemRef::Node {
                page: sp.0,
                level: s.height() - 1,
            },
            a_mbr: rb,
            b_mbr: sb,
        });
    }
}

pub(crate) fn to_result<const D: usize>(pair: &Pair<D>) -> ResultPair {
    let (ItemRef::Object { oid: a }, ItemRef::Object { oid: b }) = (pair.a, pair.b) else {
        panic!("not an object pair")
    };
    ResultPair {
        r: a,
        s: b,
        dist: pair.dist,
    }
}

/// What a stage-one driver hands back to a parallel backend: its results,
/// the prunable remainder of its frontier, its parked compensation
/// entries, and the distances its queue retained (pooled into the global
/// bound and into stage-two workers' queues). Suspended drivers (a fired
/// [`PauseCtl`]) come back through the same shape with `suspended` set
/// and their whole sub-bound frontier in `leftovers`.
pub(crate) struct StageOnePool<const D: usize> {
    pub(crate) results: Vec<ResultPair>,
    pub(crate) leftovers: Vec<Pair<D>>,
    pub(crate) comps: Vec<CompEntry<D>>,
    pub(crate) dists: Vec<f64>,
    pub(crate) stats: JoinStats,
    pub(crate) queue_io: f64,
    /// The driver's final (ratcheted) `eDmax`; `+∞` under exact pruning.
    pub(crate) edmax: f64,
    /// Whether the driver stopped on a fired pause rather than running
    /// out of claimable work.
    pub(crate) suspended: bool,
}

/// One expansion loop over one frontier: queues, sweep scratch, cutoffs,
/// and the two paper stages. Sequential backends run one driver to
/// completion; parallel backends run one per worker against a shared
/// [`MinBound`].
pub(crate) struct ExpansionDriver<'x, const D: usize> {
    r: &'x RTree<D>,
    s: &'x RTree<D>,
    cfg: &'x JoinConfig,
    k: usize,
    aggressive: bool,
    edmax: f64,
    shared: Option<&'x MinBound>,
    mainq: MainQueue<D>,
    distq: DistanceQueue,
    compq: CompQueue<D>,
    scratch: SweepScratch<D>,
    results: Vec<ResultPair>,
    pub(crate) stats: JoinStats,
    tightenings: u64,
    /// Cooperative pause signal of a resumable join; checked at the loop
    /// tops, ticked once per expansion or compensation replay.
    pause: Option<&'x PauseCtl>,
    suspended: bool,
}

impl<'x, const D: usize> ExpansionDriver<'x, D> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        r: &'x RTree<D>,
        s: &'x RTree<D>,
        cfg: &'x JoinConfig,
        k: usize,
        est: Option<&Estimator<D>>,
        aggressive: bool,
        edmax: f64,
        shared: Option<&'x MinBound>,
    ) -> Self {
        ExpansionDriver {
            r,
            s,
            cfg,
            k,
            aggressive,
            edmax,
            shared,
            mainq: MainQueue::new(cfg, est),
            distq: DistanceQueue::new(k),
            compq: CompQueue::new(),
            scratch: SweepScratch::new(),
            results: Vec::with_capacity(k.min(1 << 20)),
            stats: JoinStats {
                stages: 1,
                ..JoinStats::default()
            },
            tightenings: 0,
            pause: None,
            suspended: false,
        }
    }

    /// Attaches the pause control of a resumable join.
    pub(crate) fn set_pause(&mut self, pause: Option<&'x PauseCtl>) {
        self.pause = pause;
    }

    /// Whether the last stage loop stopped on a fired pause.
    pub(crate) fn suspended(&self) -> bool {
        self.suspended
    }

    fn pause_fired(&self) -> bool {
        self.pause.is_some_and(|p| p.should_pause())
    }

    fn note_expansion(&self) {
        if let Some(p) = self.pause {
            p.note_expansion();
        }
    }

    /// Seeds the driver with the root pair (sequential start).
    pub(crate) fn seed_roots(&mut self) {
        push_roots(self.r, self.s, &mut self.mainq);
    }

    /// Seeds the driver with a frontier partition. Counted as fresh queue
    /// work: these pairs enter a main queue for the first time after the
    /// (uncounted) frontier split.
    pub(crate) fn seed_counted(&mut self, pairs: Vec<Pair<D>>) {
        for pair in pairs {
            let is_result = pair.is_result();
            let dist = pair.dist;
            self.mainq.push(pair);
            if is_result {
                self.distq.insert(dist);
            }
        }
    }

    /// Seeds a resumed stage-one driver with snapshot frontier pairs.
    /// Uncounted, and — unlike [`seed_counted`](Self::seed_counted) —
    /// *without* distance-queue insertion: a snapshot result-pair's
    /// distance already lives in the snapshot's `dists` evidence, and
    /// inserting it again would double-count that pair once the pools
    /// merge, yielding an unsoundly tight bound.
    pub(crate) fn seed_resumed(&mut self, pairs: Vec<Pair<D>>) {
        for pair in pairs {
            self.mainq.unpop(pair);
        }
    }

    /// Seeds a stage-two driver with pooled stage-one work. *Not*
    /// counted: every pair, compensation entry, and retained distance was
    /// already counted by the worker that first enqueued it — re-counting
    /// here would make parallel insertion totals diverge from the
    /// sequential join's.
    pub(crate) fn seed_replayed(
        &mut self,
        pairs: Vec<Pair<D>>,
        comps: Vec<CompEntry<D>>,
        dists: &[f64],
    ) {
        for pair in pairs {
            self.mainq.unpop(pair);
        }
        for entry in comps {
            self.compq.seed(entry);
        }
        for &d in dists {
            self.distq.seed(d);
        }
    }

    /// The live pruning bound: `qDmax`, clamped by the shared bound when
    /// running under a parallel backend.
    fn cutoff(&self) -> f64 {
        let q = self.distq.qdmax();
        match self.shared {
            Some(bound) => bound.clamp(q),
            None => q,
        }
    }

    /// The largest frontier key this driver's stage one would still
    /// process — the work-stealing claim predicate. The aggressive policy
    /// refuses seeds beyond its (ratcheted) `eDmax`: stage one could not
    /// emit their results anyway, and leaving them in the pool lets the
    /// backend route them straight to stage two instead of shuffling them
    /// through a worker that would only unpop them.
    pub(crate) fn stage_one_claim_bound(&self) -> f64 {
        if self.aggressive {
            self.edmax
        } else {
            self.cutoff()
        }
    }

    /// The work-stealing claim predicate of stage two: the clamped
    /// `qDmax`, beyond which no pair or compensation entry can contribute
    /// to the merged answer.
    pub(crate) fn stage_two_claim_bound(&self) -> f64 {
        self.cutoff()
    }

    /// Stage one. Exact (`aggressive == false`): Algorithm 1's loop, the
    /// only cutoff the proven `qDmax`. Aggressive: Algorithm 2 — ratchet
    /// `eDmax` down once `qDmax` catches up, terminate when the dequeued
    /// distance exceeds `eDmax` (erratum fixed, see `amkdj`), sweep with
    /// suffix marks, and park any expansion that skipped work.
    pub(crate) fn run_stage_one(&mut self) {
        self.stage_one_loop(false);
    }

    /// Stage one under the work-stealing backend. Identical to
    /// [`run_stage_one`](Self::run_stage_one) except that reaching `k`
    /// results does not stop the loop while queued keys can still beat the
    /// cutoff: with dynamically claimed seeds a worker's first `k`
    /// emissions are not necessarily its partition's top `k` (a later
    /// steal may hold closer pairs), so the ascending-prefix argument that
    /// justifies stopping at `k` no longer applies. Surplus results are
    /// harmless — the backend's canonical merge sorts and truncates.
    pub(crate) fn run_stage_one_stealing(&mut self) {
        self.stage_one_loop(true);
    }

    fn stage_one_loop(&mut self, past_k: bool) {
        loop {
            if self.pause_fired() {
                self.suspended = true;
                break;
            }
            if self.results.len() >= self.k {
                if !past_k {
                    break;
                }
                match self.mainq.peek_min() {
                    Some(key) if key <= self.cutoff() => {}
                    _ => break,
                }
            }
            let Some(pair) = self.mainq.pop() else { break };
            if self.aggressive {
                // Algorithm 2 line 8: an overestimated eDmax is detected
                // and tightened; from here on the stage is exact.
                let q = self.cutoff();
                if q <= self.edmax {
                    self.edmax = q;
                }
                // Condition (3): results beyond eDmax cannot be emitted
                // safely — put the pair back and move to compensation.
                if pair.dist > self.edmax {
                    self.mainq.unpop(pair);
                    break;
                }
            }
            if pair.is_result() {
                self.results.push(to_result(&pair));
                continue;
            }
            if self.aggressive {
                self.scratch
                    .expand(self.r, self.s, &pair, self.edmax, self.cfg);
                self.stats.stage1_expansions += 1;
                self.note_expansion();
                let mut sink = EngineSink {
                    mainq: &mut self.mainq,
                    distq: &mut self.distq,
                    axis: Some(self.edmax),
                    shared: self.shared,
                    tightenings: &mut self.tightenings,
                };
                self.scratch
                    .sweep(&mut sink, &mut self.stats, MarkMode::Suffix);
                if !self.scratch.marks_exhausted() {
                    let entry = self.scratch.park(pair.dist.max(self.edmax.next_up()));
                    self.compq.push(entry, &mut self.stats);
                }
            } else {
                let cutoff = self.cutoff();
                self.scratch.expand(self.r, self.s, &pair, cutoff, self.cfg);
                self.stats.stage1_expansions += 1;
                self.note_expansion();
                let mut sink = EngineSink {
                    mainq: &mut self.mainq,
                    distq: &mut self.distq,
                    axis: None,
                    shared: self.shared,
                    tightenings: &mut self.tightenings,
                };
                self.scratch
                    .sweep(&mut sink, &mut self.stats, MarkMode::None);
            }
        }
    }

    /// Whether a sequential aggressive join owes a compensation stage.
    pub(crate) fn needs_stage_two(&self) -> bool {
        self.results.len() < self.k && (self.compq.len() > 0 || !self.mainq.is_empty())
    }

    /// Stage two (Algorithm 3): merge the main and compensation queues by
    /// key; fresh pairs expand exactly (B-KDJ behaviour), parked entries
    /// replay exactly the child pairs stage one skipped. `qDmax` is exact
    /// here, so nothing needs parking again.
    pub(crate) fn run_stage_two(&mut self) {
        self.stage_two_loop(false);
    }

    /// Stage two under the work-stealing backend: the `k`-results stop is
    /// lifted for the same reason as in
    /// [`run_stage_one_stealing`](Self::run_stage_one_stealing); the
    /// `key > cutoff` break alone terminates the loop, and it is sound
    /// because the clamped `qDmax` upper-bounds the global k-th answer
    /// distance (module docs).
    pub(crate) fn run_stage_two_stealing(&mut self) {
        self.stage_two_loop(true);
    }

    fn stage_two_loop(&mut self, past_k: bool) {
        loop {
            if self.pause_fired() {
                self.suspended = true;
                break;
            }
            if !past_k && self.results.len() >= self.k {
                break;
            }
            let main_key = self.mainq.peek_min();
            let comp_key = self.compq.peek_key();
            let (take_main, key) = match (main_key, comp_key) {
                (None, None) => break,
                (Some(m), None) => (true, m),
                (None, Some(c)) => (false, c),
                (Some(m), Some(c)) => (m <= c, m.min(c)),
            };
            // Dead sequentially, load-bearing for parallel stage-two
            // workers — see the module docs.
            if key > self.cutoff() {
                break;
            }
            if take_main {
                let pair = self.mainq.pop().expect("peeked");
                if pair.is_result() {
                    self.results.push(to_result(&pair));
                    continue;
                }
                let cutoff = self.cutoff();
                self.scratch.expand(self.r, self.s, &pair, cutoff, self.cfg);
                self.stats.stage2_expansions += 1;
                self.note_expansion();
                let mut sink = EngineSink {
                    mainq: &mut self.mainq,
                    distq: &mut self.distq,
                    axis: None,
                    shared: self.shared,
                    tightenings: &mut self.tightenings,
                };
                self.scratch
                    .sweep(&mut sink, &mut self.stats, MarkMode::None);
            } else {
                let mut entry = self.compq.pop().expect("peeked");
                let mut sink = EngineSink {
                    mainq: &mut self.mainq,
                    distq: &mut self.distq,
                    axis: None,
                    shared: self.shared,
                    tightenings: &mut self.tightenings,
                };
                self.scratch
                    .compensate(&mut entry, &mut sink, &mut self.stats);
                self.note_expansion();
            }
        }
    }

    /// Finalizes per-driver accounting and returns the results.
    pub(crate) fn finish(mut self) -> (Vec<ResultPair>, JoinStats, f64) {
        self.stats.bound_tightenings = self.tightenings;
        self.stats.distq_insertions = self.distq.insertions();
        let queue_io = self.mainq.account(&mut self.stats);
        (self.results, self.stats, queue_io)
    }

    /// Finalizes a stage-one worker for pooling. With `drain_leftovers`
    /// (aggressive policy, or any suspended driver), the remaining
    /// frontier below the shared bound and the surviving compensation
    /// entries come along; anything at a key strictly above the bound is
    /// provably outside the answer (the shared bound only ever holds
    /// published `qDmax` values — the k-th of k real distinct-pair
    /// distances). The retain comparisons are `<=` — a strict `<` would
    /// falsely dismiss work exactly at the bound.
    pub(crate) fn into_pool(mut self, drain_leftovers: bool) -> StageOnePool<D> {
        let mut leftovers = Vec::new();
        let mut comps = Vec::new();
        if drain_leftovers {
            let bound = self.shared.map_or(f64::INFINITY, |b| b.get());
            while let Some(pair) = self.mainq.pop() {
                if pair.dist > bound {
                    break;
                }
                leftovers.push(pair);
            }
            comps = self.compq.drain_sorted();
            comps.retain(|e| e.key <= bound);
        }
        self.stats.bound_tightenings = self.tightenings;
        self.stats.distq_insertions = self.distq.insertions();
        let dists = self.distq.retained();
        let queue_io = self.mainq.account(&mut self.stats);
        StageOnePool {
            results: self.results,
            leftovers,
            comps,
            dists,
            stats: self.stats,
            queue_io,
            edmax: self.edmax,
            suspended: self.suspended,
        }
    }
}
