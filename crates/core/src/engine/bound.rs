//! The shared pruning bound of the parallel backends.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotone-decreasing `f64` cell: the global pruning bound
/// shared by the workers of one parallel adaptive join.
///
/// The value only ever moves down ([`tighten`](Self::tighten) is a CAS-min
/// loop), so readers may use relaxed loads: a stale value is simply a
/// larger bound, which prunes less but never prunes wrongly. `NaN` inputs
/// are ignored (a `NaN` never compares less than the current value).
pub struct MinBound {
    bits: AtomicU64,
}

impl MinBound {
    /// Creates a bound holding `v` (use `f64::INFINITY` for "no bound
    /// yet").
    pub fn new(v: f64) -> Self {
        MinBound {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// The current bound. Monotone: successive calls never increase.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// `v` clamped to the bound — the pattern every driver cutoff uses.
    /// `clamp(v) == v.min(get())`, so a stale read only loosens.
    pub fn clamp(&self, v: f64) -> f64 {
        v.min(self.get())
    }

    /// Lowers the bound to `v` if `v` is smaller; returns whether this
    /// call tightened it.
    pub fn tighten(&self, v: f64) -> bool {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            // NaN compares `None` here and is rejected like any
            // non-smaller value.
            if v.partial_cmp(&f64::from_bits(cur)) != Some(std::cmp::Ordering::Less) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_bound_tightens_monotonically() {
        let b = MinBound::new(f64::INFINITY);
        assert!(b.tighten(10.0));
        assert_eq!(b.get(), 10.0);
        assert!(!b.tighten(10.0), "equal value is not a tightening");
        assert!(!b.tighten(11.0), "larger value must be rejected");
        assert_eq!(b.get(), 10.0);
        assert!(b.tighten(3.5));
        assert_eq!(b.get(), 3.5);
        assert!(!b.tighten(f64::NAN), "NaN is ignored");
        assert_eq!(b.get(), 3.5);
        assert!(b.tighten(0.0));
        assert_eq!(b.get(), 0.0);
    }
}
