//! The incremental stage loop (§4.2–4.3): the machinery behind AM-IDJ,
//! shared by the sequential cursor ([`crate::AmIdj`]) and the parallel
//! incremental join workers.
//!
//! No stopping cardinality is known, so there is no distance queue and no
//! `qDmax`; each stage prunes on an estimated `eDmax_i` alone and streams
//! out every pair closer than it. When the consumer wants more, the next
//! stage raises the estimate (§4.3.2's corrections) and *compensates*:
//! the per-anchor marks kept with every expanded pair let stage `i+1`
//! examine exactly the child pairs stages `1..i` skipped.

use amdj_rtree::{AccessStats, RTree};

use crate::mainq::MainQueue;
use crate::{
    AmIdjOptions, Correction, EdmaxPolicy, Estimator, JoinConfig, JoinStats, Pair, ResultPair,
};

use super::bound::MinBound;
use super::checkpoint::PauseCtl;
use super::driver::{push_roots, to_result};
use super::sweep::{CompEntry, CompQueue, MarkMode, SweepScratch, SweepSink};

/// Sink for incremental sweeps: the stage's `eDmax` is the only cutoff
/// (§4.2), for both the axis and the real distance. Both are frozen for
/// the whole sweep, so leaf–leaf expansions take the batched kernel.
struct IdjSink<'x, const D: usize> {
    mainq: &'x mut MainQueue<D>,
    edmax: f64,
}

impl<const D: usize> SweepSink<D> for IdjSink<'_, D> {
    fn axis_cutoff(&self) -> f64 {
        self.edmax
    }
    fn real_cutoff(&self) -> f64 {
        self.edmax
    }
    fn fixed_axis_cutoff(&self) -> Option<f64> {
        Some(self.edmax)
    }
    fn emit(&mut self, pair: Pair<D>) {
        self.mainq.push(pair);
    }
}

/// One incremental expansion loop: stages `k₁ < k₂ < …`, each pruning on
/// its own `eDmax_i`, with full per-anchor skip bookkeeping so later
/// stages compensate exactly. Drive it with [`next`](Self::next).
///
/// This is the engine's third moving part next to the pruning policies
/// and backends: where the k-distance driver owes a *single* compensation
/// stage (its `qDmax` eventually becomes exact), the incremental loop
/// re-estimates and compensates once per stage, indefinitely.
pub struct StageDriver<'a, const D: usize> {
    r: &'a RTree<D>,
    s: &'a RTree<D>,
    cfg: JoinConfig,
    opts: AmIdjOptions,
    est: Option<Estimator<D>>,
    mainq: MainQueue<D>,
    compq: CompQueue<D>,
    scratch: SweepScratch<D>,
    /// A global pruning bound shared with sibling cursors (parallel
    /// incremental join): cutoffs are clamped to it, and the owning worker
    /// stops consuming once the stream passes it. `None` when standalone.
    shared: Option<&'a MinBound>,
    edmax: f64,
    k_target: u64,
    emitted: u64,
    last_dist: f64,
    /// Upper bound on any possible pair distance — the terminal `eDmax`.
    max_possible: f64,
    counters: JoinStats,
    r_acc0: AccessStats,
    s_acc0: AccessStats,
    r_io0: f64,
    s_io0: f64,
    buf0: (u64, u64, u64),
    /// Cooperative pause signal of a resumable join; checked once per
    /// step-loop iteration, ticked per expansion/compensation.
    pause: Option<&'a PauseCtl>,
}

/// One advance of the stage loop, pause-aware (the resumable incremental
/// join drives the cursor through this instead of
/// [`StageDriver::next`]).
pub(crate) enum Step {
    /// The next nearest pair.
    Pair(ResultPair),
    /// Every pair has been produced (or provably passed the shared
    /// bound).
    Done,
    /// The pause control fired; suspend the cursor.
    Paused,
}

/// Everything a paused incremental cursor owes the snapshot: its pruned
/// frontier and compensation entries plus the stage-loop scalars.
pub(crate) struct IdjSuspend<const D: usize> {
    pub(crate) frontier: Vec<Pair<D>>,
    pub(crate) comps: Vec<CompEntry<D>>,
    pub(crate) stage: u32,
    pub(crate) edmax: f64,
    pub(crate) k_target: u64,
    pub(crate) last_dist: f64,
}

impl<'a, const D: usize> StageDriver<'a, D> {
    /// Starts an incremental join over two indexes, seeded with the root
    /// pair.
    pub fn new(r: &'a RTree<D>, s: &'a RTree<D>, cfg: &JoinConfig, opts: AmIdjOptions) -> Self {
        Self::build(r, s, cfg, opts, None, None)
    }

    /// Starts a cursor over one partition of the pair space (`seeds`),
    /// clamping its cutoffs to a bound shared with sibling cursors — the
    /// building block of the parallel incremental backend.
    pub(crate) fn with_seeds(
        r: &'a RTree<D>,
        s: &'a RTree<D>,
        cfg: &JoinConfig,
        opts: AmIdjOptions,
        seeds: Vec<Pair<D>>,
        shared: &'a MinBound,
    ) -> Self {
        Self::build(r, s, cfg, opts, Some(seeds), Some(shared))
    }

    fn build(
        r: &'a RTree<D>,
        s: &'a RTree<D>,
        cfg: &JoinConfig,
        opts: AmIdjOptions,
        seeds: Option<Vec<Pair<D>>>,
        shared: Option<&'a MinBound>,
    ) -> Self {
        assert!(opts.growth > 1.0, "stage growth must exceed 1");
        assert!(opts.initial_k >= 1, "initial k must be at least 1");
        // Capture the access baseline before any setup reads (the
        // estimator and `max_possible` both touch the roots), so the
        // cursor's node counters cover the same window the parallel
        // backend's whole-join baseline does — single-worker runs then
        // report identical node_requests either way.
        let (r_acc0, s_acc0) = (r.access_stats(), s.access_stats());
        let (r_io0, s_io0) = (r.disk_stats().io_seconds, s.disk_stats().io_seconds);
        let buf0 = amdj_rtree::thread_buffer_stats();
        let est = Estimator::from_trees(r, s);
        let mut mainq = MainQueue::new(cfg, est.as_ref());
        match seeds {
            Some(seeds) => {
                for pair in seeds {
                    mainq.push(pair);
                }
            }
            None => push_roots(r, s, &mut mainq),
        }
        let max_possible = match (r.bounds(), s.bounds()) {
            (Some(rb), Some(sb)) => rb.max_dist(&sb),
            _ => 0.0,
        };
        let edmax = match &opts.edmax {
            EdmaxPolicy::Estimated(_) => est
                .map(|e| e.initial(opts.initial_k))
                .unwrap_or(max_possible),
            EdmaxPolicy::Schedule(v) => v.first().copied().unwrap_or(max_possible),
        };
        let k_target = opts.initial_k;
        StageDriver {
            r,
            s,
            cfg: cfg.clone(),
            opts,
            est,
            mainq,
            compq: CompQueue::new(),
            scratch: SweepScratch::new(),
            shared,
            edmax,
            k_target,
            emitted: 0,
            last_dist: 0.0,
            max_possible,
            counters: JoinStats {
                stages: 1,
                ..JoinStats::default()
            },
            r_acc0,
            s_acc0,
            r_io0,
            s_io0,
            buf0,
            pause: None,
        }
    }

    /// Attaches the pause control of a resumable join. Only
    /// [`next_step`](Self::next_step) observes it.
    pub(crate) fn set_pause(&mut self, pause: Option<&'a PauseCtl>) {
        self.pause = pause;
    }

    /// Overwrites the stage-loop scalars from a snapshot's canonical
    /// merge. All of these steer heuristics (stage numbering, `k_target`
    /// growth, corrections) — none affect which pairs are ultimately
    /// producible, so the merged values only need to be plausible, not
    /// per-worker exact.
    pub(crate) fn restore_state(
        &mut self,
        stage: u32,
        edmax: f64,
        k_target: u64,
        emitted: u64,
        last_dist: f64,
    ) {
        self.counters.stages = stage.max(1);
        self.edmax = edmax.min(self.max_possible);
        self.k_target = k_target.max(1);
        self.emitted = emitted;
        self.last_dist = last_dist;
    }

    /// Re-seeds parked compensation entries from a snapshot, uncounted:
    /// each entry was counted when it was first parked, before the
    /// suspension.
    pub(crate) fn seed_comps(&mut self, comps: Vec<CompEntry<D>>) {
        for entry in comps {
            self.compq.seed(entry);
        }
    }

    /// The stage currently executing (1-based).
    pub fn stage(&self) -> u32 {
        self.counters.stages
    }

    /// The cutoff currently in force.
    pub fn current_edmax(&self) -> f64 {
        self.edmax
    }

    /// The stage cutoff clamped to the shared bound (if any): pairs beyond
    /// the shared bound cannot matter globally, so sweeping past it is
    /// wasted work. Everything skipped stays recoverable through the
    /// `MarkMode::Full` bookkeeping.
    fn clamped_edmax(&self) -> f64 {
        match self.shared {
            Some(b) => b.clamp(self.edmax),
            None => self.edmax,
        }
    }

    /// Injects claimed or stolen frontier seeds into the cursor. Counted
    /// as fresh queue work: under the work-stealing backend seeds wait in
    /// the shared pool (never in any cursor's queue) until exactly one
    /// worker claims them here, so the push below is each seed's first —
    /// and only — main-queue insertion.
    pub(crate) fn push_seeds(&mut self, seeds: Vec<Pair<D>>) {
        for pair in seeds {
            self.mainq.push(pair);
        }
    }

    /// A lower bound on the distance of every future emission (`None` when
    /// exhausted). Lets the parallel backend stop a worker before it does
    /// the work of producing a pair that is already beyond the shared
    /// bound.
    pub(crate) fn peek_key(&mut self) -> Option<f64> {
        match (self.mainq.peek_min(), self.compq.peek_key()) {
            (None, None) => None,
            (Some(m), None) => Some(m),
            (None, Some(c)) => Some(c),
            (Some(m), Some(c)) => Some(m.min(c)),
        }
    }

    /// Produces the next nearest pair, advancing stages as needed;
    /// `None` when every pair has been produced.
    #[allow(clippy::should_implement_trait)] // deliberate cursor API; &mut borrows preclude Iterator
    pub fn next(&mut self) -> Option<ResultPair> {
        match self.next_step() {
            Step::Pair(p) => Some(p),
            Step::Done | Step::Paused => None,
        }
    }

    /// Pause-aware advance: like [`next`](Self::next), but distinguishes
    /// exhaustion from a fired pause control so the resumable backend can
    /// suspend the cursor instead of discarding it.
    pub(crate) fn next_step(&mut self) -> Step {
        let started = std::time::Instant::now();
        let out = self.step();
        self.counters.cpu_seconds += started.elapsed().as_secs_f64();
        out
    }

    fn step(&mut self) -> Step {
        loop {
            if self.pause.is_some_and(|p| p.should_pause()) {
                return Step::Paused;
            }
            let main_key = self.mainq.peek_min();
            let comp_key = self.compq.peek_key();
            let (take_main, key) = match (main_key, comp_key) {
                (None, None) => return Step::Done,
                (Some(m), None) => (true, m),
                (None, Some(c)) => (false, c),
                (Some(m), Some(c)) => (m <= c, m.min(c)),
            };
            if self.shared.is_some_and(|b| key > b.get()) {
                // Worker cursor: `key` lower-bounds every pair this cursor
                // can still produce, and the shared bound only tightens, so
                // nothing left here can enter the global result set. Stop
                // now — advancing stages cannot help, because the sweep
                // cutoff stays clamped to the shared bound and the parked
                // entries would never clear.
                return Step::Done;
            }
            if key > self.edmax {
                // Everything still queued lies beyond the stage cutoff:
                // start the next stage with a larger eDmax.
                self.advance_stage();
                continue;
            }
            if take_main {
                let pair = self.mainq.pop().expect("peeked");
                if pair.is_result() {
                    self.emitted += 1;
                    self.last_dist = pair.dist;
                    self.counters.results += 1;
                    return Step::Pair(to_result(&pair));
                }
                let cutoff = self.clamped_edmax();
                self.scratch
                    .expand(self.r, self.s, &pair, cutoff, &self.cfg);
                if self.counters.stages == 1 {
                    self.counters.stage1_expansions += 1;
                } else {
                    self.counters.stage2_expansions += 1;
                }
                if let Some(p) = self.pause {
                    p.note_expansion();
                }
                let mut sink = IdjSink {
                    mainq: &mut self.mainq,
                    edmax: cutoff,
                };
                self.scratch
                    .sweep(&mut sink, &mut self.counters, MarkMode::Full);
                if !self.scratch.marks_exhausted() {
                    // Every unexamined child pair lies *strictly* beyond
                    // the cutoff, so the park key must exceed it strictly
                    // or the entry would be re-processed in this same stage
                    // without progress.
                    let entry = self.scratch.park(pair.dist.max(cutoff.next_up()));
                    self.compq.push(entry, &mut self.counters);
                }
            } else {
                let mut entry = self.compq.pop().expect("peeked");
                let cutoff = self.clamped_edmax();
                let mut sink = IdjSink {
                    mainq: &mut self.mainq,
                    edmax: cutoff,
                };
                self.scratch
                    .compensate(&mut entry, &mut sink, &mut self.counters);
                if let Some(p) = self.pause {
                    p.note_expansion();
                }
                if !entry
                    .marks
                    .exhausted(entry.left.entries.len(), entry.right.entries.len())
                {
                    // Unexamined pairs now all lie strictly beyond the
                    // current cutoff: park for a later stage.
                    entry.key = self.edmax.next_up();
                    self.compq.push(entry, &mut self.counters);
                }
            }
        }
    }

    fn advance_stage(&mut self) {
        self.counters.stages += 1;
        let stage_idx = self.counters.stages as usize - 1; // 0-based
        self.k_target =
            ((self.k_target as f64 * self.opts.growth).ceil() as u64).max(self.emitted + 1);
        let mut next = match &self.opts.edmax {
            EdmaxPolicy::Estimated(corr) => self.correct(*corr),
            EdmaxPolicy::Schedule(v) => v.get(stage_idx).copied().unwrap_or(f64::NEG_INFINITY),
        };
        if next <= self.edmax {
            // The schedule or correction failed to grow the cutoff (ties,
            // a zero-distance result prefix, or an exhausted schedule):
            // fall back to the estimator's safe correction, which is
            // strictly positive whenever more pairs are wanted.
            next = next.max(self.correct(Correction::MaxOfBoth));
        }
        if next <= self.edmax {
            // Last resort: geometric growth (or the whole space when no
            // scale is known yet).
            next = if self.edmax > 0.0 {
                self.edmax * 2f64.powf(1.0 / D as f64)
            } else {
                self.max_possible
            };
        }
        // Strict growth is required for progress; never exceed the space.
        self.edmax = next.min(self.max_possible).max(self.edmax.next_up());
    }

    fn correct(&self, corr: Correction) -> f64 {
        match self.est {
            Some(e) => e.corrected(self.k_target, self.emitted, self.last_dist, corr),
            None => self.max_possible,
        }
    }

    /// Consumes a paused cursor, draining its queues into owned data for
    /// an [`EngineSnapshot`](super::snapshot::EngineSnapshot).
    ///
    /// The main queue pops in ascending distance order, so the drain can
    /// stop at the first pair beyond the shared bound — everything after
    /// it is provably outside the global result set (the bound is a real
    /// published distance of the `take`-th best candidate). Parked
    /// compensation entries whose key exceeds the bound are dropped on
    /// the same argument: the key lower-bounds every pair their marks can
    /// still recover. Standalone cursors (no shared bound) keep
    /// everything.
    pub(crate) fn suspend(mut self) -> (IdjSuspend<D>, JoinStats, f64) {
        let bound = self.shared.map_or(f64::INFINITY, |b| b.get());
        let mut frontier = Vec::new();
        while let Some(pair) = self.mainq.pop() {
            if pair.dist > bound {
                break;
            }
            frontier.push(pair);
        }
        let mut comps = self.compq.drain_sorted();
        comps.retain(|c| c.key <= bound);
        let mut stats = self.counters;
        let queue_io = self.mainq.account(&mut stats);
        (
            IdjSuspend {
                frontier,
                comps,
                stage: stats.stages,
                edmax: self.edmax,
                k_target: self.k_target,
                last_dist: self.last_dist,
            },
            stats,
            queue_io,
        )
    }

    /// Consumes the cursor, folding its queue work into the returned
    /// counters (plus the queue's modeled I/O seconds). Unlike
    /// [`stats`](Self::stats) this reports no tree access deltas — those
    /// counters are shared across concurrent cursors, so attribution is
    /// the parallel backend's job.
    pub(crate) fn finish_worker(self) -> (JoinStats, f64) {
        let mut st = self.counters;
        let io = self.mainq.account(&mut st);
        (st, io)
    }

    /// A snapshot of the work done so far.
    pub fn stats(&self) -> JoinStats {
        let mut st = self.counters;
        st.mainq_insertions = self.mainq.insertions();
        let (ra, sa) = (self.r.access_stats(), self.s.access_stats());
        st.node_requests =
            (ra.requests - self.r_acc0.requests) + (sa.requests - self.s_acc0.requests);
        st.node_disk_reads =
            (ra.disk_reads - self.r_acc0.disk_reads) + (sa.disk_reads - self.s_acc0.disk_reads);
        let qd = self.mainq.disk_stats();
        st.queue_page_reads = qd.pages_read;
        st.queue_page_writes = qd.pages_written;
        st.io_seconds = (self.r.disk_stats().io_seconds - self.r_io0)
            + (self.s.disk_stats().io_seconds - self.s_io0)
            + qd.io_seconds;
        // Only valid standalone: a parallel worker's cursor reports no
        // tree/buffer deltas (see `finish_worker`), so this snapshot path
        // may assume every fetch since `buf0` happened on this thread.
        let (h, m, e) = amdj_rtree::thread_buffer_stats();
        st.buffer_hits = h - self.buf0.0;
        st.buffer_misses = m - self.buf0.1;
        st.buffer_evictions = e - self.buf0.2;
        st
    }
}
