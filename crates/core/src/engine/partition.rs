//! Work partitioning for the parallel backends: how a batch of work items
//! (frontier seeds, stage-two leftovers, compensation entries) is carved
//! into per-worker shares.
//!
//! Both backends share one structural requirement — each share must stay
//! *ascending by priority key*, because the static path's drivers consume
//! their seed batch front-to-near and the stealing pool's deques claim
//! prefixes by `partition_point` on the key. Within that constraint the
//! assignment of items to workers is free, and [`Partition`] picks it:
//!
//! * [`Partition::RoundRobin`] deals the key-sorted batch out card by
//!   card. Every worker gets a representative slice of the key range —
//!   good for static load balance, terrible for buffer locality, because
//!   every worker now touches node pages from the *whole* data space and
//!   the workers evict each other's pages from the shared LRU.
//! * [`Partition::Locality`] orders items by a Z-order (Morton) key of
//!   each pair's combined-MBR centroid and hands each worker one
//!   contiguous run of that space-filling order, balanced by estimated
//!   expansion cost. Spatially close pairs expand largely the same tree
//!   nodes, so keeping them on one worker keeps those pages hot — the
//!   per-worker hit rates in
//!   [`JoinStats::buffer_hits_by_worker`](crate::JoinStats::buffer_hits_by_worker)
//!   are the figure this exists to move.
//!
//! Results are bit-identical under every choice (the partition only
//! decides *who* processes a pair, never *whether*), which
//! `tests/engine_matrix.rs` and `tests/steal_schedules.rs` pin across the
//! whole policy × backend × partition cube. With one bucket both modes
//! return the batch untouched, so single-worker runs replay the
//! sequential join bit for bit no matter the switch.

use amdj_geom::Rect;

use crate::config::Partition;
use crate::pair::{ItemRef, Pair};

use super::sweep::CompEntry;

/// Assumed node fanout for expansion-cost estimates. The exact value
/// hardly matters — costs only weigh items against each other, and any
/// base > 1 orders "object pair ≪ leaf pair ≪ interior pair" correctly.
const EST_FANOUT: u64 = 8;

/// A unit of parallel work the partitioner can place: it has a priority
/// key (what the per-worker deques/batches are ordered by), a spatial
/// region (what the Morton order is computed from), and an estimated
/// expansion cost (what the contiguous runs are balanced by).
pub(crate) trait PartitionItem<const D: usize> {
    /// Priority key — ascending per bucket is the invariant both
    /// backends rely on.
    fn order_key(&self) -> f64;
    /// The region of data space this item's expansion will touch.
    fn region(&self) -> Rect<D>;
    /// Estimated expansion cost (any unit; only ratios matter).
    fn cost(&self) -> u64;
}

fn side_cost(i: ItemRef) -> u64 {
    match i {
        // A node at level L roughly covers FANOUT^(L+1) objects.
        ItemRef::Node { level, .. } => EST_FANOUT.saturating_pow(level + 1),
        ItemRef::Object { .. } => 1,
    }
}

impl<const D: usize> PartitionItem<D> for Pair<D> {
    fn order_key(&self) -> f64 {
        self.dist
    }
    fn region(&self) -> Rect<D> {
        self.a_mbr.union(&self.b_mbr)
    }
    fn cost(&self) -> u64 {
        // Expansion replaces a pair by the cross product of its children
        // pairs, so descendant count — the work estimate — multiplies.
        side_cost(self.a).saturating_mul(side_cost(self.b))
    }
}

impl<const D: usize> PartitionItem<D> for CompEntry<D> {
    fn order_key(&self) -> f64 {
        self.key
    }
    fn region(&self) -> Rect<D> {
        let mut acc: Option<Rect<D>> = None;
        for e in self.left.entries.iter().chain(&self.right.entries) {
            acc = Some(match acc {
                Some(r) => r.union(&e.mbr),
                None => e.mbr,
            });
        }
        acc.unwrap_or_else(|| Rect::new([0.0; D], [0.0; D]))
    }
    fn cost(&self) -> u64 {
        // A replay sweeps left × right; the +1 keeps empty entries from
        // vanishing out of the balance.
        (self.left.entries.len() as u64).saturating_mul(self.right.entries.len() as u64) + 1
    }
}

/// Splits `items` (already sorted ascending by priority) into exactly
/// `buckets` per-worker shares under `mode`. Every bucket comes back
/// ascending by [`PartitionItem::order_key`]. One bucket returns the
/// batch untouched — the single-worker parity guarantee.
pub(crate) fn partition<const D: usize, T: PartitionItem<D>>(
    items: Vec<T>,
    buckets: usize,
    mode: Partition,
) -> Vec<Vec<T>> {
    if buckets <= 1 {
        return vec![items];
    }
    match mode {
        Partition::RoundRobin => round_robin(items, buckets),
        Partition::Locality => locality(items, buckets),
    }
}

/// Deals `items` round-robin: bucket `i % buckets` gets item `i`. Keeps
/// each bucket ascending when the input is.
pub(crate) fn round_robin<T>(items: Vec<T>, buckets: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % buckets].push(item);
    }
    out
}

/// The locality partitioner: Morton-order the items by combined-MBR
/// centroid, cut the order into `buckets` contiguous runs of roughly
/// equal estimated cost, then restore each run to key order.
fn locality<const D: usize, T: PartitionItem<D>>(items: Vec<T>, buckets: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
    if items.is_empty() {
        return out;
    }
    let centroids: Vec<[f64; D]> = items.iter().map(|t| t.region().center().coords()).collect();
    let (mut lo, mut hi) = ([f64::INFINITY; D], [f64::NEG_INFINITY; D]);
    for c in &centroids {
        for a in 0..D {
            lo[a] = lo[a].min(c[a]);
            hi[a] = hi[a].max(c[a]);
        }
    }
    let mut inv = [0.0f64; D];
    for a in 0..D {
        let extent = hi[a] - lo[a];
        // Degenerate axes (all centroids equal, or non-finite data)
        // contribute a constant 0 cell — they cannot discriminate anyway.
        inv[a] = if extent > 0.0 && extent.is_finite() {
            1.0 / extent
        } else {
            0.0
        };
    }
    let bits = (64 / D as u32).min(16);
    let mut keyed: Vec<(u64, u64, T)> = items
        .into_iter()
        .zip(&centroids)
        .map(|(t, c)| {
            let m = morton_key::<D>(c, &lo, &inv, bits);
            let cost = t.cost().max(1);
            (m, cost, t)
        })
        .collect();
    // Stable: equal Morton cells keep their input (ascending-key) order.
    keyed.sort_by_key(|&(m, _, _)| m);

    // Cut the Morton order into contiguous runs of ~equal cost: an item
    // goes to the bucket its cost midpoint falls in. `mid < total`
    // always, so the bucket index stays in range.
    let total: u128 = keyed
        .iter()
        .map(|&(_, c, _)| c as u128)
        .sum::<u128>()
        .max(1);
    let mut acc: u128 = 0;
    for (_, cost, item) in keyed {
        let mid = acc + (cost as u128) / 2;
        let b = ((mid * buckets as u128) / total) as usize;
        out[b].push(item);
        acc += cost as u128;
    }
    // Restore the per-bucket key order both backends require. Stable, so
    // equal keys stay in Morton order — spatial neighbours remain
    // adjacent in the deque even among ties.
    for bucket in &mut out {
        bucket.sort_by(|a, b| a.order_key().total_cmp(&b.order_key()));
    }
    out
}

/// The Morton (Z-order) key of one centroid: normalize per axis into
/// `bits`-bit cells, then interleave the cell bits MSB-first.
fn morton_key<const D: usize>(c: &[f64; D], lo: &[f64; D], inv: &[f64; D], bits: u32) -> u64 {
    let scale = ((1u64 << bits) - 1) as f64;
    let mut cell = [0u64; D];
    for a in 0..D {
        let t = ((c[a] - lo[a]) * inv[a]).clamp(0.0, 1.0);
        cell[a] = (t * scale) as u64;
    }
    let mut key = 0u64;
    for b in (0..bits).rev() {
        for v in cell {
            key = (key << 1) | ((v >> b) & 1);
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj_pair(x: f64, y: f64, dist: f64, id: u64) -> Pair<2> {
        let r = Rect::new([x, y], [x + 1.0, y + 1.0]);
        Pair {
            dist,
            a: ItemRef::Object { oid: id },
            b: ItemRef::Object { oid: id + 1000 },
            a_mbr: r,
            b_mbr: r,
        }
    }

    fn node_pair(level: u32, dist: f64) -> Pair<2> {
        let r = Rect::new([0.0, 0.0], [10.0, 10.0]);
        Pair {
            dist,
            a: ItemRef::Node { page: 1, level },
            b: ItemRef::Node { page: 2, level },
            a_mbr: r,
            b_mbr: r,
        }
    }

    #[test]
    fn one_bucket_is_a_passthrough_for_both_modes() {
        let items: Vec<Pair<2>> = (0..7)
            .map(|i| obj_pair(i as f64, 0.0, i as f64, i))
            .collect();
        for mode in [Partition::RoundRobin, Partition::Locality] {
            let got = partition(items.clone(), 1, mode);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0], items);
        }
    }

    #[test]
    fn both_modes_emit_exactly_buckets_shares_and_lose_nothing() {
        let items: Vec<Pair<2>> = (0..23)
            .map(|i| obj_pair((i * 37 % 11) as f64, (i * 17 % 7) as f64, i as f64, i))
            .collect();
        for mode in [Partition::RoundRobin, Partition::Locality] {
            for buckets in [2usize, 3, 8, 40] {
                let got = partition(items.clone(), buckets, mode);
                assert_eq!(got.len(), buckets);
                let total: usize = got.iter().map(Vec::len).sum();
                assert_eq!(total, items.len());
                for bucket in &got {
                    assert!(
                        bucket.windows(2).all(|w| w[0].dist <= w[1].dist),
                        "bucket must stay ascending by key"
                    );
                }
                // Same multiset: every input id appears exactly once.
                let mut ids: Vec<u64> = got
                    .iter()
                    .flatten()
                    .map(|p| match p.a {
                        ItemRef::Object { oid } => oid,
                        _ => unreachable!(),
                    })
                    .collect();
                ids.sort_unstable();
                assert_eq!(ids, (0..23).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn locality_groups_spatial_clusters_onto_the_same_worker() {
        // Two tight clusters far apart, interleaved in key order so
        // round-robin would shuffle them across both workers.
        let mut items = Vec::new();
        for i in 0..8u64 {
            let (cx, cy) = if i % 2 == 0 {
                (0.0, 0.0)
            } else {
                (1000.0, 1000.0)
            };
            items.push(obj_pair(cx + (i / 2) as f64, cy, i as f64, i));
        }
        let got = partition(items, 2, Partition::Locality);
        for bucket in &got {
            assert!(!bucket.is_empty());
            let left = bucket.iter().all(|p| p.a_mbr.lo()[0] < 500.0);
            let right = bucket.iter().all(|p| p.a_mbr.lo()[0] > 500.0);
            assert!(left || right, "a bucket mixed the two clusters: {bucket:?}");
        }
    }

    #[test]
    fn locality_balances_by_cost_not_count() {
        // One heavy interior pair and many cheap object pairs, all
        // co-located: the heavy pair should get a bucket (nearly) to
        // itself rather than splitting the count evenly.
        let mut items = vec![node_pair(2, 0.5)];
        for i in 0..16u64 {
            items.push(obj_pair(2000.0 + i as f64, 0.0, 1.0 + i as f64, i));
        }
        let got = partition(items, 2, Partition::Locality);
        let heavy_bucket = got
            .iter()
            .find(|b| b.iter().any(|p| !p.is_result()))
            .expect("the node pair landed somewhere");
        assert!(
            heavy_bucket.iter().filter(|p| p.is_result()).count() <= 1,
            "cost balancing should isolate the expensive pair"
        );
    }

    #[test]
    fn degenerate_geometry_still_partitions() {
        // All centroids identical: Morton keys collapse to one cell and
        // the cost cut alone decides — still exactly `buckets` shares,
        // nothing lost.
        let items: Vec<Pair<2>> = (0..10).map(|i| obj_pair(5.0, 5.0, i as f64, i)).collect();
        let got = partition(items, 3, Partition::Locality);
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn morton_key_interleaves_msb_first() {
        let lo = [0.0, 0.0];
        let inv = [1.0, 1.0];
        // (0,0) is the smallest cell, (1,1) the largest.
        let k00 = morton_key::<2>(&[0.0, 0.0], &lo, &inv, 16);
        let k11 = morton_key::<2>(&[1.0, 1.0], &lo, &inv, 16);
        let kmid = morton_key::<2>(&[0.5, 0.5], &lo, &inv, 16);
        assert_eq!(k00, 0);
        assert_eq!(k11, u32::MAX as u64);
        assert!(k00 < kmid && kmid < k11);
        // Quadrant order: both-low < x-high (x interleaved first ⇒ more
        // significant) is decided by the leading bit pair.
        let k10 = morton_key::<2>(&[1.0, 0.0], &lo, &inv, 16);
        let k01 = morton_key::<2>(&[0.0, 1.0], &lo, &inv, 16);
        assert!(k00 < k10 && k00 < k01);
        assert!(k10 < k11 && k01 < k11);
    }
}
