//! Pruning policies: how a k-distance join chooses (and trusts) its
//! stage-one cutoff.
//!
//! The paper's B-KDJ and AM-KDJ differ *only* along this axis: B-KDJ
//! prunes on the proven `qDmax` alone, AM-KDJ additionally prunes on an
//! estimated `eDmax` and keeps per-anchor skip bookkeeping so a second
//! (compensation) stage can recover anything a wrong estimate skipped.
//! The policy trait captures exactly that choice, leaving the expansion
//! loop, sweep, and queue machinery to the shared
//! [`ExpansionDriver`](super::driver::ExpansionDriver).

use crate::Estimator;

/// How the expansion driver prunes.
///
/// Implementations are zero-sized flavor markers plus the one piece of
/// per-run state a policy owns: the initial stage-one cutoff.
pub trait PruningPolicy {
    /// Whether stage one prunes on an estimated `eDmax` with per-anchor
    /// skip bookkeeping (compensation queue, stage-two replay). `false`
    /// means stage one is already exact and no second stage can exist.
    const AGGRESSIVE: bool;

    /// The stage-one cutoff: `+∞` for exact policies (prune on `qDmax`
    /// alone), the Equation (3) estimate — or an explicit override — for
    /// aggressive ones.
    fn initial_edmax<const D: usize>(&self, est: Option<&Estimator<D>>, k: usize) -> f64;
}

/// Exact pruning (B-KDJ, §3): the only cutoff is the proven `qDmax`, so
/// nothing is ever skipped and no compensation stage exists.
#[derive(Clone, Copy, Debug, Default)]
pub struct Exact;

impl PruningPolicy for Exact {
    const AGGRESSIVE: bool = false;

    fn initial_edmax<const D: usize>(&self, _est: Option<&Estimator<D>>, _k: usize) -> f64 {
        f64::INFINITY
    }
}

/// Aggressive pruning (AM-KDJ, §4.1): stage one prunes on an estimated
/// `eDmax`, parking per-anchor skip marks so the compensation stage can
/// replay exactly the skipped child pairs — no false dismissals.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggressive {
    /// Use this `eDmax` instead of the Equation (3) estimate — how
    /// Figure 14 sweeps `eDmax` from `0.1×Dmax` to `10×Dmax`.
    pub edmax_override: Option<f64>,
}

impl PruningPolicy for Aggressive {
    const AGGRESSIVE: bool = true;

    fn initial_edmax<const D: usize>(&self, est: Option<&Estimator<D>>, k: usize) -> f64 {
        self.edmax_override
            .or_else(|| est.map(|e| e.initial(k as u64)))
            .unwrap_or(f64::INFINITY)
    }
}
