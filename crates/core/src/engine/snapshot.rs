//! The serializable engine state: everything a mid-join pause needs to
//! resume later — possibly in another process, at another thread count.
//!
//! A snapshot is a *consistent cut* of the expansion DAG: the results
//! emitted so far, a canonical frontier of pending pairs, the parked
//! compensation entries, and the proven distance evidence (`dists`,
//! `shared_bound`) that justifies every pair the cut pruned. Resuming
//! re-seeds the work-stealing runner from the cut; because every
//! remaining candidate pair descends from exactly one frontier pair (or
//! is recoverable through exactly one compensation entry), the resumed
//! join emits exactly the pairs the uninterrupted join would have —
//! regardless of how many workers the resumed run uses.
//!
//! # Wire format (version 1)
//!
//! All integers little-endian, via [`amdj_storage::codec`]:
//!
//! ```text
//! magic   8 × u8   "AMDJSNAP"
//! version u8       1
//! kind    u8       0 = k-distance join, 1 = incremental join
//! flags   u8       bit 0: aggressive pruning policy
//! dim     u32      D (decode refuses a mismatched dimension)
//! k       u64      k (kdj) or take (idj)
//! stage   u32      1 or 2 (kdj); current stage counter (idj)
//! edmax   f64      stage-one estimated cutoff at pause (min over workers)
//! shared  f64      the proven shared bound at pause
//! k_target u64     idj stage schedule position (unused by kdj)
//! emitted  u64     idj emission count  (unused by kdj)
//! last     f64     idj last emitted distance (unused by kdj)
//! results  u64 count, then (r u64, s u64, dist f64) each
//! dists    u64 count, then f64 each (ascending, ≤ k entries)
//! frontier spill page framing (see [`encode_page_framed`])
//! comps    u64 count, then one encoded CompEntry each
//! ```
//!
//! The frontier reuses the spill queue's page-framed segment encoding —
//! the same bytes a spilled queue segment holds — rather than inventing a
//! second pair encoding. Decoding is fully fallible: a truncated or
//! corrupt image surfaces a [`SnapshotError`] naming the byte offset and
//! the field expected there, never a panic.

use amdj_storage::codec::{put_f64, put_u32, put_u64, put_u8, CodecError, Reader};
use amdj_storage::{encode_page_framed, try_decode_page_framed};

use crate::{Pair, ResultPair};

use super::sweep::{CompEntry, Reject, SweepEntry, SweepList, SweepMarks};

const MAGIC: &[u8; 8] = b"AMDJSNAP";
const VERSION: u8 = 1;
/// Page size used for the frontier's spill framing inside a snapshot.
const SNAP_PAGE: usize = 4096;

/// Which join a snapshot belongs to. Resume refuses a mismatched kind —
/// a kdj checkpoint cannot seed an idj and vice versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A k-distance join with the given `k` and pruning policy.
    Kdj {
        /// The join's `k`.
        k: u64,
        /// Whether stage one pruned on an estimated `eDmax`.
        aggressive: bool,
    },
    /// An incremental join materializing `take` pairs.
    Idj {
        /// The number of pairs being materialized.
        take: u64,
    },
}

/// A decoding or validation failure while loading a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A field could not be decoded (truncated or corrupt bytes).
    Codec(CodecError),
    /// The bytes decoded but describe an impossible or foreign state.
    Invalid(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Codec(e) => write!(f, "snapshot {e}"),
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// The complete mid-join state of the engine as one owned, versioned,
/// serializable value. Produced by pausing a resumable join
/// ([`kdj_resumable`](super::checkpoint::kdj_resumable) /
/// [`idj_resumable`](super::checkpoint::idj_resumable)), consumed by
/// resuming one. See the module docs for the consistency argument and
/// the wire format.
#[derive(Debug, PartialEq)]
pub struct EngineSnapshot<const D: usize> {
    pub(crate) kind: SnapshotKind,
    /// Paper stage at pause: 1 or 2 for kdj, the stage counter for idj.
    pub(crate) stage: u32,
    /// The estimated stage-one cutoff at pause (min over workers);
    /// `+∞` under the exact policy.
    pub(crate) edmax: f64,
    /// The proven shared bound at pause (`+∞` until k real distances
    /// exist). Every pair the snapshot pruned exceeds this.
    pub(crate) shared_bound: f64,
    /// Incremental-join stage schedule position (0 for kdj).
    pub(crate) k_target: u64,
    /// Incremental-join emission count (0 for kdj).
    pub(crate) emitted: u64,
    /// Incremental-join last emitted distance (0 for kdj).
    pub(crate) last_dist: f64,
    /// Results emitted before the pause, in canonical order.
    pub(crate) results: Vec<ResultPair>,
    /// Distinct-pair distance evidence (ascending, at most `k` entries):
    /// seeds resumed stage-two distance queues without re-counting.
    pub(crate) dists: Vec<f64>,
    /// Pending frontier pairs in canonical ascending order — the cut
    /// through the expansion DAG.
    pub(crate) frontier: Vec<Pair<D>>,
    /// Parked compensation entries, ascending by key, with their
    /// per-anchor skip marks.
    pub(crate) comps: Vec<CompEntry<D>>,
}

impl<const D: usize> EngineSnapshot<D> {
    /// Which join this snapshot belongs to.
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// The paper stage executing when the join paused.
    pub fn stage(&self) -> u32 {
        self.stage
    }

    /// How many results were already emitted at pause time.
    pub fn results_len(&self) -> usize {
        self.results.len()
    }

    /// How many frontier pairs remain to be processed.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// How many parked compensation entries remain.
    pub fn comps_len(&self) -> usize {
        self.comps.len()
    }

    /// Serializes the snapshot (see the module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u8(&mut out, VERSION);
        let (kind, flags, k) = match self.kind {
            SnapshotKind::Kdj { k, aggressive } => (0u8, u8::from(aggressive), k),
            SnapshotKind::Idj { take } => (1u8, 0u8, take),
        };
        put_u8(&mut out, kind);
        put_u8(&mut out, flags);
        put_u32(&mut out, D as u32);
        put_u64(&mut out, k);
        put_u32(&mut out, self.stage);
        put_f64(&mut out, self.edmax);
        put_f64(&mut out, self.shared_bound);
        put_u64(&mut out, self.k_target);
        put_u64(&mut out, self.emitted);
        put_f64(&mut out, self.last_dist);
        put_u64(&mut out, self.results.len() as u64);
        for res in &self.results {
            put_u64(&mut out, res.r);
            put_u64(&mut out, res.s);
            put_f64(&mut out, res.dist);
        }
        put_u64(&mut out, self.dists.len() as u64);
        for &d in &self.dists {
            put_f64(&mut out, d);
        }
        encode_page_framed(&self.frontier, SNAP_PAGE, &mut out);
        put_u64(&mut out, self.comps.len() as u64);
        for entry in &self.comps {
            encode_comp(&mut out, entry);
        }
        out
    }

    /// Deserializes and validates a snapshot image. Any truncation,
    /// corruption, wrong magic/version/dimension, or non-finite key
    /// comes back as a clean [`SnapshotError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes);
        for &want in MAGIC.iter() {
            if r.try_u8("snapshot magic")? != want {
                return Err(SnapshotError::Invalid("magic (not a snapshot file)"));
            }
        }
        if r.try_u8("snapshot version")? != VERSION {
            return Err(SnapshotError::Invalid("unsupported snapshot version"));
        }
        let kind_tag = r.try_u8("snapshot kind")?;
        let flags = r.try_u8("snapshot flags")?;
        let dim = r.try_u32("snapshot dimension")?;
        if dim as usize != D {
            return Err(SnapshotError::Invalid("dimension mismatch"));
        }
        let k = r.try_u64("snapshot k")?;
        let kind = match kind_tag {
            0 => SnapshotKind::Kdj {
                k,
                aggressive: flags & 1 != 0,
            },
            1 => SnapshotKind::Idj { take: k },
            _ => return Err(SnapshotError::Invalid("unknown snapshot kind")),
        };
        let stage = r.try_u32("snapshot stage")?;
        let edmax = r.try_f64("snapshot edmax")?;
        let shared_bound = r.try_f64("snapshot shared bound")?;
        let k_target = r.try_u64("snapshot k target")?;
        let emitted = r.try_u64("snapshot emitted count")?;
        let last_dist = r.try_f64("snapshot last distance")?;
        let n_results = checked_count(&mut r, "result count")?;
        let mut results = Vec::with_capacity(n_results);
        for _ in 0..n_results {
            results.push(ResultPair {
                r: r.try_u64("result r id")?,
                s: r.try_u64("result s id")?,
                dist: r.try_f64("result dist")?,
            });
        }
        let n_dists = checked_count(&mut r, "dist count")?;
        let mut dists = Vec::with_capacity(n_dists);
        for _ in 0..n_dists {
            let d = r.try_f64("retained distance")?;
            if !d.is_finite() {
                return Err(SnapshotError::Invalid("non-finite retained distance"));
            }
            dists.push(d);
        }
        let frontier: Vec<Pair<D>> = try_decode_page_framed(&mut r)?;
        if frontier.iter().any(|p| !p.dist.is_finite()) {
            return Err(SnapshotError::Invalid("non-finite frontier distance"));
        }
        let n_comps = checked_count(&mut r, "compensation entry count")?;
        let mut comps = Vec::with_capacity(n_comps);
        for _ in 0..n_comps {
            let entry = try_decode_comp(&mut r)?;
            if !entry.key.is_finite() {
                return Err(SnapshotError::Invalid("non-finite compensation key"));
            }
            comps.push(entry);
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Invalid("trailing bytes after snapshot"));
        }
        Ok(EngineSnapshot {
            kind,
            stage,
            edmax,
            shared_bound,
            k_target,
            emitted,
            last_dist,
            results,
            dists,
            frontier,
            comps,
        })
    }
}

/// Reads a declared element count, rejecting one that exceeds the bytes
/// left — every element encodes to at least one byte, so a larger count
/// is corrupt and must not drive `Vec::with_capacity`.
fn checked_count(r: &mut Reader<'_>, what: &'static str) -> Result<usize, SnapshotError> {
    let declared = r.try_u64(what)?;
    plausible(r, declared, what)
}

fn encode_sweep_list<const D: usize>(out: &mut Vec<u8>, list: &SweepList<D>) {
    put_u8(out, u8::from(list.objects));
    put_u32(out, list.child_level);
    put_u64(out, list.entries.len() as u64);
    for e in &list.entries {
        for d in 0..D {
            put_f64(out, e.mbr.lo()[d]);
        }
        for d in 0..D {
            put_f64(out, e.mbr.hi()[d]);
        }
        put_u64(out, e.child);
        put_f64(out, e.key);
    }
}

fn try_decode_sweep_list<const D: usize>(
    r: &mut Reader<'_>,
) -> Result<SweepList<D>, SnapshotError> {
    let objects = r.try_u8("sweep list objects flag")? != 0;
    let child_level = r.try_u32("sweep list child level")?;
    let count = checked_count(r, "sweep list entry count")?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let start = r.position();
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for slot in lo.iter_mut() {
            *slot = r.try_f64("sweep entry lo coordinate")?;
        }
        for slot in hi.iter_mut() {
            *slot = r.try_f64("sweep entry hi coordinate")?;
        }
        // Rect::new panics on inverted or non-finite bounds; corrupt
        // bytes must surface as a decode error instead.
        if (0..D).any(|d| !lo[d].is_finite() || !hi[d].is_finite() || lo[d] > hi[d]) {
            return Err(SnapshotError::Codec(CodecError {
                offset: start,
                expected: "well-formed sweep entry bounds",
            }));
        }
        let child = r.try_u64("sweep entry child")?;
        let key = r.try_f64("sweep entry key")?;
        entries.push(SweepEntry {
            mbr: amdj_geom::Rect::new(lo, hi),
            child,
            key,
        });
    }
    Ok(SweepList {
        entries,
        objects,
        child_level,
    })
}

fn encode_comp<const D: usize>(out: &mut Vec<u8>, entry: &CompEntry<D>) {
    put_f64(out, entry.key);
    put_u32(out, entry.axis as u32);
    encode_sweep_list(out, &entry.left);
    encode_sweep_list(out, &entry.right);
    put_u64(out, entry.marks.left_stops.len() as u64);
    for &s in &entry.marks.left_stops {
        put_u32(out, s);
    }
    put_u64(out, entry.marks.right_stops.len() as u64);
    for &s in &entry.marks.right_stops {
        put_u32(out, s);
    }
    put_u64(out, entry.marks.rejects.len() as u64);
    for rej in &entry.marks.rejects {
        put_u32(out, rej.left);
        put_u32(out, rej.right);
        put_f64(out, rej.dist);
    }
    put_u8(out, u8::from(entry.marks.track_rejects));
}

fn try_decode_comp<const D: usize>(r: &mut Reader<'_>) -> Result<CompEntry<D>, SnapshotError> {
    let key = r.try_f64("compensation key")?;
    let axis = r.try_u32("compensation axis")? as usize;
    let left = try_decode_sweep_list(r)?;
    let right = try_decode_sweep_list(r)?;
    let n_left = checked_count(r, "left stop count")?;
    let mut left_stops = Vec::with_capacity(n_left);
    for _ in 0..n_left {
        left_stops.push(r.try_u32("left stop")?);
    }
    let n_right = checked_count(r, "right stop count")?;
    let mut right_stops = Vec::with_capacity(n_right);
    for _ in 0..n_right {
        right_stops.push(r.try_u32("right stop")?);
    }
    let n_rej = checked_count(r, "reject count")?;
    let mut rejects = Vec::with_capacity(n_rej);
    for _ in 0..n_rej {
        rejects.push(Reject {
            left: r.try_u32("reject left index")?,
            right: r.try_u32("reject right index")?,
            dist: r.try_f64("reject distance")?,
        });
    }
    let track_rejects = r.try_u8("track rejects flag")? != 0;
    Ok(CompEntry {
        key,
        axis,
        left,
        right,
        marks: SweepMarks {
            left_stops,
            right_stops,
            rejects,
            track_rejects,
        },
    })
}

/// Rejects a declared count larger than the bytes remaining (each element
/// encodes to at least one byte), so a corrupt image cannot drive a huge
/// allocation.
fn plausible(r: &Reader<'_>, declared: u64, _what: &'static str) -> Result<usize, SnapshotError> {
    if declared > r.remaining() as u64 {
        return Err(SnapshotError::Codec(CodecError {
            offset: r.position().saturating_sub(8),
            expected: "plausible element count",
        }));
    }
    Ok(declared as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ItemRef;
    use amdj_geom::Rect;
    use amdj_storage::SpillItem;
    use proptest::prelude::*;

    type Snap = EngineSnapshot<2>;

    fn finite() -> impl Strategy<Value = f64> {
        (0u32..1_000_000).prop_map(|v| v as f64 / 64.0)
    }

    fn item_ref() -> impl Strategy<Value = ItemRef> {
        prop_oneof![
            2 => (0u64..10_000).prop_map(|oid| ItemRef::Object { oid }),
            1 => (0u64..10_000, 0u32..6).prop_map(|(page, level)| ItemRef::Node { page, level }),
        ]
    }

    fn rect() -> impl Strategy<Value = Rect<2>> {
        (finite(), finite(), finite(), finite())
            .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
    }

    fn pair() -> impl Strategy<Value = Pair<2>> {
        (finite(), item_ref(), item_ref(), rect(), rect()).prop_map(|(dist, a, b, am, bm)| Pair {
            dist,
            a,
            b,
            a_mbr: am,
            b_mbr: bm,
        })
    }

    fn sweep_list() -> impl Strategy<Value = SweepList<2>> {
        (
            any::<bool>(),
            0u32..6,
            prop::collection::vec(
                (rect(), 0u64..10_000, finite()).prop_map(|(mbr, child, key)| SweepEntry {
                    mbr,
                    child,
                    key,
                }),
                0..6,
            ),
        )
            .prop_map(|(objects, child_level, entries)| SweepList {
                entries,
                objects,
                child_level,
            })
    }

    fn comp_entry() -> impl Strategy<Value = CompEntry<2>> {
        (
            finite(),
            0usize..2,
            sweep_list(),
            sweep_list(),
            prop::collection::vec(0u32..32, 0..5),
            prop::collection::vec(0u32..32, 0..5),
            prop::collection::vec(
                (0u32..32, 0u32..32, finite()).prop_map(|(left, right, dist)| Reject {
                    left,
                    right,
                    dist,
                }),
                0..5,
            ),
            any::<bool>(),
        )
            .prop_map(
                |(key, axis, left, right, left_stops, right_stops, rejects, track_rejects)| {
                    CompEntry {
                        key,
                        axis,
                        left,
                        right,
                        marks: SweepMarks {
                            left_stops,
                            right_stops,
                            rejects,
                            track_rejects,
                        },
                    }
                },
            )
    }

    fn kind() -> impl Strategy<Value = SnapshotKind> {
        prop_oneof![
            (1u64..100, any::<bool>())
                .prop_map(|(k, aggressive)| SnapshotKind::Kdj { k, aggressive }),
            (1u64..100).prop_map(|take| SnapshotKind::Idj { take }),
        ]
    }

    fn snapshot() -> impl Strategy<Value = Snap> {
        (
            kind(),
            (
                1u32..5,
                finite(),
                finite(),
                0u64..1000,
                0u64..1000,
                finite(),
            ),
            prop::collection::vec(
                (0u64..10_000, 0u64..10_000, finite()).prop_map(|(r, s, dist)| ResultPair {
                    r,
                    s,
                    dist,
                }),
                0..20,
            ),
            prop::collection::vec(finite(), 0..20),
            prop::collection::vec(pair(), 0..20),
            prop::collection::vec(comp_entry(), 0..4),
        )
            .prop_map(
                |(
                    kind,
                    (stage, edmax, shared, k_target, emitted, last),
                    results,
                    dists,
                    frontier,
                    comps,
                )| {
                    EngineSnapshot {
                        kind,
                        stage,
                        edmax,
                        shared_bound: shared,
                        k_target,
                        emitted,
                        last_dist: last,
                        results,
                        dists,
                        frontier,
                        comps,
                    }
                },
            )
    }

    fn roundtrip(snap: &Snap) -> Snap {
        Snap::decode(&snap.encode()).expect("roundtrip decode")
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn encode_decode_roundtrips(snap in snapshot()) {
            prop_assert_eq!(&roundtrip(&snap), &snap);
        }

        #[test]
        fn truncation_errors_cleanly(snap in snapshot(), frac in 0u32..100) {
            let bytes = snap.encode();
            let cut = (bytes.len() as u64 * frac as u64 / 100) as usize;
            // Any strict prefix must fail (shorter state is ambiguous at
            // best), and must do so without panicking.
            prop_assert!(Snap::decode(&bytes[..cut.min(bytes.len() - 1)]).is_err());
        }

        #[test]
        fn flipped_count_bytes_never_panic(snap in snapshot(), pos in 0usize..4096, bit in 0u32..8) {
            let mut bytes = snap.encode();
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            // Corruption may decode to a different valid snapshot (a
            // flipped distance bit, say) but must never panic or hang.
            let _ = Snap::decode(&bytes);
        }
    }

    /// The empty-cut edge: a snapshot with nothing pending (taken right
    /// at completion) survives the wire.
    #[test]
    fn empty_queues_roundtrip() {
        let snap = Snap {
            kind: SnapshotKind::Kdj {
                k: 10,
                aggressive: false,
            },
            stage: 1,
            edmax: f64::INFINITY,
            shared_bound: f64::INFINITY,
            k_target: 0,
            emitted: 0,
            last_dist: 0.0,
            results: Vec::new(),
            dists: Vec::new(),
            frontier: Vec::new(),
            comps: Vec::new(),
        };
        assert_eq!(roundtrip(&snap), snap);
    }

    /// A frontier big enough to span several spill pages inside the
    /// snapshot's page framing (the same encoding a spilled queue
    /// segment uses).
    #[test]
    fn multi_page_frontier_roundtrips() {
        let frontier: Vec<Pair<2>> = (0..500)
            .map(|i| Pair {
                dist: i as f64,
                a: ItemRef::Object { oid: i },
                b: ItemRef::Node {
                    page: i,
                    level: (i % 4) as u32,
                },
                a_mbr: Rect::new([0.0, 0.0], [1.0, 1.0]),
                b_mbr: Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0]),
            })
            .collect();
        assert!(frontier.len() * frontier[0].encoded_len() > 4 * SNAP_PAGE);
        let snap = Snap {
            kind: SnapshotKind::Idj { take: 1000 },
            stage: 3,
            edmax: 42.0,
            shared_bound: 99.5,
            k_target: 64,
            emitted: 17,
            last_dist: 12.25,
            results: vec![ResultPair {
                r: 1,
                s: 2,
                dist: 0.5,
            }],
            dists: vec![0.5],
            frontier,
            comps: Vec::new(),
        };
        assert_eq!(roundtrip(&snap), snap);
    }

    /// Saturated counters (the max-stage edge): stage, k_target, and
    /// emitted at their extremes must survive unclamped.
    #[test]
    fn max_stage_scalars_roundtrip() {
        let snap = Snap {
            kind: SnapshotKind::Idj { take: u64::MAX },
            stage: u32::MAX,
            edmax: f64::MAX,
            shared_bound: f64::MAX,
            k_target: u64::MAX,
            emitted: u64::MAX,
            last_dist: f64::MAX,
            results: Vec::new(),
            dists: Vec::new(),
            frontier: Vec::new(),
            comps: Vec::new(),
        };
        assert_eq!(roundtrip(&snap), snap);
    }

    #[test]
    fn wrong_magic_is_invalid_not_panic() {
        let snap = Snap {
            kind: SnapshotKind::Kdj {
                k: 1,
                aggressive: true,
            },
            stage: 1,
            edmax: 1.0,
            shared_bound: 1.0,
            k_target: 0,
            emitted: 0,
            last_dist: 0.0,
            results: Vec::new(),
            dists: Vec::new(),
            frontier: Vec::new(),
            comps: Vec::new(),
        };
        let mut bytes = snap.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snap::decode(&bytes),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn oversized_count_is_codec_error_with_offset() {
        let snap = Snap {
            kind: SnapshotKind::Kdj {
                k: 1,
                aggressive: false,
            },
            stage: 1,
            edmax: 1.0,
            shared_bound: 1.0,
            k_target: 0,
            emitted: 0,
            last_dist: 0.0,
            results: Vec::new(),
            dists: Vec::new(),
            frontier: Vec::new(),
            comps: Vec::new(),
        };
        let mut bytes = snap.encode();
        // The results count sits right after the fixed header; blow it up.
        let off = 8 + 1 + 1 + 1 + 4 + 8 + 4 + 8 + 8 + 8 + 8 + 8;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match Snap::decode(&bytes) {
            Err(SnapshotError::Codec(e)) => assert_eq!(e.offset, off),
            other => panic!("expected a codec error, got {other:?}"),
        }
    }
}
