//! Batched SoA leaf distance kernel.
//!
//! When both sweep sides are objects (a leaf–leaf expansion) and the
//! sink's **axis** cutoff is frozen for the whole sweep
//! ([`SweepSink::fixed_axis_cutoff`]), the set of partners each anchor
//! examines is fully determined before any distance is computed. The
//! kernel exploits that: instead of calling `Rect::min_dist` per pair, it
//! loads both entry lists into dimension-major scratch buffers once per
//! sweep and computes each anchor's candidate distances in a single pass
//! per dimension — a tight, auto-vectorizable loop over contiguous `f64`
//! slices.
//!
//! # Bit-identity
//!
//! The kernel is bit-identical to the scalar path by construction:
//!
//! - the axis window test uses the same expression as
//!   [`Rect::axis_dist`]: `(a.lo − p.hi).max(p.lo − a.hi).max(0.0)`;
//! - per candidate, the squared gaps are accumulated in ascending
//!   dimension order and rooted once, exactly like `Rect::min_dist`
//!   (`f64` addition is deterministic, so the identical operation order
//!   yields identical bits);
//! - the *real*-cutoff comparison and `emit`/reject decisions replay in
//!   original scan order against the live `sink.real_cutoff()`, so sinks
//!   whose real cutoff tightens as results are emitted (aggressive
//!   sweeps publishing into `qDmax`) see the same cutoff sequence the
//!   scalar scan would have seen.
//!
//! Stats accounting also matches the scalar scan: `axis_dist` counts
//! every examined partner *including* the one that breaks the window,
//! `real_dist` counts exactly the partners inside the window.

use crate::{JoinStats, Pair};

use super::sweep::{Reject, SweepEntry, SweepMarks, SweepSide, SweepSink};

/// Reusable dimension-major buffers for the batched kernel. Owned by the
/// `SweepScratch` so a warm join never allocates here: `resize` within
/// capacity is free.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    left_lo: Vec<f64>,
    left_hi: Vec<f64>,
    right_lo: Vec<f64>,
    right_hi: Vec<f64>,
    dists: Vec<f64>,
}

/// Loads `entries` into dimension-major (`buf[d * n + i]`) lo/hi arrays.
fn load<const D: usize>(lo_out: &mut Vec<f64>, hi_out: &mut Vec<f64>, entries: &[SweepEntry<D>]) {
    let n = entries.len();
    lo_out.clear();
    hi_out.clear();
    lo_out.resize(D * n, 0.0);
    hi_out.resize(D * n, 0.0);
    for (i, e) in entries.iter().enumerate() {
        let (lo, hi) = (e.mbr.lo(), e.mbr.hi());
        for d in 0..D {
            lo_out[d * n + i] = lo[d];
            hi_out[d * n + i] = hi[d];
        }
    }
}

/// The batched counterpart of `plane_sweep_into`, valid only when the
/// axis cutoff is frozen at `window` for the whole sweep. Same merge
/// loop, same marks bookkeeping; only the per-anchor scan is batched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn batched_plane_sweep_into<const D: usize>(
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    axis: usize,
    window: f64,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mut marks: Option<&mut SweepMarks>,
    batch: &mut BatchScratch,
) {
    load::<D>(&mut batch.left_lo, &mut batch.left_hi, left.entries);
    load::<D>(&mut batch.right_lo, &mut batch.right_hi, right.entries);
    let (mut li, mut ri) = (0usize, 0usize);
    while li < left.entries.len() && ri < right.entries.len() {
        if left.entries[li].key <= right.entries[ri].key {
            let anchor_idx = li;
            li += 1;
            let stop = batch_scan(
                anchor_idx,
                left,
                right,
                ri,
                true,
                axis,
                window,
                sink,
                stats,
                marks.as_deref_mut(),
                batch,
            );
            if let Some(m) = &mut marks {
                m.left_stops.push(stop as u32);
            }
        } else {
            let anchor_idx = ri;
            ri += 1;
            let stop = batch_scan(
                anchor_idx,
                left,
                right,
                li,
                false,
                axis,
                window,
                sink,
                stats,
                marks.as_deref_mut(),
                batch,
            );
            if let Some(m) = &mut marks {
                m.right_stops.push(stop as u32);
            }
        }
    }
}

/// One anchor's scan, batched: axis pass to find the window, one pass per
/// dimension to accumulate squared gaps, one root pass, then an ordered
/// emit pass against the live real cutoff. Returns the absolute index
/// where the scan stopped (first unexamined partner).
#[allow(clippy::too_many_arguments)]
fn batch_scan<const D: usize>(
    anchor_idx: usize,
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    from: usize,
    anchor_is_left: bool,
    axis: usize,
    window: f64,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mut marks: Option<&mut SweepMarks>,
    batch: &mut BatchScratch,
) -> usize {
    let BatchScratch {
        left_lo,
        left_hi,
        right_lo,
        right_hi,
        dists,
    } = batch;
    let (anchor, partners, p_lo, p_hi) = if anchor_is_left {
        (
            &left.entries[anchor_idx],
            right.entries,
            &*right_lo,
            &*right_hi,
        )
    } else {
        (
            &right.entries[anchor_idx],
            left.entries,
            &*left_lo,
            &*left_hi,
        )
    };
    let n = partners.len();
    let (alo, ahi) = (anchor.mbr.lo(), anchor.mbr.hi());

    // Axis pass: partners are sorted along `axis`, so the first one whose
    // axis gap exceeds the window ends the scan. Counting mirrors the
    // scalar scan: the breaking partner is examined (and counted) too.
    let mut stop = n;
    {
        let lo_ax = &p_lo[axis * n..(axis + 1) * n];
        let hi_ax = &p_hi[axis * n..(axis + 1) * n];
        for j in from..n {
            stats.axis_dist += 1;
            let gap = (alo[axis] - hi_ax[j]).max(lo_ax[j] - ahi[axis]).max(0.0);
            if gap > window {
                stop = j;
                break;
            }
        }
    }
    let span = stop - from;
    if span == 0 {
        return stop;
    }
    stats.real_dist += span as u64;

    // Distance pass: for each in-window partner accumulate squared axis
    // gaps dimension by dimension (ascending, like `Rect::min_dist`),
    // then take one square root per candidate.
    dists.clear();
    dists.resize(span, 0.0);
    for d in 0..D {
        let lo_d = &p_lo[d * n + from..d * n + stop];
        let hi_d = &p_hi[d * n + from..d * n + stop];
        let (a_lo, a_hi) = (alo[d], ahi[d]);
        for ((acc, &p_lo_j), &p_hi_j) in dists.iter_mut().zip(lo_d).zip(hi_d) {
            let gap = (a_lo - p_hi_j).max(p_lo_j - a_hi).max(0.0);
            *acc += gap * gap;
        }
    }
    for v in dists.iter_mut() {
        *v = v.sqrt();
    }

    // Emit pass, in scan order, against the live real cutoff.
    for (off, j) in (from..stop).enumerate() {
        let real = dists[off];
        let partner = &partners[j];
        if real <= sink.real_cutoff() {
            let (le, re) = if anchor_is_left {
                (anchor, partner)
            } else {
                (partner, anchor)
            };
            sink.emit(Pair {
                dist: real,
                a: left.item_ref(le),
                b: right.item_ref(re),
                a_mbr: le.mbr,
                b_mbr: re.mbr,
            });
        } else if let Some(m) = marks.as_deref_mut() {
            if m.track_rejects {
                let (li_, ri_) = if anchor_is_left {
                    (anchor_idx, j)
                } else {
                    (j, anchor_idx)
                };
                m.rejects.push(Reject {
                    left: li_ as u32,
                    right: ri_ as u32,
                    dist: real,
                });
            }
        }
    }
    stop
}
