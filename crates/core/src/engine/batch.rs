//! Batched SoA leaf distance kernel: explicit lanes plus a quantized
//! integer prefilter.
//!
//! When both sweep sides are objects (a leaf–leaf expansion) and the
//! sink's **axis** cutoff is frozen for the whole sweep
//! ([`SweepSink::fixed_axis_cutoff`]), the set of partners each anchor
//! examines is fully determined before any distance is computed. The
//! kernel exploits that: instead of calling `Rect::min_dist` per pair, it
//! loads both entry lists into dimension-major scratch buffers once per
//! sweep and computes each anchor's candidate distances in fixed-width
//! unroll-by-[`LANES`] passes over contiguous `f64` slices — the axis
//! window search, the per-dimension squared-gap accumulation, and the
//! root pass each process eight candidates per loop iteration with a
//! scalar tail, so the speed no longer depends on the autovectorizer.
//!
//! # The quantized prefilter
//!
//! In front of the exact `f64` pass sits an optional integer screen
//! (`JoinConfig::quantized_prefilter`). At sweep start both sides'
//! coordinates are quantized onto a 16-bit grid spanning the sweep's
//! bounding box, rounding *outward* (`floor` for lows, `ceil` for highs)
//! so every quantized rectangle contains its exact one. Per candidate the
//! kernel accumulates an integer squared gap per dimension — a cheap
//! `u64` lower bound on the squared distance in grid cells. Candidates
//! whose bound exceeds the live real cutoff (converted to cells, inflated
//! by half a cell of slack that dominates every rounding error — see
//! DESIGN.md §10) provably cannot be emitted, so their `f64` distance and
//! square root are skipped entirely. Rejection is conservative by
//! construction: a candidate at or below the cutoff always survives to
//! the exact pass, so emitted results stay bit-identical.
//!
//! The prefilter never runs when the sweep records rejected distances
//! (`SweepMarks::track_rejects`, AM-IDJ's full marks): those marks need
//! the exact distance of every rejected pair, which is precisely what the
//! prefilter avoids computing.
//!
//! # Bit-identity
//!
//! The kernel is bit-identical to the scalar path by construction:
//!
//! - the axis window test uses the same expression as
//!   [`Rect::axis_dist`]: `(a.lo − p.hi).max(p.lo − a.hi).max(0.0)`;
//! - per candidate, the squared gaps are accumulated in ascending
//!   dimension order and rooted once, exactly like `Rect::min_dist`
//!   (`f64` addition is deterministic, so the identical operation order
//!   yields identical bits — lanes only batch *independent* candidates,
//!   never reassociate one candidate's sum);
//! - the *real*-cutoff comparison and `emit`/reject decisions replay in
//!   original scan order against the live `sink.real_cutoff()`, so sinks
//!   whose real cutoff tightens as results are emitted (aggressive
//!   sweeps publishing into `qDmax`) see the same cutoff sequence the
//!   scalar scan would have seen;
//! - the prefilter only ever *removes* candidates whose distance is
//!   provably above the cutoff the scalar path would have compared
//!   against (the cutoff is monotone non-increasing during a sweep, so
//!   screening against its value at distance-pass start is conservative
//!   for every later comparison too).
//!
//! Stats accounting also matches the scalar scan: `axis_dist` counts
//! every examined partner *including* the one that breaks the window;
//! `real_dist` counts exactly the distances actually computed, with
//! `exact_dist_skipped` making up the difference to the scalar count.

use crate::JoinStats;

use super::sweep::{offer, SweepEntry, SweepMarks, SweepSide, SweepSink};

/// Fixed unroll width of every lane pass. Eight `f64`s span two AVX2 (or
/// one AVX-512) vector(s) and give the scalar fallback enough independent
/// chains to pipeline; the tail of `n % LANES` candidates runs scalar.
pub(crate) const LANES: usize = 8;

/// Quantized coordinates live in `0..=Q_MAX` grid cells.
const Q_MAX: u32 = u16::MAX as u32;

/// Safety slack, in grid cells, added to the rejection threshold. Each
/// quantized coordinate is within one `floor`/`ceil` plus a few ulps of
/// its exact cell position, so half a cell per comparison side dominates
/// every rounding error in the bound (DESIGN.md §10).
const Q_SLACK_CELLS: f64 = 0.5;

/// Multiplicative fuzz inflating the threshold past the handful of ulps
/// the `f64` threshold computation itself can lose. The real margin is
/// [`Q_SLACK_CELLS`]; this only keeps the argument independent of
/// rounding direction.
const Q_FUZZ: f64 = 1.0 + 1e-9;

/// Reusable dimension-major buffers for the batched kernel. Owned by the
/// `SweepScratch` so a warm join never allocates here: refills within
/// capacity are free.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    left_lo: Vec<f64>,
    left_hi: Vec<f64>,
    right_lo: Vec<f64>,
    right_hi: Vec<f64>,
    left_qlo: Vec<u16>,
    left_qhi: Vec<u16>,
    right_qlo: Vec<u16>,
    right_qhi: Vec<u16>,
    dists: Vec<f64>,
    qlb: Vec<u64>,
    survivors: Vec<u32>,
}

/// Loads `entries` into dimension-major (`buf[d * n + i]`) lo/hi arrays.
/// One `extend` per dimension appends straight into reserved capacity —
/// no `resize` pre-zeroing that the fill loop would immediately
/// overwrite.
fn load<const D: usize>(lo_out: &mut Vec<f64>, hi_out: &mut Vec<f64>, entries: &[SweepEntry<D>]) {
    let n = entries.len();
    lo_out.clear();
    hi_out.clear();
    lo_out.reserve(D * n);
    hi_out.reserve(D * n);
    for d in 0..D {
        lo_out.extend(entries.iter().map(|e| e.mbr.lo()[d]));
        hi_out.extend(entries.iter().map(|e| e.mbr.hi()[d]));
    }
}

/// The conservative quantization grid of one sweep: a shared cell width
/// `cw` and a per-dimension origin at the bounding box's low corner. One
/// *common* cell width (the largest dimension extent over `Q_MAX − 1`
/// cells) keeps every dimension's integer gaps on the same scale, so
/// their squares sum into a single comparable bound.
#[derive(Clone, Copy, Debug)]
struct QuantGrid<const D: usize> {
    origin: [f64; D],
    cw: f64,
}

/// Builds the grid over both sides' bounding box, or `None` when
/// quantization is pointless or unsound: a fully degenerate box (every
/// extent zero — `cw` would be 0 and the bound undefined) or non-finite
/// coordinates.
fn build_grid<const D: usize>(
    left: &[SweepEntry<D>],
    right: &[SweepEntry<D>],
) -> Option<QuantGrid<D>> {
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    for e in left.iter().chain(right) {
        let (elo, ehi) = (e.mbr.lo(), e.mbr.hi());
        for d in 0..D {
            lo[d] = lo[d].min(elo[d]);
            hi[d] = hi[d].max(ehi[d]);
        }
    }
    let mut extent: f64 = 0.0;
    for d in 0..D {
        let e = hi[d] - lo[d];
        if !e.is_finite() {
            return None;
        }
        extent = extent.max(e);
    }
    // `Q_MAX − 1` (not `Q_MAX`) cells across the largest extent leaves
    // `ceil` of the largest coordinate headroom inside `u16` even after
    // outward rounding.
    let cw = extent / (Q_MAX - 1) as f64;
    if !cw.is_finite() || cw <= 0.0 {
        return None;
    }
    Some(QuantGrid { origin: lo, cw })
}

/// Quantizes already-loaded dimension-major `f64` arrays onto `grid`,
/// rounding outward: lows floor, highs ceil. The `as u16` casts saturate
/// (Rust float→int semantics), which can only move a low down or keep a
/// high at `Q_MAX` — both directions *grow* the quantized rectangle, so
/// saturation preserves conservativeness.
fn quantize<const D: usize>(
    grid: &QuantGrid<D>,
    lo: &[f64],
    hi: &[f64],
    n: usize,
    qlo_out: &mut Vec<u16>,
    qhi_out: &mut Vec<u16>,
) {
    qlo_out.clear();
    qhi_out.clear();
    qlo_out.reserve(D * n);
    qhi_out.reserve(D * n);
    for d in 0..D {
        let o = grid.origin[d];
        qlo_out.extend(
            lo[d * n..(d + 1) * n]
                .iter()
                .map(|&x| ((x - o) / grid.cw).floor() as u16),
        );
        qhi_out.extend(
            hi[d * n..(d + 1) * n]
                .iter()
                .map(|&x| ((x - o) / grid.cw).ceil() as u16),
        );
    }
}

/// The integer bound's rejection threshold for a real cutoff, in squared
/// grid cells: reject a candidate iff `lb² > threshold`. The cutoff is
/// converted to cells and padded with [`Q_SLACK_CELLS`] before squaring,
/// so `lb² > threshold` implies the exact distance strictly exceeds the
/// cutoff (DESIGN.md §10). An infinite cutoff (no results yet) yields an
/// infinite threshold: nothing rejects.
fn reject_threshold(cutoff: f64, cw: f64) -> f64 {
    let cells = (cutoff / cw) * Q_FUZZ + Q_SLACK_CELLS;
    if !cells.is_finite() {
        return f64::INFINITY;
    }
    (cells * cells) * Q_FUZZ
}

/// The batched counterpart of `plane_sweep_into`, valid only when the
/// axis cutoff is frozen at `window` for the whole sweep. Same merge
/// loop, same marks bookkeeping; only the per-anchor scan is batched.
/// `prefilter` arms the quantized screen (it is additionally disabled
/// when marks track rejects — those need exact rejected distances).
#[allow(clippy::too_many_arguments)]
pub(crate) fn batched_plane_sweep_into<const D: usize>(
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    axis: usize,
    window: f64,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mut marks: Option<&mut SweepMarks>,
    batch: &mut BatchScratch,
    prefilter: bool,
) {
    load::<D>(&mut batch.left_lo, &mut batch.left_hi, left.entries);
    load::<D>(&mut batch.right_lo, &mut batch.right_hi, right.entries);
    let track_rejects = marks.as_deref().is_some_and(|m| m.track_rejects);
    let grid = if prefilter && !track_rejects {
        build_grid::<D>(left.entries, right.entries)
    } else {
        None
    };
    if let Some(g) = &grid {
        quantize(
            g,
            &batch.left_lo,
            &batch.left_hi,
            left.entries.len(),
            &mut batch.left_qlo,
            &mut batch.left_qhi,
        );
        quantize(
            g,
            &batch.right_lo,
            &batch.right_hi,
            right.entries.len(),
            &mut batch.right_qlo,
            &mut batch.right_qhi,
        );
    }
    let (mut li, mut ri) = (0usize, 0usize);
    while li < left.entries.len() && ri < right.entries.len() {
        if left.entries[li].key <= right.entries[ri].key {
            let anchor_idx = li;
            li += 1;
            let stop = batch_scan(
                anchor_idx,
                left,
                right,
                ri,
                true,
                axis,
                window,
                grid.as_ref(),
                sink,
                stats,
                marks.as_deref_mut(),
                batch,
            );
            if let Some(m) = &mut marks {
                m.left_stops.push(stop as u32);
            }
        } else {
            let anchor_idx = ri;
            ri += 1;
            let stop = batch_scan(
                anchor_idx,
                left,
                right,
                li,
                false,
                axis,
                window,
                grid.as_ref(),
                sink,
                stats,
                marks.as_deref_mut(),
                batch,
            );
            if let Some(m) = &mut marks {
                m.right_stops.push(stop as u32);
            }
        }
    }
}

/// The unroll-by-[`LANES`] axis window search: partners are sorted along
/// the axis, so the first one whose gap exceeds `window` (same expression
/// as `Rect::axis_dist`) ends the scan. Lanes test eight partners per
/// iteration into a bitmask; the first set bit locates the break exactly.
fn axis_stop_lanes(
    lo_ax: &[f64],
    hi_ax: &[f64],
    from: usize,
    w_lo: f64,
    w_hi: f64,
    window: f64,
) -> usize {
    let n = lo_ax.len();
    let mut j = from;
    while j + LANES <= n {
        let mut mask = 0u32;
        for l in 0..LANES {
            let gap = (w_lo - hi_ax[j + l]).max(lo_ax[j + l] - w_hi).max(0.0);
            mask |= u32::from(gap > window) << l;
        }
        if mask != 0 {
            return j + mask.trailing_zeros() as usize;
        }
        j += LANES;
    }
    while j < n {
        let gap = (w_lo - hi_ax[j]).max(lo_ax[j] - w_hi).max(0.0);
        if gap > window {
            return j;
        }
        j += 1;
    }
    n
}

/// One anchor's scan, batched: lane axis pass to find the window, the
/// optional integer prefilter, lane passes per dimension to accumulate
/// squared gaps, a lane root pass, then an ordered emit pass against the
/// live real cutoff. Returns the absolute index where the scan stopped
/// (first unexamined partner).
#[allow(clippy::too_many_arguments)]
fn batch_scan<const D: usize>(
    anchor_idx: usize,
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    from: usize,
    anchor_is_left: bool,
    axis: usize,
    window: f64,
    grid: Option<&QuantGrid<D>>,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mut marks: Option<&mut SweepMarks>,
    batch: &mut BatchScratch,
) -> usize {
    let BatchScratch {
        left_lo,
        left_hi,
        right_lo,
        right_hi,
        left_qlo,
        left_qhi,
        right_qlo,
        right_qhi,
        dists,
        qlb,
        survivors,
    } = batch;
    let (anchor, partners, p_lo, p_hi, pq_lo, pq_hi, aq_lo, aq_hi, an) = if anchor_is_left {
        (
            &left.entries[anchor_idx],
            right.entries,
            &*right_lo,
            &*right_hi,
            &*right_qlo,
            &*right_qhi,
            &*left_qlo,
            &*left_qhi,
            left.entries.len(),
        )
    } else {
        (
            &right.entries[anchor_idx],
            left.entries,
            &*left_lo,
            &*left_hi,
            &*left_qlo,
            &*left_qhi,
            &*right_qlo,
            &*right_qhi,
            right.entries.len(),
        )
    };
    let n = partners.len();
    let (alo, ahi) = (anchor.mbr.lo(), anchor.mbr.hi());

    // Axis pass. Counting mirrors the scalar scan: the breaking partner
    // is examined (and counted) too.
    let stop = axis_stop_lanes(
        &p_lo[axis * n..(axis + 1) * n],
        &p_hi[axis * n..(axis + 1) * n],
        from,
        alo[axis],
        ahi[axis],
        window,
    );
    stats.axis_dist += (if stop < n { stop + 1 } else { n } - from) as u64;
    let span = stop - from;
    if span == 0 {
        return stop;
    }

    // Quantized prefilter: integer squared-gap lower bound per candidate,
    // screened against the real cutoff as it stands *now* (it can only
    // tighten later, so rejection stays conservative). With no finite
    // cutoff yet, skip the integer pass entirely.
    let mut screened = false;
    if let Some(g) = grid {
        let threshold = reject_threshold(sink.real_cutoff(), g.cw);
        if threshold < f64::INFINITY {
            qlb.clear();
            qlb.resize(span, 0);
            for d in 0..D {
                let lo_d = &pq_lo[d * n + from..d * n + stop];
                let hi_d = &pq_hi[d * n + from..d * n + stop];
                let a_lo = i32::from(aq_lo[d * an + anchor_idx]);
                let a_hi = i32::from(aq_hi[d * an + anchor_idx]);
                let mut acc_c = qlb.chunks_exact_mut(LANES);
                let mut lo_c = lo_d.chunks_exact(LANES);
                let mut hi_c = hi_d.chunks_exact(LANES);
                for ((acc, lo8), hi8) in (&mut acc_c).zip(&mut lo_c).zip(&mut hi_c) {
                    for l in 0..LANES {
                        let gap = (a_lo - i32::from(hi8[l]))
                            .max(i32::from(lo8[l]) - a_hi)
                            .max(0) as u64;
                        acc[l] += gap * gap;
                    }
                }
                for ((acc, &p_lo_j), &p_hi_j) in acc_c
                    .into_remainder()
                    .iter_mut()
                    .zip(lo_c.remainder())
                    .zip(hi_c.remainder())
                {
                    let gap = (a_lo - i32::from(p_hi_j))
                        .max(i32::from(p_lo_j) - a_hi)
                        .max(0) as u64;
                    *acc += gap * gap;
                }
            }
            survivors.clear();
            for (off, &lb) in qlb.iter().enumerate() {
                // `lb < 4·(Q_MAX·D)² < 2^53`: exactly representable.
                if (lb as f64) <= threshold {
                    survivors.push(off as u32);
                }
            }
            screened = survivors.len() < span;
            if screened {
                let skipped = (span - survivors.len()) as u64;
                stats.quantized_rejects += skipped;
                stats.exact_dist_skipped += skipped;
            }
        }
    }

    if !screened {
        // Dense path (prefilter off, no finite cutoff, or zero rejects):
        // lane passes over the contiguous window. Per candidate the
        // squared axis gaps accumulate in ascending dimension order and
        // root once, exactly like `Rect::min_dist`.
        stats.real_dist += span as u64;
        dists.clear();
        dists.resize(span, 0.0);
        for d in 0..D {
            let lo_d = &p_lo[d * n + from..d * n + stop];
            let hi_d = &p_hi[d * n + from..d * n + stop];
            let (a_lo, a_hi) = (alo[d], ahi[d]);
            let mut acc_c = dists.chunks_exact_mut(LANES);
            let mut lo_c = lo_d.chunks_exact(LANES);
            let mut hi_c = hi_d.chunks_exact(LANES);
            for ((acc, lo8), hi8) in (&mut acc_c).zip(&mut lo_c).zip(&mut hi_c) {
                for l in 0..LANES {
                    let gap = (a_lo - hi8[l]).max(lo8[l] - a_hi).max(0.0);
                    acc[l] += gap * gap;
                }
            }
            for ((acc, &p_lo_j), &p_hi_j) in acc_c
                .into_remainder()
                .iter_mut()
                .zip(lo_c.remainder())
                .zip(hi_c.remainder())
            {
                let gap = (a_lo - p_hi_j).max(p_lo_j - a_hi).max(0.0);
                *acc += gap * gap;
            }
        }
        let mut root_c = dists.chunks_exact_mut(LANES);
        for acc in &mut root_c {
            for v in acc {
                *v = v.sqrt();
            }
        }
        for v in root_c.into_remainder() {
            *v = v.sqrt();
        }

        for (off, j) in (from..stop).enumerate() {
            offer(
                dists[off],
                j,
                anchor,
                anchor_idx,
                anchor_is_left,
                left,
                right,
                sink,
                &mut marks,
            );
        }
    } else {
        // Sparse path: the prefilter punched holes in the window, so the
        // survivors are gathered by offset and their distances computed
        // per candidate — same ascending-dimension operation order as
        // `Rect::min_dist`, hence the same bits.
        stats.real_dist += survivors.len() as u64;
        dists.clear();
        for &off in survivors.iter() {
            let j = from + off as usize;
            let mut acc = 0.0f64;
            for d in 0..D {
                let gap = (alo[d] - p_hi[d * n + j])
                    .max(p_lo[d * n + j] - ahi[d])
                    .max(0.0);
                acc += gap * gap;
            }
            dists.push(acc.sqrt());
        }
        for (si, &off) in survivors.iter().enumerate() {
            offer(
                dists[si],
                from + off as usize,
                anchor,
                anchor_idx,
                anchor_is_left,
                left,
                right,
                sink,
                &mut marks,
            );
        }
    }
    stop
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdj_geom::Rect;
    use proptest::prelude::*;

    fn entry(lo: [f64; 2], hi: [f64; 2]) -> SweepEntry<2> {
        SweepEntry {
            mbr: Rect::new(lo, hi),
            child: 0,
            key: lo[0],
        }
    }

    /// Pins the dimension-major layout `buf[d * n + i]` the lane passes
    /// slice by dimension.
    #[test]
    fn load_is_dimension_major() {
        let entries: Vec<SweepEntry<2>> = (0..5)
            .map(|i| {
                let f = i as f64;
                entry([f, 10.0 + f], [f + 0.5, 10.0 + f + 0.25])
            })
            .collect();
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        load::<2>(&mut lo, &mut hi, &entries);
        let n = entries.len();
        assert_eq!(lo.len(), 2 * n);
        assert_eq!(hi.len(), 2 * n);
        for (i, e) in entries.iter().enumerate() {
            for d in 0..2 {
                assert_eq!(lo[d * n + i], e.mbr.lo()[d]);
                assert_eq!(hi[d * n + i], e.mbr.hi()[d]);
            }
        }
        // Refill reuses the buffers without stale prefix/suffix data.
        let shorter = &entries[..2];
        load::<2>(&mut lo, &mut hi, shorter);
        assert_eq!(lo.len(), 4);
        assert_eq!(lo, vec![0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn degenerate_bbox_disables_grid() {
        // All entries coincident: every extent is zero, cw would be 0.
        let entries = vec![entry([3.0, 4.0], [3.0, 4.0]); 4];
        assert!(build_grid::<2>(&entries, &entries).is_none());
    }

    #[test]
    fn zero_width_axis_still_quantizes() {
        // Collinear points: the bounding box has a zero-width y axis but
        // a real x extent, so the common cell width is valid and the
        // degenerate dimension simply quantizes to cell 0 everywhere.
        let entries: Vec<SweepEntry<2>> = (0..6)
            .map(|i| entry([i as f64, 5.0], [i as f64, 5.0]))
            .collect();
        let g = build_grid::<2>(&entries, &entries).expect("grid");
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        load::<2>(&mut lo, &mut hi, &entries);
        let (mut qlo, mut qhi) = (Vec::new(), Vec::new());
        quantize(&g, &lo, &hi, entries.len(), &mut qlo, &mut qhi);
        let n = entries.len();
        for i in 0..n {
            assert!(qlo[n + i] == 0 && qhi[n + i] == 0, "y collapses to cell 0");
            assert!(qlo[i] <= qhi[i]);
        }
    }

    /// The integer lower bound of one candidate pair under a grid, in
    /// squared cells — the same arithmetic the kernel's prefilter pass
    /// runs.
    fn int_bound(g: &QuantGrid<2>, a: &Rect<2>, b: &Rect<2>) -> u64 {
        let q = |x: f64, d: usize, up: bool| -> i32 {
            let c = (x - g.origin[d]) / g.cw;
            (if up { c.ceil() } else { c.floor() }) as u16 as i32
        };
        let mut lb = 0u64;
        for d in 0..2 {
            let (alo, ahi) = (q(a.lo()[d], d, false), q(a.hi()[d], d, true));
            let (blo, bhi) = (q(b.lo()[d], d, false), q(b.hi()[d], d, true));
            let gap = (alo - bhi).max(blo - ahi).max(0) as u64;
            lb += gap * gap;
        }
        lb
    }

    // Mix continuous coordinates with snapped ones so coincident and
    // zero-extent rectangles occur often.
    fn coord() -> impl Strategy<Value = f64> {
        prop_oneof![
            3 => -100.0f64..100.0,
            2 => (-10i64..10).prop_map(|v| v as f64 * 7.5),
        ]
    }

    fn extent() -> impl Strategy<Value = f64> {
        prop_oneof![2 => 0.0f64..5.0, 1 => Just(0.0f64)]
    }

    fn arb_rect() -> impl Strategy<Value = Rect<2>> {
        (coord(), coord(), extent(), extent())
            .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
    }

    proptest! {
        /// Conservativeness of the quantized bound: dequantized it never
        /// exceeds the true `min_dist` (beyond the sub-ulp rounding the
        /// threshold slack absorbs), and — the property the kernel
        /// actually relies on — the rejection test never fires against a
        /// cutoff the pair satisfies.
        #[test]
        fn quantized_bound_is_conservative(
            rects in proptest::collection::vec(arb_rect(), 2..24),
            cutoff_scale in 0.0f64..2.0,
        ) {
            let entries: Vec<SweepEntry<2>> = rects
                .iter()
                .map(|r| SweepEntry { mbr: *r, child: 0, key: r.lo()[0] })
                .collect();
            let (a_side, b_side) = entries.split_at(entries.len() / 2);
            let Some(g) = build_grid::<2>(a_side, b_side) else {
                // Fully degenerate bounding box: prefilter disabled, which
                // is trivially conservative.
                return Ok(());
            };
            for a in a_side {
                for b in b_side {
                    let truth = a.mbr.min_dist(&b.mbr);
                    let lb = int_bound(&g, &a.mbr, &b.mbr);
                    let dequantized = (lb as f64).sqrt() * g.cw;
                    prop_assert!(
                        dequantized <= truth + g.cw * 1e-6,
                        "bound {dequantized} exceeds min_dist {truth}"
                    );
                    // A pair at or below the cutoff must survive the
                    // screen — exactly the kernel's rejection predicate.
                    for cutoff in [truth, truth * cutoff_scale, truth + g.cw] {
                        if truth <= cutoff {
                            let t = reject_threshold(cutoff, g.cw);
                            prop_assert!(
                                (lb as f64) <= t,
                                "prefilter rejected a pair within the cutoff: \
                                 lb {lb}, threshold {t}, dist {truth}, cutoff {cutoff}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn infinite_cutoff_never_rejects() {
        assert_eq!(reject_threshold(f64::INFINITY, 0.25), f64::INFINITY);
        // Huge finite cutoffs overflow the cell conversion to infinity
        // rather than wrapping into a rejecting threshold.
        assert_eq!(reject_threshold(f64::MAX, f64::MIN_POSITIVE), f64::INFINITY);
    }
}
