//! The bidirectional node-expansion engine (§3): plane sweep with
//! per-pair sweeping-axis and sweeping-direction selection, plus the
//! compensation bookkeeping that §4 builds on.
//!
//! A pair ⟨l, r⟩ is expanded by sorting both children lists along the
//! chosen axis, then repeatedly taking the least-advanced entry (the
//! *anchor*) and scanning the other list while the axis distance stays
//! within the cutoff ([`plane_sweep`]). Axis distances are monotone along
//! the scan, so the first partner beyond the cutoff ends the scan — and
//! its index, recorded in [`SweepMarks`], is exactly where a later
//! *compensation* pass ([`compensation_sweep`]) must resume when the
//! cutoff was only an estimate (`eDmax`).
//!
//! # Allocation discipline
//!
//! Expansion is the hottest path of every join, so its buffers are owned
//! by a reusable [`SweepScratch`] rather than allocated per node pair:
//! the two sorted entry lists, the mark vectors, and the compensation
//! staging area all live in the scratch and are `clear()`ed between
//! expansions. In the steady state (capacities warmed up to the tree
//! fanout) an expansion performs **zero** heap allocations. The only
//! allocating operation is [`SweepScratch::park`], which surrenders the
//! current buffers to a long-lived [`CompEntry`] — the parked pair
//! legitimately owns its data — leaving fresh (empty, unallocated) vectors
//! behind. Sorting uses `sort_unstable_by` over [`f64::total_cmp`] (with
//! the child id as tiebreaker for determinism), which neither panics on
//! NaN nor allocates a merge buffer.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use amdj_geom::sweep_index::{choose_sweep_axis, choose_sweep_direction, SweepDirection};
use amdj_geom::Rect;
use amdj_rtree::{Node, RTree};
use amdj_storage::PageId;

use crate::{ItemRef, JoinConfig, JoinStats, Pair};

/// A child entry prepared for sweeping: its MBR, its child id, and the
/// (direction-folded) sort key along the sweep axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct SweepEntry<const D: usize> {
    pub mbr: Rect<D>,
    pub child: u64,
    pub(crate) key: f64,
}

/// One side's children, sorted along the sweep axis — the *owned* form,
/// used when an expansion outlives its scratch (parked [`CompEntry`]s).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SweepList<const D: usize> {
    pub entries: Vec<SweepEntry<D>>,
    /// Whether the children are objects (parent was a leaf, or the side
    /// was itself an object).
    pub objects: bool,
    /// Level of the children when they are nodes.
    pub child_level: u32,
}

/// A borrowed view of one side: what the sweep loops actually consume.
/// Copyable so the loops can pass it around freely.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SweepSide<'a, const D: usize> {
    pub entries: &'a [SweepEntry<D>],
    pub objects: bool,
    pub child_level: u32,
}

/// Axis and direction chosen for one expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SweepSetup {
    pub axis: usize,
    pub dir: SweepDirection,
}

/// Chooses axis (§3.2, by minimum sweeping index) and direction (§3.3)
/// for expanding the pair with MBRs `a`, `b` under pruning cutoff `w`.
/// The [`JoinConfig`] flags turn either optimization off (Figure 11).
pub(crate) fn choose_setup<const D: usize>(
    a: &Rect<D>,
    b: &Rect<D>,
    w: f64,
    cfg: &JoinConfig,
) -> SweepSetup {
    let axis = if cfg.optimize_axis {
        choose_sweep_axis(a, b, w)
    } else {
        0
    };
    let dir = if cfg.optimize_direction {
        choose_sweep_direction(a, b, axis)
    } else {
        SweepDirection::Forward
    };
    SweepSetup { axis, dir }
}

fn sort_key<const D: usize>(mbr: &Rect<D>, setup: SweepSetup) -> f64 {
    match setup.dir {
        SweepDirection::Forward => mbr.lo()[setup.axis],
        SweepDirection::Backward => -mbr.hi()[setup.axis],
    }
}

/// Fills `buf` with a node's children keyed for sweeping, sorted without
/// allocating. Equal keys are ordered by child id so the sweep order — and
/// therefore every downstream tie order — is deterministic.
fn fill_from_node<const D: usize>(buf: &mut Vec<SweepEntry<D>>, node: &Node<D>, setup: SweepSetup) {
    buf.clear();
    buf.extend(node.entries.iter().map(|e| SweepEntry {
        mbr: e.mbr,
        child: e.child,
        key: sort_key(&e.mbr, setup),
    }));
    buf.sort_unstable_by(|a, b| a.key.total_cmp(&b.key).then_with(|| a.child.cmp(&b.child)));
}

impl<const D: usize> SweepList<D> {
    /// Prepares a node's children for sweeping (owned; prefer
    /// [`SweepScratch::expand`] on hot paths).
    #[cfg(test)]
    pub(crate) fn from_node(node: &Node<D>, setup: SweepSetup) -> Self {
        let mut entries = Vec::new();
        fill_from_node(&mut entries, node, setup);
        SweepList {
            entries,
            objects: node.is_leaf(),
            child_level: node.level.saturating_sub(1),
        }
    }

    /// Wraps a single object as a one-entry list (for ⟨node, object⟩
    /// pairs).
    #[cfg(test)]
    pub(crate) fn singleton_object(oid: u64, mbr: Rect<D>, setup: SweepSetup) -> Self {
        SweepList {
            entries: vec![SweepEntry {
                mbr,
                child: oid,
                key: sort_key(&mbr, setup),
            }],
            objects: true,
            child_level: 0,
        }
    }

    pub(crate) fn view(&self) -> SweepSide<'_, D> {
        SweepSide {
            entries: &self.entries,
            objects: self.objects,
            child_level: self.child_level,
        }
    }
}

impl<const D: usize> SweepSide<'_, D> {
    pub(crate) fn item_ref(&self, e: &SweepEntry<D>) -> ItemRef {
        if self.objects {
            ItemRef::Object { oid: e.child }
        } else {
            ItemRef::Node {
                page: e.child,
                level: self.child_level,
            }
        }
    }
}

/// Where swept candidate pairs go. One object implements both the cutoffs
/// and the destination, so a cutoff that depends on state the destination
/// mutates (`qDmax` shrinking as object pairs are enqueued) stays
/// borrow-consistent.
pub(crate) trait SweepSink<const D: usize> {
    /// Pairs with axis distance beyond this are not examined (scan stops).
    fn axis_cutoff(&self) -> f64;
    /// Pairs with real distance beyond this are dropped.
    fn real_cutoff(&self) -> f64;
    /// Receives a candidate pair (`dist ≤ real_cutoff()` at call time).
    fn emit(&mut self, pair: Pair<D>);
    /// `Some(w)` when the **axis** cutoff is frozen at `w` for the whole
    /// sweep (it does not depend on state that `emit` mutates). A frozen
    /// axis cutoff means the set of examined partners is fixed up front,
    /// which lets leaf–leaf sweeps use the batched SoA distance kernel
    /// without changing which distances are computed. The *real* cutoff
    /// may still be live; it is re-read per candidate in scan order.
    fn fixed_axis_cutoff(&self) -> Option<f64> {
        None
    }
}

/// What compensation bookkeeping a sweep records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MarkMode {
    /// No bookkeeping (exact cutoffs throughout — B-KDJ, SJ-SORT).
    None,
    /// Per-anchor scan-stop positions only: the *real*-distance cutoff is
    /// exact (`qDmax`), so mid-scan real-distance rejections are final
    /// (AM-KDJ's aggressive stage).
    Suffix,
    /// Scan stops *and* explicit mid-scan rejections: the real-distance
    /// cutoff is itself an estimate (`eDmax`), so a pair inside the axis
    /// window but beyond the estimated real cutoff must stay recoverable
    /// (AM-IDJ).
    Full,
}

/// A pair that passed the axis check but failed an *estimated* real
/// cutoff; re-offered on every later stage until it passes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Reject {
    pub(crate) left: u32,
    pub(crate) right: u32,
    pub(crate) dist: f64,
}

/// Compensation bookkeeping (§4.1, lines 19/21 of Algorithm 2, extended —
/// see [`MarkMode`]).
///
/// `left_stops[i]` is the absolute index into the *right* list where the
/// scan for left anchor `i` stopped (everything from there on is
/// unexamined); symmetrically for `right_stops`. Anchors that never ran
/// (the tail of one list once the other was exhausted) have no entry —
/// their pairings were all covered by the other side's anchors.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct SweepMarks {
    pub left_stops: Vec<u32>,
    pub right_stops: Vec<u32>,
    pub(crate) rejects: Vec<Reject>,
    pub(crate) track_rejects: bool,
}

impl SweepMarks {
    /// True when no unexamined or rejected pair remains.
    pub(crate) fn exhausted(&self, left_len: usize, right_len: usize) -> bool {
        self.rejects.is_empty()
            && self.left_stops.iter().all(|&s| s as usize >= right_len)
            && self.right_stops.iter().all(|&s| s as usize >= left_len)
    }

    /// Empties the bookkeeping for reuse, keeping vector capacities.
    fn reset(&mut self, track_rejects: bool) {
        self.left_stops.clear();
        self.right_stops.clear();
        self.rejects.clear();
        self.track_rejects = track_rejects;
    }
}

/// Reusable staging for [`compensation_sweep`]: the retained-rejects
/// buffer and the scratch marks that collect newly discovered rejects.
#[derive(Debug, Default)]
pub(crate) struct CompScratch {
    kept: Vec<Reject>,
    fresh: SweepMarks,
}

/// Reusable expansion state: the two sorted entry buffers, the mark
/// vectors, and the compensation staging area. One scratch per worker (or
/// per sequential join); see the module docs for the ownership rules.
#[derive(Debug)]
pub(crate) struct SweepScratch<const D: usize> {
    left: Vec<SweepEntry<D>>,
    right: Vec<SweepEntry<D>>,
    left_objects: bool,
    left_child_level: u32,
    right_objects: bool,
    right_child_level: u32,
    axis: usize,
    marks: SweepMarks,
    comp: CompScratch,
    /// Taken from [`JoinConfig::batched_leaf_sweep`] at expansion time;
    /// gates the SoA leaf kernel so benches can ablate it.
    batch_enabled: bool,
    /// Taken from [`JoinConfig::quantized_prefilter`] at expansion time;
    /// arms the kernel's integer screen (see `engine::batch`).
    prefilter_enabled: bool,
    batch: super::batch::BatchScratch,
}

impl<const D: usize> SweepScratch<D> {
    pub(crate) fn new() -> Self {
        SweepScratch {
            left: Vec::new(),
            right: Vec::new(),
            left_objects: false,
            left_child_level: 0,
            right_objects: false,
            right_child_level: 0,
            axis: 0,
            marks: SweepMarks::default(),
            comp: CompScratch::default(),
            batch_enabled: true,
            prefilter_enabled: true,
            batch: super::batch::BatchScratch::default(),
        }
    }

    /// Fetches and prepares both sides of a pair for expansion, choosing
    /// the sweep setup from the pair's MBRs and the current cutoff.
    pub(crate) fn expand(
        &mut self,
        r: &RTree<D>,
        s: &RTree<D>,
        pair: &Pair<D>,
        cutoff: f64,
        cfg: &JoinConfig,
    ) {
        let setup = choose_setup(&pair.a_mbr, &pair.b_mbr, cutoff, cfg);
        self.axis = setup.axis;
        self.batch_enabled = cfg.batched_leaf_sweep;
        self.prefilter_enabled = cfg.quantized_prefilter;
        match pair.a {
            ItemRef::Node { page, .. } => {
                let node = r.fetch(PageId(page));
                fill_from_node(&mut self.left, &node, setup);
                self.left_objects = node.is_leaf();
                self.left_child_level = node.level.saturating_sub(1);
            }
            ItemRef::Object { oid } => {
                self.left.clear();
                self.left.push(SweepEntry {
                    mbr: pair.a_mbr,
                    child: oid,
                    key: sort_key(&pair.a_mbr, setup),
                });
                self.left_objects = true;
                self.left_child_level = 0;
            }
        }
        match pair.b {
            ItemRef::Node { page, .. } => {
                let node = s.fetch(PageId(page));
                fill_from_node(&mut self.right, &node, setup);
                self.right_objects = node.is_leaf();
                self.right_child_level = node.level.saturating_sub(1);
            }
            ItemRef::Object { oid } => {
                self.right.clear();
                self.right.push(SweepEntry {
                    mbr: pair.b_mbr,
                    child: oid,
                    key: sort_key(&pair.b_mbr, setup),
                });
                self.right_objects = true;
                self.right_child_level = 0;
            }
        }
    }

    /// Prepares two level-matched nodes directly (SJ-SORT's sync
    /// traversal, which never carries `Pair`s).
    pub(crate) fn expand_nodes(
        &mut self,
        nr: &Node<D>,
        ns: &Node<D>,
        setup: SweepSetup,
        cfg: &JoinConfig,
    ) {
        self.axis = setup.axis;
        self.batch_enabled = cfg.batched_leaf_sweep;
        self.prefilter_enabled = cfg.quantized_prefilter;
        fill_from_node(&mut self.left, nr, setup);
        self.left_objects = nr.is_leaf();
        self.left_child_level = nr.level.saturating_sub(1);
        fill_from_node(&mut self.right, ns, setup);
        self.right_objects = ns.is_leaf();
        self.right_child_level = ns.level.saturating_sub(1);
    }

    /// Sweeps the prepared lists. With a recording [`MarkMode`] the
    /// bookkeeping lands in the scratch's own marks — check
    /// [`marks_exhausted`](Self::marks_exhausted) and, if compensation is
    /// owed, [`park`](Self::park) the expansion.
    pub(crate) fn sweep(
        &mut self,
        sink: &mut impl SweepSink<D>,
        stats: &mut JoinStats,
        mode: MarkMode,
    ) {
        let left = SweepSide {
            entries: &self.left,
            objects: self.left_objects,
            child_level: self.left_child_level,
        };
        let right = SweepSide {
            entries: &self.right,
            objects: self.right_objects,
            child_level: self.right_child_level,
        };
        let marks = match mode {
            MarkMode::None => None,
            MarkMode::Suffix => {
                self.marks.reset(false);
                Some(&mut self.marks)
            }
            MarkMode::Full => {
                self.marks.reset(true);
                Some(&mut self.marks)
            }
        };
        // Leaf–leaf sweeps under a frozen axis cutoff take the batched SoA
        // kernel; everything else takes the scalar per-pair path. Both are
        // bit-identical (see `engine::batch`), so the flag is purely an
        // ablation/performance switch.
        if self.batch_enabled && left.objects && right.objects {
            if let Some(w) = sink.fixed_axis_cutoff() {
                super::batch::batched_plane_sweep_into(
                    left,
                    right,
                    self.axis,
                    w,
                    sink,
                    stats,
                    marks,
                    &mut self.batch,
                    self.prefilter_enabled,
                );
                return;
            }
        }
        plane_sweep_into(left, right, self.axis, sink, stats, marks);
    }

    /// Whether the last recording sweep left unexamined or rejected pairs.
    pub(crate) fn marks_exhausted(&self) -> bool {
        self.marks.exhausted(self.left.len(), self.right.len())
    }

    /// Surrenders the current expansion to a long-lived [`CompEntry`].
    /// The scratch is left with fresh (empty) buffers; this is the one
    /// deliberately allocating hand-off in the sweep path.
    pub(crate) fn park(&mut self, key: f64) -> CompEntry<D> {
        CompEntry {
            key,
            axis: self.axis,
            left: SweepList {
                entries: std::mem::take(&mut self.left),
                objects: self.left_objects,
                child_level: self.left_child_level,
            },
            right: SweepList {
                entries: std::mem::take(&mut self.right),
                objects: self.right_objects,
                child_level: self.right_child_level,
            },
            marks: std::mem::take(&mut self.marks),
        }
    }

    /// Replays the pairs a parked expansion skipped, reusing the scratch's
    /// compensation staging buffers (see [`compensation_sweep`]).
    pub(crate) fn compensate(
        &mut self,
        entry: &mut CompEntry<D>,
        sink: &mut impl SweepSink<D>,
        stats: &mut JoinStats,
    ) {
        stats.comp_replays += 1;
        compensation_sweep_into(
            entry.left.view(),
            entry.right.view(),
            entry.axis,
            &mut entry.marks,
            sink,
            stats,
            &mut self.comp,
        );
    }
}

/// Expands a pair bidirectionally (Algorithm 1's `PlaneSweep`; with a
/// recording [`MarkMode`], Algorithm 2's `AggressivePlaneSweep`). Returns
/// freshly allocated compensation marks when recording — the hot paths use
/// [`SweepScratch::sweep`] instead, which reuses buffers.
#[cfg(test)]
pub(crate) fn plane_sweep<const D: usize>(
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    axis: usize,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mode: MarkMode,
) -> Option<SweepMarks> {
    let mut marks = match mode {
        MarkMode::None => None,
        MarkMode::Suffix => Some(SweepMarks::default()),
        MarkMode::Full => Some(SweepMarks {
            track_rejects: true,
            ..SweepMarks::default()
        }),
    };
    plane_sweep_into(left, right, axis, sink, stats, marks.as_mut());
    marks
}

fn plane_sweep_into<const D: usize>(
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    axis: usize,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mut marks: Option<&mut SweepMarks>,
) {
    let (mut li, mut ri) = (0usize, 0usize);
    while li < left.entries.len() && ri < right.entries.len() {
        if left.entries[li].key <= right.entries[ri].key {
            let anchor_idx = li;
            let anchor = left.entries[li];
            li += 1;
            let stop = scan(
                &anchor,
                anchor_idx,
                left,
                right,
                ri,
                true,
                axis,
                sink,
                stats,
                marks.as_deref_mut(),
            );
            if let Some(m) = &mut marks {
                m.left_stops.push(stop as u32);
            }
        } else {
            let anchor_idx = ri;
            let anchor = right.entries[ri];
            ri += 1;
            let stop = scan(
                &anchor,
                anchor_idx,
                left,
                right,
                li,
                false,
                axis,
                sink,
                stats,
                marks.as_deref_mut(),
            );
            if let Some(m) = &mut marks {
                m.right_stops.push(stop as u32);
            }
        }
    }
}

/// Scans partners for one anchor starting at `from` in the other list;
/// returns the absolute index where the scan stopped (first unexamined).
///
/// With a frozen axis cutoff the window is fixed before any distance
/// math, so the monotone axis-gap search runs as the same unroll-by-8
/// lane pass the leaf kernel uses (over the AoS entries rather than SoA
/// scratch) and the distance loop then walks the window without
/// re-testing the axis — this is how interior-node sweeps under
/// aggressive/frozen cutoffs get the lane treatment. Bit-identical to
/// the live path: same gap expression, same break condition, same
/// counting (the breaking partner counts as examined).
#[allow(clippy::too_many_arguments)]
fn scan<const D: usize>(
    anchor: &SweepEntry<D>,
    anchor_idx: usize,
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    from: usize,
    anchor_is_left: bool,
    axis: usize,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    mut marks: Option<&mut SweepMarks>,
) -> usize {
    let partners = if anchor_is_left {
        right.entries
    } else {
        left.entries
    };
    if let Some(w) = sink.fixed_axis_cutoff() {
        let n = partners.len();
        let stop = axis_window_stop(anchor, partners, from, axis, w);
        stats.axis_dist += (if stop < n { stop + 1 } else { n } - from) as u64;
        for (i, m) in partners.iter().enumerate().take(stop).skip(from) {
            stats.real_dist += 1;
            let real = anchor.mbr.min_dist(&m.mbr);
            offer(
                real,
                i,
                anchor,
                anchor_idx,
                anchor_is_left,
                left,
                right,
                sink,
                &mut marks,
            );
        }
        return stop;
    }
    for (i, m) in partners.iter().enumerate().skip(from) {
        stats.axis_dist += 1;
        let ad = anchor.mbr.axis_dist(&m.mbr, axis);
        if ad > sink.axis_cutoff() {
            return i;
        }
        stats.real_dist += 1;
        let real = anchor.mbr.min_dist(&m.mbr);
        offer(
            real,
            i,
            anchor,
            anchor_idx,
            anchor_is_left,
            left,
            right,
            sink,
            &mut marks,
        );
    }
    partners.len()
}

/// The unroll-by-[`LANES`](super::batch::LANES) axis window search over
/// AoS entries: partners are sorted along `axis`, so the first one whose
/// gap (same expression as [`Rect::axis_dist`]) exceeds `window` ends the
/// scan. Lanes test eight partners per iteration into a bitmask; the
/// first set bit locates the break exactly.
fn axis_window_stop<const D: usize>(
    anchor: &SweepEntry<D>,
    partners: &[SweepEntry<D>],
    from: usize,
    axis: usize,
    window: f64,
) -> usize {
    use super::batch::LANES;
    let (a_lo, a_hi) = (anchor.mbr.lo()[axis], anchor.mbr.hi()[axis]);
    let n = partners.len();
    let mut j = from;
    while j + LANES <= n {
        let mut mask = 0u32;
        for l in 0..LANES {
            let m = &partners[j + l].mbr;
            let gap = (a_lo - m.hi()[axis]).max(m.lo()[axis] - a_hi).max(0.0);
            mask |= u32::from(gap > window) << l;
        }
        if mask != 0 {
            return j + mask.trailing_zeros() as usize;
        }
        j += LANES;
    }
    while j < n {
        let m = &partners[j].mbr;
        let gap = (a_lo - m.hi()[axis]).max(m.lo()[axis] - a_hi).max(0.0);
        if gap > window {
            return j;
        }
        j += 1;
    }
    n
}

/// The per-candidate emit/reject decision shared by the scalar scan and
/// the batched kernel's dense and sparse paths: compare against the
/// *live* real cutoff, emit at or below it, record a reject (when
/// tracking) above it.
#[allow(clippy::too_many_arguments)]
pub(super) fn offer<const D: usize>(
    real: f64,
    j: usize,
    anchor: &SweepEntry<D>,
    anchor_idx: usize,
    anchor_is_left: bool,
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    sink: &mut impl SweepSink<D>,
    marks: &mut Option<&mut SweepMarks>,
) {
    let partner = if anchor_is_left {
        &right.entries[j]
    } else {
        &left.entries[j]
    };
    if real <= sink.real_cutoff() {
        let (le, re) = if anchor_is_left {
            (anchor, partner)
        } else {
            (partner, anchor)
        };
        sink.emit(Pair {
            dist: real,
            a: left.item_ref(le),
            b: right.item_ref(re),
            a_mbr: le.mbr,
            b_mbr: re.mbr,
        });
    } else if let Some(m) = marks.as_deref_mut() {
        if m.track_rejects {
            let (li_, ri_) = if anchor_is_left {
                (anchor_idx, j)
            } else {
                (j, anchor_idx)
            };
            m.rejects.push(Reject {
                left: li_ as u32,
                right: ri_ as u32,
                dist: real,
            });
        }
    }
}

/// Re-examines only the pairs a previous (aggressive) sweep skipped
/// (Algorithm 3's `CompensatePlaneSweep`), updating the marks in place so
/// AM-IDJ can compensate the same pair again in a later stage. Allocates
/// its own staging; hot paths use [`SweepScratch::compensate`].
#[cfg(test)]
pub(crate) fn compensation_sweep<const D: usize>(
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    axis: usize,
    marks: &mut SweepMarks,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
) {
    let mut comp = CompScratch::default();
    compensation_sweep_into(left, right, axis, marks, sink, stats, &mut comp);
}

fn compensation_sweep_into<const D: usize>(
    left: SweepSide<'_, D>,
    right: SweepSide<'_, D>,
    axis: usize,
    marks: &mut SweepMarks,
    sink: &mut impl SweepSink<D>,
    stats: &mut JoinStats,
    comp: &mut CompScratch,
) {
    // Re-offer earlier real-cutoff rejections first: ones inside the new
    // cutoff are emitted (their distance is already known — no new
    // distance computation), the rest stay parked.
    if !marks.rejects.is_empty() {
        let cutoff = sink.real_cutoff();
        comp.kept.clear();
        for rej in marks.rejects.drain(..) {
            if rej.dist <= cutoff {
                let le = &left.entries[rej.left as usize];
                let re = &right.entries[rej.right as usize];
                sink.emit(Pair {
                    dist: rej.dist,
                    a: left.item_ref(le),
                    b: right.item_ref(re),
                    a_mbr: le.mbr,
                    b_mbr: re.mbr,
                });
            } else {
                comp.kept.push(rej);
            }
        }
        // The retained rejects go back; `kept` inherits the drained
        // vector's capacity for next time.
        std::mem::swap(&mut marks.rejects, &mut comp.kept);
    }
    // Then extend every anchor's scan past its recorded stop. New rejects
    // (still-estimated cutoff) accumulate into the same marks.
    comp.fresh.reset(marks.track_rejects);
    for (i, stop) in marks.left_stops.iter_mut().enumerate() {
        if (*stop as usize) < right.entries.len() {
            let anchor = left.entries[i];
            *stop = scan(
                &anchor,
                i,
                left,
                right,
                *stop as usize,
                true,
                axis,
                sink,
                stats,
                Some(&mut comp.fresh),
            ) as u32;
        }
    }
    for (i, stop) in marks.right_stops.iter_mut().enumerate() {
        if (*stop as usize) < left.entries.len() {
            let anchor = right.entries[i];
            *stop = scan(
                &anchor,
                i,
                left,
                right,
                *stop as usize,
                false,
                axis,
                sink,
                stats,
                Some(&mut comp.fresh),
            ) as u32;
        }
    }
    marks.rejects.append(&mut comp.fresh.rejects);
}

/// A parked expansion awaiting compensation: the sorted lists, the marks,
/// and a key lower-bounding every unexamined pair's distance.
#[derive(Debug, PartialEq)]
pub(crate) struct CompEntry<const D: usize> {
    pub key: f64,
    pub axis: usize,
    pub left: SweepList<D>,
    pub right: SweepList<D>,
    pub marks: SweepMarks,
}

struct CompOrd<const D: usize> {
    seq: u64,
    entry: CompEntry<D>,
}

impl<const D: usize> PartialEq for CompOrd<D> {
    fn eq(&self, other: &Self) -> bool {
        self.entry.key == other.entry.key && self.seq == other.seq
    }
}
impl<const D: usize> Eq for CompOrd<D> {}
impl<const D: usize> PartialOrd for CompOrd<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for CompOrd<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by key, FIFO on ties.
        other
            .entry
            .key
            .total_cmp(&self.entry.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The compensation queue (`Q_C`). Holds only non-object node pairs, so —
/// as §4.4 argues — it is orders of magnitude smaller than the main queue
/// and kept in memory.
pub(crate) struct CompQueue<const D: usize> {
    heap: BinaryHeap<CompOrd<D>>,
    seq: u64,
}

impl<const D: usize> CompQueue<D> {
    pub(crate) fn new() -> Self {
        CompQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, entry: CompEntry<D>, stats: &mut JoinStats) {
        stats.compq_insertions += 1;
        self.seq += 1;
        self.heap.push(CompOrd {
            seq: self.seq,
            entry,
        });
    }

    /// Re-enqueues an entry whose original park was already counted (a
    /// parallel stage-two worker receiving pooled compensation work): no
    /// stats impact. Entries seeded in `drain_sorted` order keep their
    /// relative FIFO order on equal keys.
    pub(crate) fn seed(&mut self, entry: CompEntry<D>) {
        self.seq += 1;
        self.heap.push(CompOrd {
            seq: self.seq,
            entry,
        });
    }

    pub(crate) fn pop(&mut self) -> Option<CompEntry<D>> {
        self.heap.pop().map(|c| c.entry)
    }

    pub(crate) fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|c| c.entry.key)
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Drains every parked entry, cheapest key first.
    pub(crate) fn drain_sorted(&mut self) -> Vec<CompEntry<D>> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdj_geom::Point;

    /// Collects every emitted pair; cutoffs are fixed.
    struct Collect<const D: usize> {
        axis: f64,
        real: f64,
        pairs: Vec<Pair<D>>,
    }

    impl<const D: usize> SweepSink<D> for Collect<D> {
        fn axis_cutoff(&self) -> f64 {
            self.axis
        }
        fn real_cutoff(&self) -> f64 {
            self.real
        }
        fn emit(&mut self, pair: Pair<D>) {
            self.pairs.push(pair);
        }
    }

    fn leaf(points: &[(f64, f64)], base_id: u64) -> Node<2> {
        Node {
            level: 0,
            entries: points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| amdj_rtree::Entry {
                    mbr: Rect::from_point(Point::new([x, y])),
                    child: base_id + i as u64,
                })
                .collect(),
        }
    }

    fn setup_fwd() -> SweepSetup {
        SweepSetup {
            axis: 0,
            dir: SweepDirection::Forward,
        }
    }

    fn brute_pairs(a: &[(f64, f64)], b: &[(f64, f64)], cutoff: f64) -> usize {
        let mut n = 0;
        for &(ax, ay) in a {
            for &(bx, by) in b {
                if ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt() <= cutoff {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn sweep_finds_exactly_the_close_pairs() {
        let a_pts = [(0.0, 0.0), (1.0, 0.5), (4.0, 0.0), (9.0, 1.0)];
        let b_pts = [(0.5, 0.0), (3.5, 0.2), (8.0, 0.0)];
        let la = SweepList::from_node(&leaf(&a_pts, 0), setup_fwd());
        let lb = SweepList::from_node(&leaf(&b_pts, 100), setup_fwd());
        for cutoff in [0.4, 0.6, 1.2, 3.0, 100.0] {
            let mut sink = Collect {
                axis: cutoff,
                real: cutoff,
                pairs: vec![],
            };
            let mut stats = JoinStats::default();
            plane_sweep(
                la.view(),
                lb.view(),
                0,
                &mut sink,
                &mut stats,
                MarkMode::None,
            );
            assert_eq!(
                sink.pairs.len(),
                brute_pairs(&a_pts, &b_pts, cutoff),
                "cutoff = {cutoff}"
            );
            // Orientation: a is always from the left list.
            for p in &sink.pairs {
                assert!(matches!(p.a, ItemRef::Object { oid } if oid < 100));
                assert!(matches!(p.b, ItemRef::Object { oid } if oid >= 100));
            }
        }
    }

    #[test]
    fn sweep_prunes_axis_distance_early() {
        // Points spread along x; a small cutoff must keep the number of
        // real distance computations near-linear.
        let a_pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 0.0)).collect();
        let b_pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 + 0.5, 0.0)).collect();
        let la = SweepList::from_node(&leaf(&a_pts, 0), setup_fwd());
        let lb = SweepList::from_node(&leaf(&b_pts, 100), setup_fwd());
        let mut sink = Collect {
            axis: 1.0,
            real: 1.0,
            pairs: vec![],
        };
        let mut stats = JoinStats::default();
        plane_sweep(
            la.view(),
            lb.view(),
            0,
            &mut sink,
            &mut stats,
            MarkMode::None,
        );
        assert!(
            stats.real_dist < 200,
            "Cartesian would be 2500, sweep did {}",
            stats.real_dist
        );
        assert_eq!(sink.pairs.len(), brute_pairs(&a_pts, &b_pts, 1.0));
    }

    #[test]
    fn backward_direction_equivalent_results() {
        let a_pts = [(0.0, 0.0), (2.0, 0.0), (5.0, 0.0)];
        let b_pts = [(1.0, 0.0), (4.5, 0.0)];
        let fwd = SweepSetup {
            axis: 0,
            dir: SweepDirection::Forward,
        };
        let bwd = SweepSetup {
            axis: 0,
            dir: SweepDirection::Backward,
        };
        for setup in [fwd, bwd] {
            let la = SweepList::from_node(&leaf(&a_pts, 0), setup);
            let lb = SweepList::from_node(&leaf(&b_pts, 100), setup);
            let mut sink = Collect {
                axis: 1.1,
                real: 1.1,
                pairs: vec![],
            };
            let mut stats = JoinStats::default();
            plane_sweep(
                la.view(),
                lb.view(),
                0,
                &mut sink,
                &mut stats,
                MarkMode::None,
            );
            let mut dists: Vec<f64> = sink.pairs.iter().map(|p| p.dist).collect();
            dists.sort_unstable_by(f64::total_cmp);
            assert_eq!(dists, vec![0.5, 1.0, 1.0], "dir = {:?}", setup.dir);
        }
    }

    #[test]
    fn marks_plus_compensation_cover_everything() {
        // Aggressive sweep with a small cutoff, then compensation with an
        // infinite cutoff: together they must emit the full within-cutoff
        // set of the infinite run.
        let a_pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 0.7, (i % 5) as f64)).collect();
        let b_pts: Vec<(f64, f64)> = (0..15)
            .map(|i| (i as f64 * 0.9 + 0.2, (i % 4) as f64))
            .collect();
        let la = SweepList::from_node(&leaf(&a_pts, 0), setup_fwd());
        let lb = SweepList::from_node(&leaf(&b_pts, 100), setup_fwd());

        let mut aggressive = Collect {
            axis: 1.0,
            real: f64::INFINITY,
            pairs: vec![],
        };
        let mut stats = JoinStats::default();
        let mut marks = plane_sweep(
            la.view(),
            lb.view(),
            0,
            &mut aggressive,
            &mut stats,
            MarkMode::Full,
        )
        .unwrap();

        let mut comp = Collect {
            axis: f64::INFINITY,
            real: f64::INFINITY,
            pairs: vec![],
        };
        compensation_sweep(la.view(), lb.view(), 0, &mut marks, &mut comp, &mut stats);
        assert!(marks.exhausted(la.entries.len(), lb.entries.len()));

        let total = aggressive.pairs.len() + comp.pairs.len();
        assert_eq!(total, 20 * 15, "every pair examined exactly once");
        // No duplicates between the two passes.
        let mut seen = std::collections::HashSet::new();
        for p in aggressive.pairs.iter().chain(comp.pairs.iter()) {
            let (ItemRef::Object { oid: a }, ItemRef::Object { oid: b }) = (p.a, p.b) else {
                panic!("objects expected")
            };
            assert!(seen.insert((a, b)), "duplicate pair {a},{b}");
        }
    }

    #[test]
    fn repeated_compensation_converges() {
        // Grow the cutoff stage by stage; each compensation examines only
        // the new shell.
        let a_pts: Vec<(f64, f64)> = (0..30).map(|i| (i as f64, 0.0)).collect();
        let b_pts: Vec<(f64, f64)> = (0..30).map(|i| (i as f64 + 0.3, 0.0)).collect();
        let la = SweepList::from_node(&leaf(&a_pts, 0), setup_fwd());
        let lb = SweepList::from_node(&leaf(&b_pts, 100), setup_fwd());
        let mut stats = JoinStats::default();
        let mut sink = Collect {
            axis: 1.0,
            real: f64::INFINITY,
            pairs: vec![],
        };
        let mut marks = plane_sweep(
            la.view(),
            lb.view(),
            0,
            &mut sink,
            &mut stats,
            MarkMode::Full,
        )
        .unwrap();
        let mut total = sink.pairs.len();
        for cutoff in [3.0, 9.0, f64::INFINITY] {
            let mut sink = Collect {
                axis: cutoff,
                real: f64::INFINITY,
                pairs: vec![],
            };
            compensation_sweep(la.view(), lb.view(), 0, &mut marks, &mut sink, &mut stats);
            total += sink.pairs.len();
        }
        assert_eq!(total, 30 * 30);
        assert!(marks.exhausted(30, 30));
    }

    #[test]
    fn singleton_object_list() {
        let setup = setup_fwd();
        let obj =
            SweepList::<2>::singleton_object(7, Rect::from_point(Point::new([1.0, 1.0])), setup);
        let la = SweepList::from_node(&leaf(&[(0.0, 1.0), (3.0, 1.0)], 0), setup);
        let mut sink = Collect {
            axis: 1.5,
            real: 1.5,
            pairs: vec![],
        };
        let mut stats = JoinStats::default();
        plane_sweep(
            la.view(),
            obj.view(),
            0,
            &mut sink,
            &mut stats,
            MarkMode::None,
        );
        assert_eq!(sink.pairs.len(), 1);
        assert_eq!(sink.pairs[0].dist, 1.0);
        assert_eq!(sink.pairs[0].b, ItemRef::Object { oid: 7 });
    }

    #[test]
    fn comp_queue_orders_by_key() {
        let mut stats = JoinStats::default();
        let mut q: CompQueue<2> = CompQueue::new();
        for key in [3.0, 1.0, 2.0] {
            q.push(
                CompEntry {
                    key,
                    axis: 0,
                    left: SweepList {
                        entries: vec![],
                        objects: false,
                        child_level: 0,
                    },
                    right: SweepList {
                        entries: vec![],
                        objects: false,
                        child_level: 0,
                    },
                    marks: SweepMarks::default(),
                },
                &mut stats,
            );
        }
        assert_eq!(q.peek_key(), Some(1.0));
        assert_eq!(q.pop().unwrap().key, 1.0);
        assert_eq!(q.pop().unwrap().key, 2.0);
        assert_eq!(q.pop().unwrap().key, 3.0);
        assert_eq!(stats.compq_insertions, 3);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn non_leaf_lists_produce_node_refs() {
        let node: Node<2> = Node {
            level: 2,
            entries: vec![amdj_rtree::Entry {
                mbr: Rect::new([0.0, 0.0], [1.0, 1.0]),
                child: 55,
            }],
        };
        let l = SweepList::from_node(&node, setup_fwd());
        assert!(!l.objects);
        let v = l.view();
        assert_eq!(
            v.item_ref(&v.entries[0]),
            ItemRef::Node { page: 55, level: 1 }
        );
    }

    #[test]
    fn scratch_reuses_buffers_and_parks_cleanly() {
        // Two expansions through the same scratch; the second must see
        // fresh state. Parking hands the lists off and resets the scratch.
        let a = leaf(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], 0);
        let b = leaf(&[(0.4, 0.0), (1.4, 0.0)], 100);
        let mut scratch: SweepScratch<2> = SweepScratch::new();
        let mut stats = JoinStats::default();
        scratch.expand_nodes(&a, &b, setup_fwd(), &JoinConfig::unbounded());
        let mut sink = Collect {
            axis: 0.5,
            real: f64::INFINITY,
            pairs: vec![],
        };
        scratch.sweep(&mut sink, &mut stats, MarkMode::Full);
        assert!(!scratch.marks_exhausted(), "0.5 axis cutoff must truncate");
        let entry = scratch.park(1.0);
        assert_eq!(entry.left.entries.len(), 3);
        assert_eq!(entry.right.entries.len(), 2);
        assert!(scratch.left.is_empty() && scratch.right.is_empty());

        // Scratch is immediately reusable for an unrelated expansion.
        scratch.expand_nodes(&b, &a, setup_fwd(), &JoinConfig::unbounded());
        let mut sink2 = Collect {
            axis: f64::INFINITY,
            real: f64::INFINITY,
            pairs: vec![],
        };
        scratch.sweep(&mut sink2, &mut stats, MarkMode::None);
        assert_eq!(sink2.pairs.len(), 6);

        // And the parked entry compensates through the same scratch.
        let mut entry = entry;
        let mut sink3 = Collect {
            axis: f64::INFINITY,
            real: f64::INFINITY,
            pairs: vec![],
        };
        scratch.compensate(&mut entry, &mut sink3, &mut stats);
        assert!(entry
            .marks
            .exhausted(entry.left.entries.len(), entry.right.entries.len()));
        assert_eq!(sink.pairs.len() + sink3.pairs.len(), 6);
        assert_eq!(stats.comp_replays, 1);
    }
}
