//! Checkpoint/resume on top of [`EngineSnapshot`]: cooperative pausing,
//! the resumable join entry points, and crash-consistent snapshot files.
//!
//! A resumable join runs on the work-stealing machinery of
//! [`steal`](super::steal), in *episodes*: each episode runs until either
//! the join finishes or the [`PauseCtl`] fires, at which point every
//! worker drains its queues into a [`StageOnePool`]-shaped suspension,
//! the runner merges them with the un-claimed remainder of the shared
//! pool into one canonical frontier, and the whole state becomes an
//! [`EngineSnapshot`]. A snapshot taken by an N-thread run resumes at
//! any thread count: the frontier is re-partitioned from scratch, and
//! the exactness argument (every candidate pair descends from exactly
//! one frontier pair) is partition-independent.
//!
//! Checkpoint files are written atomically — encode to `<path>.tmp`,
//! `fsync`, then rename over `<path>` — so a crash mid-write leaves
//! either the previous checkpoint or the new one, never a torn file.
//!
//! [`StageOnePool`]: super::driver::StageOnePool

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use amdj_rtree::RTree;

use crate::{AmIdjOptions, JoinConfig, JoinOutput};

use super::policy::{Aggressive, Exact};
use super::snapshot::{EngineSnapshot, SnapshotError, SnapshotKind};
use super::steal::{self, TestSchedule};

/// Cooperative pause control shared by every worker of a resumable join.
///
/// Workers call [`note_expansion`](Self::note_expansion) once per node
/// expansion or compensation replay and consult
/// [`should_pause`](Self::should_pause) at their loop tops. The signal is
/// monotone — once it fires it stays fired — so every worker observes the
/// same pause and the drained state forms one consistent cut.
#[derive(Debug, Default)]
pub struct PauseCtl {
    budget: u64,
    ticks: AtomicU64,
    stop: AtomicBool,
}

impl PauseCtl {
    /// Fires after `budget` expansions (`0` = never fires on its own —
    /// only [`request_stop`](Self::request_stop) can pause the join).
    pub fn every(budget: u64) -> Self {
        PauseCtl {
            budget,
            ticks: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// Records one unit of expansion work (a node expansion or a
    /// compensation replay) toward the pause budget.
    pub fn note_expansion(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests an immediate pause (e.g. from a signal handler's watcher
    /// thread). Monotone: cannot be un-requested.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether workers should suspend at their next loop top. Monotone
    /// once `true` (the tick counter only grows, the stop flag only
    /// sets).
    pub fn should_pause(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
            || (self.budget > 0 && self.ticks.load(Ordering::Relaxed) >= self.budget)
    }

    /// Expansions recorded so far.
    pub fn expansions(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// The outcome of one resumable episode: the finished join, or a
/// snapshot to resume from.
#[derive(Debug)]
// One `Checkpointed` moves per episode — JoinOutput's inline size is
// irrelevant next to an allocation per result row, and boxing it would
// push the indirection onto every Done caller.
#[allow(clippy::large_enum_variant)]
pub enum Checkpointed<const D: usize> {
    /// The join ran to completion.
    Done(JoinOutput),
    /// The pause fired; resume by passing the snapshot back in. The
    /// [`JoinStats`](crate::JoinStats) cover *this episode only* (work
    /// and buffer attribution since the run or resume began), so a
    /// multi-episode caller — the CLI's episode loop, a serve-mode
    /// cursor — can accumulate exact per-query totals across
    /// suspensions instead of losing the interrupted episode's counts.
    Suspended(Box<EngineSnapshot<D>>, crate::JoinStats),
}

/// Runs (or resumes) a checkpointable k-distance join on the
/// work-stealing backend. `aggressive` selects the pruning policy —
/// it must match the snapshot's when resuming. With `pause` set, the
/// join suspends into a snapshot once the control fires; with `resume`
/// set, the join continues from the snapshot's cut instead of the roots.
///
/// `threads == 1` replays the sequential join; a snapshot taken at any
/// thread count resumes at any other. The result stream of an
/// interrupted-and-resumed join is bit-identical to the uninterrupted
/// one (`tests/checkpoint_resume.rs` pins this across policies,
/// thread counts, and interrupt points).
#[allow(clippy::too_many_arguments)]
pub fn kdj_resumable<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    aggressive: bool,
    threads: usize,
    schedule: Option<TestSchedule>,
    resume: Option<EngineSnapshot<D>>,
    pause: Option<&PauseCtl>,
) -> Result<Checkpointed<D>, SnapshotError> {
    if let Some(snap) = &resume {
        match snap.kind {
            SnapshotKind::Kdj {
                k: sk,
                aggressive: sa,
            } => {
                if sk != k as u64 {
                    return Err(SnapshotError::Invalid("snapshot k differs from request"));
                }
                if sa != aggressive {
                    return Err(SnapshotError::Invalid(
                        "snapshot pruning policy differs from request",
                    ));
                }
            }
            SnapshotKind::Idj { .. } => {
                return Err(SnapshotError::Invalid(
                    "incremental-join snapshot passed to a k-distance join",
                ))
            }
        }
    }
    let threads = threads.max(1);
    Ok(if aggressive {
        steal::run_kdj_ckpt::<D, Aggressive>(
            r,
            s,
            k,
            cfg,
            &Aggressive::default(),
            threads,
            schedule,
            resume,
            pause,
            None,
        )
    } else {
        steal::run_kdj_ckpt::<D, Exact>(
            r, s, k, cfg, &Exact, threads, schedule, resume, pause, None,
        )
    })
}

/// Runs (or resumes) a checkpointable incremental join materializing its
/// first `take` pairs. Same episode/resume semantics as
/// [`kdj_resumable`]; the snapshot's `take` must match.
#[allow(clippy::too_many_arguments)]
pub fn idj_resumable<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    threads: usize,
    schedule: Option<TestSchedule>,
    resume: Option<EngineSnapshot<D>>,
    pause: Option<&PauseCtl>,
) -> Result<Checkpointed<D>, SnapshotError> {
    if let Some(snap) = &resume {
        match snap.kind {
            SnapshotKind::Idj { take: st } => {
                if st != take as u64 {
                    return Err(SnapshotError::Invalid("snapshot take differs from request"));
                }
            }
            SnapshotKind::Kdj { .. } => {
                return Err(SnapshotError::Invalid(
                    "k-distance-join snapshot passed to an incremental join",
                ))
            }
        }
    }
    let threads = threads.max(1);
    Ok(steal::run_idj_ckpt(
        r, s, take, cfg, opts, threads, schedule, resume, pause,
    ))
}

/// Writes a snapshot to `path` atomically: encode to `<path>.tmp`, sync,
/// rename over the target. A crash leaves either the old file or the new
/// one, never a torn mix.
pub fn write_checkpoint<const D: usize>(
    path: impl AsRef<Path>,
    snapshot: &EngineSnapshot<D>,
) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let bytes = snapshot.encode();
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads and validates a snapshot file. Corruption or truncation comes
/// back as a clean error naming the offending byte offset, never a
/// panic.
pub fn read_checkpoint<const D: usize>(
    path: impl AsRef<Path>,
) -> std::io::Result<Result<EngineSnapshot<D>, SnapshotError>> {
    let bytes = std::fs::read(path)?;
    Ok(EngineSnapshot::decode(&bytes))
}
