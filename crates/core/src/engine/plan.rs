//! Partitioned execution plans: STR tiling, bounds-only partition-pair
//! pruning, and per-pair engine invocations under one shared bound.
//!
//! A monolithic join is a *plan of one pair*: the whole R tree joined
//! against the whole S tree. With [`JoinConfig::partitions`] ≥ 2 the plan
//! grows: both datasets are STR-tiled into disjoint object partitions
//! (summarized as MBR + count), every partition pair is enumerated, and
//! each surviving pair runs as an *independent* engine invocation —
//! its own sub-trees, its own driver — through
//! [`ExecBackend::run_kdj_bounded`], all sharing one CAS-min
//! [`MinBound`] so a pair that finishes early tightens the cutoff of
//! every pair still to run. This is the seam sharded execution grows
//! from: a partition pair needs nothing but two self-contained trees and
//! the scalar bound.
//!
//! # The bounds-only pre-filter
//!
//! Before any point data is touched, a partition pair `(i, j)` is
//! discarded when `mindist(mbr_i, mbr_j) > eDmax` — the Equation (3)
//! estimate of the k-th join distance (or the aggressive policy's
//! override). The test reads only the partition *summaries*, never the
//! tiles' contents, which is what makes it viable across shards. The
//! estimate proves nothing, so exactness is restored the same way the
//! aggressive policy restores it inside a single driver: every pruned
//! pair is remembered as a partition-level compensation entry.
//!
//! # Replay soundness
//!
//! After all surviving pairs ran, the merged k-th result distance is a
//! *proven* bound: it is the k-th smallest of k real distances of
//! distinct object pairs (tiles are disjoint index-range chunks, so no
//! object pair lives in two partition pairs), and the k-th smallest of
//! any k real distinct-pair distances upper-bounds the global `Dmax(k)`
//! — the argument is identical to the shared-bound publication rule in
//! [`backend`](super::backend), and notably *not* circular: it holds
//! whether or not the survivors contained the true k nearest. A pruned
//! pair whose mindist exceeds that proven bound therefore cannot contain
//! a result and is conclusively discarded
//! (`partition_pairs_never_needed`); the rest are replayed ascending by
//! mindist (`partition_pairs_replayed`), each replay tightening the
//! bound further. The ledger
//! `partition_pairs_pruned == partition_pairs_replayed +
//! partition_pairs_never_needed` always balances, and the final merge is
//! bit-identical to the monolithic plan: both compute the exact global
//! top k, distances are pure functions of the object MBRs (sub-tree
//! shape never enters a distance), and both truncate in canonical
//! `(dist, r, s)` order.
//!
//! # Empty inputs and skewed tiles
//!
//! An empty dataset yields no partitions and the plan returns an empty
//! result cleanly; STR tiling chunks *index ranges* of the sorted object
//! list, so skewed data can shrink tiles but never produces an empty one
//! (empty chunks are dropped before summaries are built).
//!
//! [`JoinConfig::partitions`]: crate::JoinConfig::partitions
//! [`ExecBackend::run_kdj_bounded`]: super::backend::ExecBackend::run_kdj_bounded

use amdj_geom::Rect;
use amdj_rtree::{thread_buffer_stats, RTree};

use crate::stats::Baseline;
use crate::{Estimator, JoinConfig, JoinOutput, JoinStats, ResultPair};

use super::backend::{sort_canonical, ExecBackend};
use super::bound::MinBound;
use super::policy::PruningPolicy;

/// A bounds-only partition summary: everything the pre-filter may read.
struct Summary<const D: usize> {
    mbr: Rect<D>,
    count: u64,
}

/// One STR tile: its summary plus a self-contained sub-tree over exactly
/// the tile's objects.
struct Tile<const D: usize> {
    summary: Summary<D>,
    tree: RTree<D>,
}

/// One partition pair of the plan, keyed by the bounds-only mindist.
#[derive(Clone, Copy)]
struct PlanPair {
    ri: usize,
    si: usize,
    mindist: f64,
}

/// Runs a k-distance join as a partitioned plan (see module docs).
/// `parts` is the per-side tile target, already validated ≥ 2.
pub(crate) fn run_partitioned_kdj<const D: usize, P: PruningPolicy, B: ExecBackend>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    policy: &P,
    backend: &B,
    parts: usize,
) -> JoinOutput {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let mut results: Vec<ResultPair> = Vec::new();

    let r_tiles = str_tiles(r, parts);
    let s_tiles = str_tiles(s, parts);
    if k == 0 || r_tiles.is_empty() || s_tiles.is_empty() {
        baseline.finish(r, s, &mut stats, 0.0);
        return JoinOutput { results, stats };
    }

    // The bounds-only prune threshold: the policy's own initial eDmax
    // when it has one (the aggressive estimate, or a Figure-14 override),
    // else the Equation (3) estimate directly — the exact policy prunes
    // on qDmax alone *inside* a pair, but the partition-level pre-filter
    // still wants the estimate. Infinite when no estimate exists
    // (degenerate inputs): nothing is pruned, everything runs.
    let est = Estimator::from_trees(r, s);
    let e0 = policy.initial_edmax(est.as_ref(), k);
    let threshold = if e0.is_finite() {
        e0
    } else {
        est.as_ref().map_or(f64::INFINITY, |e| e.initial(k as u64))
    };

    // Every partition pair, ascending by bounds-only mindist (ties broken
    // by index so the plan order is deterministic).
    let mut pairs: Vec<PlanPair> = Vec::with_capacity(r_tiles.len() * s_tiles.len());
    for (ri, rt) in r_tiles.iter().enumerate() {
        for (si, st) in s_tiles.iter().enumerate() {
            pairs.push(PlanPair {
                ri,
                si,
                mindist: rt.summary.mbr.min_dist(&st.summary.mbr),
            });
        }
    }
    pairs.sort_unstable_by(|a, b| {
        a.mindist
            .total_cmp(&b.mindist)
            .then_with(|| a.ri.cmp(&b.ri))
            .then_with(|| a.si.cmp(&b.si))
    });
    stats.partition_pairs_total = pairs.len() as u64;

    // Per-pair invocations must not re-partition.
    let inner_cfg = JoinConfig {
        partitions: None,
        ..cfg.clone()
    };
    let shared = MinBound::new(f64::INFINITY);
    let run_pair = |pp: &PlanPair, results: &mut Vec<ResultPair>, stats: &mut JoinStats| {
        // The inner run's own Baseline attributes this thread's buffer
        // traffic to its stats; the outer baseline will observe the same
        // thread-local delta again at finish, so cancel one of the two.
        let (h0, m0, e0) = thread_buffer_stats();
        let out = backend.run_kdj_bounded(
            &r_tiles[pp.ri].tree,
            &s_tiles[pp.si].tree,
            k,
            &inner_cfg,
            policy,
            Some(&shared),
        );
        let (h1, m1, e1) = thread_buffer_stats();
        stats.absorb_worker(&out.stats);
        stats.buffer_hits -= h1 - h0;
        stats.buffer_misses -= m1 - m0;
        stats.buffer_evictions -= e1 - e0;
        stats.node_requests += out.stats.node_requests;
        stats.node_disk_reads += out.stats.node_disk_reads;
        stats.io_seconds += out.stats.io_seconds;
        stats.barrier_idle_ns += out.stats.barrier_idle_ns;
        stats.stages = stats.stages.max(out.stats.stages);
        results.extend(out.results);
        sort_canonical(results);
        results.truncate(k);
        if results.len() == k {
            // The merged k-th distance is the k-th smallest of k real
            // distinct-pair distances: a proven upper bound on the global
            // Dmax(k), publishable into the cross-pair bound.
            let kth = results[k - 1].dist;
            if kth.is_finite() && shared.tighten(kth) {
                stats.bound_tightenings += 1;
            }
        }
    };

    // Survivors run ascending by mindist — near pairs first, so the
    // shared bound tightens as early as possible; pruned pairs are parked
    // as partition-level compensation entries.
    let mut comps: Vec<PlanPair> = Vec::new();
    for pp in &pairs {
        if pp.mindist > threshold {
            comps.push(*pp);
        } else {
            run_pair(pp, &mut results, &mut stats);
        }
    }
    stats.partition_pairs_pruned = comps.len() as u64;

    // Compensation replay: the bound is now *proven* (or infinite, when
    // fewer than k results exist — then everything replays). `comps` is
    // ascending and the bound only tightens, so the replay loop is the
    // partition-level analogue of the aggressive policy's stage two.
    for pp in &comps {
        if pp.mindist <= shared.get() {
            stats.partition_pairs_replayed += 1;
            stats.stages = stats.stages.max(2);
            run_pair(pp, &mut results, &mut stats);
        } else {
            stats.partition_pairs_never_needed += 1;
        }
    }
    debug_assert_eq!(
        stats.partition_pairs_pruned,
        stats.partition_pairs_replayed + stats.partition_pairs_never_needed
    );

    sort_canonical(&mut results);
    results.truncate(k);
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, 0.0);
    JoinOutput { results, stats }
}

/// STR-tiles a tree's objects into roughly `target` disjoint tiles, each
/// rebuilt as a self-contained sub-tree with the parent's parameters.
/// Empty trees yield no tiles; skew shrinks tiles but never empties one.
fn str_tiles<const D: usize>(tree: &RTree<D>, target: usize) -> Vec<Tile<D>> {
    let Some(bounds) = tree.bounds() else {
        return Vec::new();
    };
    let objs: Vec<(Rect<D>, u64)> = tree
        .range_query(&bounds)
        .into_iter()
        .map(|(oid, mbr)| (mbr, oid))
        .collect();
    let mut chunks = Vec::new();
    tile_rec(objs, 0, target, &mut chunks);
    chunks.retain(|c| !c.is_empty());
    let tiles: Vec<Tile<D>> = chunks
        .into_iter()
        .map(|items| {
            let mut mbr = items[0].0;
            for (rect, _) in &items[1..] {
                mbr.union_assign(rect);
            }
            let count = items.len() as u64;
            Tile {
                summary: Summary { mbr, count },
                tree: RTree::bulk_load(tree.params().clone(), items),
            }
        })
        .collect();
    debug_assert_eq!(
        tiles.iter().map(|t| t.summary.count).sum::<u64>(),
        tree.len(),
        "STR tiling must cover every object exactly once"
    );
    tiles
}

/// Sort-Tile-Recursive over index ranges: sort by center along `dim`,
/// cut into `⌈target^(1/dims_left)⌉` equal-count slices, recurse on the
/// next dimension. Index-range chunking makes the tiles disjoint by
/// construction — no boundary duplication, whatever the geometry.
fn tile_rec<const D: usize>(
    mut objs: Vec<(Rect<D>, u64)>,
    dim: usize,
    target: usize,
    out: &mut Vec<Vec<(Rect<D>, u64)>>,
) {
    if target <= 1 || objs.len() <= 1 || dim >= D {
        out.push(objs);
        return;
    }
    let dims_left = (D - dim) as f64;
    let slices = ((target as f64).powf(1.0 / dims_left).ceil() as usize)
        .min(target)
        .clamp(1, objs.len());
    objs.sort_unstable_by(|a, b| {
        a.0.center()[dim]
            .total_cmp(&b.0.center()[dim])
            .then_with(|| a.1.cmp(&b.1))
    });
    let chunk = objs.len().div_ceil(slices);
    let sub_target = target.div_ceil(slices);
    let mut iter = objs.into_iter();
    loop {
        let items: Vec<_> = iter.by_ref().take(chunk).collect();
        if items.is_empty() {
            break;
        }
        tile_rec(items, dim + 1, sub_target, out);
    }
}
