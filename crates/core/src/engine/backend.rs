//! Execution backends: how many expansion drivers run, and how their
//! stages hand work to each other.
//!
//! [`Sequential`] runs one [`ExpansionDriver`] (or one
//! [`StageDriver`](super::stage::StageDriver)) to completion.
//! [`Parallel`] partitions the pair space across workers that share both
//! trees through `&RTree` and one global CAS-min pruning bound
//! ([`MinBound`]).
//!
//! # Exactness of the parallel backend
//!
//! Bidirectional expansion replaces a node pair by the cross product of
//! its children pairs, so every object pair descends from *exactly one*
//! pair of any frontier cut through the expansion DAG. The frontier here
//! is built by expanding node pairs with an infinite pruning cutoff
//! (nothing is dropped) until there are enough pairs to feed every
//! worker; partitioning that frontier therefore partitions the
//! object-pair space. Each worker computes the exact k nearest pairs of
//! its partition, and the global k nearest pairs — each living in exactly
//! one partition, at local rank ≤ k — all survive into the merge, which
//! sorts by `(dist, r, s)` and truncates to `k`.
//!
//! # The shared bound
//!
//! Every worker — under either policy — publishes its `qDmax` into the
//! shared [`MinBound`] whenever it tightens, and clamps its own cutoffs
//! to the shared value. The clamp is sound because each published value
//! is the k-th smallest of k *real pair distances* of distinct pairs —
//! any such value upper-bounds the global `Dmax(k)`, so a pair beyond the
//! shared bound can never be among the global k nearest. The bound is
//! monotone non-increasing (CAS-min), so a stale read is merely a
//! *larger* bound: reads can be `Relaxed` and correctness never depends
//! on timing.
//!
//! Under the aggressive policy, each worker parks its skipped-pair
//! bookkeeping in a *per-worker* compensation queue (no contention). When
//! every worker has finished its aggressive stage, the leftovers — parked
//! compensation entries and unprocessed main-queue pairs — are pooled,
//! pruned against the now-tight shared bound, redistributed by the
//! configured [`partition`](super::partition) mode,
//! and replayed by a second parallel stage whose cutoffs are exact
//! (`min(qDmax, shared)`), preserving the no-false-dismissals guarantee.
//! The stage-two workers' distance queues are pre-seeded (uncounted) with
//! the pooled k smallest stage-one distances, so their `qDmax` starts
//! tight instead of at infinity.
//!
//! # Work stealing
//!
//! [`Parallel`] has two scheduling modes, selected by
//! [`JoinConfig::steal`]. With stealing off, this module's static path
//! runs: the frontier is partitioned once (per
//! [`JoinConfig::partition`](crate::JoinConfig::partition)) and a drained
//! worker idles at the stage barrier ([`JoinStats::barrier_idle_ns`]
//! measures exactly that idle time). With stealing on (the default), the
//! [`steal`](super::steal) module keeps the frontier in per-worker deques
//! that drained workers steal from — same drivers, same shared bound,
//! same pooled compensation hand-off; only the distribution of seeds to
//! workers becomes dynamic. Results are bit-identical either way, which
//! `tests/steal_schedules.rs` pins under adversarial
//! [`TestSchedule`](super::steal::TestSchedule) perturbations. See
//! DESIGN.md §7 for the full design.
//!
//! [`JoinConfig::steal`]: crate::JoinConfig::steal
//! [`JoinStats::barrier_idle_ns`]: crate::JoinStats::barrier_idle_ns

use amdj_rtree::RTree;

use crate::stats::{Baseline, WorkerBufferSpan};
use crate::{
    AmIdjOptions, DistanceQueue, Estimator, ItemRef, JoinConfig, JoinOutput, JoinStats, Pair,
    ResultPair,
};

use super::bound::MinBound;
use super::driver::{ExpansionDriver, StageOnePool};
use super::partition::partition;
use super::policy::PruningPolicy;
use super::stage::StageDriver;
use super::steal::{self, TestSchedule};
use super::sweep::{CompEntry, MarkMode, SweepScratch, SweepSink};

/// How a join executes: one driver, or a fleet of frontier-partitioned
/// workers. Backends own thread management, work distribution between
/// stages, and stats aggregation; all join logic lives in the drivers.
pub trait ExecBackend {
    /// Runs a k-distance join under `policy`: the `k` nearest pairs in
    /// canonical `(dist, r, s)` order.
    fn run_kdj<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
    ) -> JoinOutput;

    /// Runs the incremental distance join, materializing its first `take`
    /// pairs.
    fn run_idj<const D: usize>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        take: usize,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> JoinOutput;
}

/// One driver, one thread: the paper's sequential algorithms.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequential;

impl ExecBackend for Sequential {
    fn run_kdj<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
    ) -> JoinOutput {
        let baseline = Baseline::capture(r, s);
        let est = Estimator::from_trees(r, s);
        let edmax0 = policy.initial_edmax(est.as_ref(), k);
        let mut drv = ExpansionDriver::new(r, s, cfg, k, est.as_ref(), P::AGGRESSIVE, edmax0, None);
        if k > 0 {
            drv.seed_roots();
        }
        drv.run_stage_one();
        if P::AGGRESSIVE && drv.needs_stage_two() {
            drv.stats.stages = 2;
            drv.run_stage_two();
        }
        let (results, mut stats, queue_io) = drv.finish();
        stats.results = results.len() as u64;
        baseline.finish(r, s, &mut stats, queue_io);
        JoinOutput { results, stats }
    }

    fn run_idj<const D: usize>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        take: usize,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> JoinOutput {
        let mut cursor = StageDriver::new(r, s, cfg, opts.clone());
        let mut results = Vec::with_capacity(take.min(1 << 20));
        while results.len() < take {
            let Some(pair) = cursor.next() else { break };
            results.push(pair);
        }
        let stats = cursor.stats();
        JoinOutput { results, stats }
    }
}

/// Frontier-partitioned workers sharing the CAS-min [`MinBound`], with
/// pooled compensation queues between the stages. `threads == 0` uses
/// [`std::thread::available_parallelism`]. Workers steal from each other
/// unless [`JoinConfig::steal`](crate::JoinConfig::steal) turns the
/// dynamic scheduling off.
#[derive(Clone, Copy, Debug, Default)]
pub struct Parallel {
    /// Worker count; `0` resolves to the machine's available parallelism.
    pub threads: usize,
    /// Deterministic schedule perturbation for the work-stealing path —
    /// test-only machinery; leave `None` in production use.
    pub schedule: Option<TestSchedule>,
}

impl Parallel {
    /// A backend with `threads` workers and no schedule perturbation.
    pub fn new(threads: usize) -> Self {
        Parallel {
            threads,
            schedule: None,
        }
    }
}

impl ExecBackend for Parallel {
    fn run_kdj<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
    ) -> JoinOutput {
        let threads = resolve_threads(self.threads);
        if cfg.steal {
            return steal::run_kdj::<D, P>(r, s, k, cfg, policy, threads, self.schedule);
        }
        let baseline = Baseline::capture(r, s);
        let mut stats = JoinStats {
            stages: 1,
            ..JoinStats::default()
        };
        let est = Estimator::from_trees(r, s);
        let edmax0 = policy.initial_edmax(est.as_ref(), k);
        let shared = MinBound::new(f64::INFINITY);
        let mut results = Vec::new();
        let mut queue_io = 0.0;
        if k > 0 {
            let mut frontier = seed_frontier(r, s, cfg, frontier_target(threads), &mut stats);
            // Ascending by distance, then partitioned per `cfg.partition`
            // (each share stays ascending either way).
            frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
            let seeds = partition(frontier, threads, cfg.partition);
            let est = est.as_ref();
            let shared = &shared;

            // ---- Stage one, in parallel ----
            let t0 = std::time::Instant::now();
            let outcomes = std::thread::scope(|scope| {
                let handles: Vec<_> = seeds
                    .into_iter()
                    .enumerate()
                    .filter(|(_, seed)| !seed.is_empty())
                    .map(|(w, seed)| {
                        scope.spawn(move || {
                            let span = WorkerBufferSpan::begin(w);
                            let mut out =
                                stage_one_worker::<D, P>(r, s, k, cfg, est, seed, edmax0, shared);
                            span.record(&mut out.stats);
                            (out, t0.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            });
            let finishes: Vec<u64> = outcomes.iter().map(|(_, ns)| *ns).collect();
            stats.barrier_idle_ns += barrier_idle(&finishes);
            let mut leftovers = Vec::new();
            let mut comps = Vec::new();
            let mut pool = Vec::new();
            for (outcome, _) in outcomes {
                results.extend(outcome.results);
                leftovers.extend(outcome.leftovers);
                comps.extend(outcome.comps);
                pool.extend(outcome.dists);
                stats.absorb_worker(&outcome.stats);
                queue_io += outcome.queue_io;
            }

            if P::AGGRESSIVE {
                // Pool the workers' retained distance queues: their merged
                // k-th smallest is the tightest proven bound stage one
                // produced (every retained distance is a real pair
                // distance of a distinct pair), so publish it once more
                // before pruning the pooled leftovers.
                pool.sort_unstable_by(f64::total_cmp);
                pool.truncate(k);
                if pool.len() == k {
                    let kth = pool[k - 1];
                    if kth.is_finite() && shared.tighten(kth) {
                        stats.bound_tightenings += 1;
                    }
                }
                let bound = shared.get();
                leftovers.retain(|p| p.dist <= bound);
                comps.retain(|e| e.key <= bound);

                // ---- Stage two: compensation, in parallel ----
                if !leftovers.is_empty() || !comps.is_empty() {
                    stats.stages = 2;
                    leftovers.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
                    comps.sort_unstable_by(|a, b| a.key.total_cmp(&b.key));
                    let work: Vec<_> = partition(leftovers, threads, cfg.partition)
                        .into_iter()
                        .zip(partition(comps, threads, cfg.partition))
                        .collect();
                    let pool = &pool;
                    let t0 = std::time::Instant::now();
                    let comp_outputs = std::thread::scope(|scope| {
                        let handles: Vec<_> = work
                            .into_iter()
                            .enumerate()
                            .filter(|(_, (pairs, entries))| {
                                !pairs.is_empty() || !entries.is_empty()
                            })
                            .map(|(w, work)| {
                                scope.spawn(move || {
                                    let span = WorkerBufferSpan::begin(w);
                                    let mut out =
                                        stage_two_worker(r, s, k, cfg, est, work, pool, shared);
                                    span.record(&mut out.1);
                                    (out, t0.elapsed().as_nanos() as u64)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("worker panicked"))
                            .collect::<Vec<_>>()
                    });
                    let finishes: Vec<u64> = comp_outputs.iter().map(|(_, ns)| *ns).collect();
                    stats.barrier_idle_ns += barrier_idle(&finishes);
                    for ((mut part, wstats, wio), _) in comp_outputs {
                        results.append(&mut part);
                        stats.absorb_worker(&wstats);
                        queue_io += wio;
                    }
                }
            }
            sort_canonical(&mut results);
            results.truncate(k);
        }
        stats.results = results.len() as u64;
        baseline.finish(r, s, &mut stats, queue_io);
        JoinOutput { results, stats }
    }

    fn run_idj<const D: usize>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        take: usize,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> JoinOutput {
        let threads = resolve_threads(self.threads);
        if cfg.steal {
            return steal::run_idj(r, s, take, cfg, opts, threads, self.schedule);
        }
        let baseline = Baseline::capture(r, s);
        let mut stats = JoinStats {
            stages: 1,
            ..JoinStats::default()
        };
        let shared = MinBound::new(f64::INFINITY);
        let mut results = Vec::new();
        let mut queue_io = 0.0;
        if take > 0 {
            let mut frontier = seed_frontier(r, s, cfg, frontier_target(threads), &mut stats);
            frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
            let seeds = partition(frontier, threads, cfg.partition);
            let shared = &shared;
            let t0 = std::time::Instant::now();
            let worker_outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = seeds
                    .into_iter()
                    .enumerate()
                    .filter(|(_, seed)| !seed.is_empty())
                    .map(|(w, seed)| {
                        let opts = opts.clone();
                        scope.spawn(move || {
                            let span = WorkerBufferSpan::begin(w);
                            let mut out = idj_worker(r, s, take, cfg, opts, seed, shared);
                            span.record(&mut out.1);
                            (out, t0.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            });
            let finishes: Vec<u64> = worker_outputs.iter().map(|(_, ns)| *ns).collect();
            stats.barrier_idle_ns += barrier_idle(&finishes);
            for ((mut part, wstats, wio), _) in worker_outputs {
                results.append(&mut part);
                stats.stages = stats.stages.max(wstats.stages);
                stats.absorb_worker(&wstats);
                queue_io += wio;
            }
            sort_canonical(&mut results);
            results.truncate(take);
        }
        stats.results = results.len() as u64;
        baseline.finish(r, s, &mut stats, queue_io);
        JoinOutput { results, stats }
    }
}

/// One worker's stage one: an [`ExpansionDriver`] over a frontier
/// partition, clamped to (and publishing into) the shared bound. Exact
/// workers finish their partition outright and return no pooled work.
#[allow(clippy::too_many_arguments)]
fn stage_one_worker<const D: usize, P: PruningPolicy>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    seed: Vec<Pair<D>>,
    edmax0: f64,
    shared: &MinBound,
) -> StageOnePool<D> {
    let mut drv = ExpansionDriver::new(r, s, cfg, k, est, P::AGGRESSIVE, edmax0, Some(shared));
    drv.seed_counted(seed);
    drv.run_stage_one();
    drv.into_pool(P::AGGRESSIVE)
}

/// One worker's compensation stage: replays redistributed leftovers and
/// parked entries with exact (`min(qDmax, shared)`) cutoffs, its distance
/// queue pre-seeded with the pooled stage-one distances.
#[allow(clippy::too_many_arguments)] // internal worker; mirrors stage_one_worker
fn stage_two_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    work: (Vec<Pair<D>>, Vec<CompEntry<D>>),
    pool: &[f64],
    shared: &MinBound,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let (pairs, comps) = work;
    let mut drv = ExpansionDriver::new(r, s, cfg, k, est, false, f64::INFINITY, Some(shared));
    drv.seed_replayed(pairs, comps, pool);
    drv.run_stage_two();
    drv.finish()
}

/// One worker of the parallel incremental join: a [`StageDriver`] cursor
/// over a partition, consuming until it has `take` pairs or its stream
/// provably passed the shared bound.
fn idj_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: AmIdjOptions,
    seed: Vec<Pair<D>>,
    shared: &MinBound,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let mut cursor = StageDriver::with_seeds(r, s, cfg, opts, seed, shared);
    // A worker's `take`-th smallest distance bounds the global one (its
    // emitted pairs are a candidate set), so it is publishable.
    let mut distq = DistanceQueue::new(take);
    let mut results = Vec::new();
    let mut tightenings = 0u64;
    while results.len() < take {
        // The cursor's minimum queue key lower-bounds every future
        // emission: stop before doing the work once it passes the bound.
        match cursor.peek_key() {
            Some(key) if key <= shared.get() => {}
            _ => break,
        }
        let Some(pair) = cursor.next() else { break };
        if pair.dist > shared.get() {
            // The stream is ascending; everything later is farther still.
            break;
        }
        distq.insert(pair.dist);
        let q = distq.qdmax();
        if q.is_finite() && shared.tighten(q) {
            tightenings += 1;
        }
        results.push(pair);
    }
    let (mut stats, queue_io) = cursor.finish_worker();
    stats.bound_tightenings += tightenings;
    stats.distq_insertions += distq.insertions();
    (results, stats, queue_io)
}

/// Collects every swept pair, pruning nothing — used to split frontier
/// pairs without losing any descendant.
struct CollectAll<const D: usize> {
    pairs: Vec<Pair<D>>,
}

impl<const D: usize> SweepSink<D> for CollectAll<D> {
    fn axis_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn real_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn emit(&mut self, pair: Pair<D>) {
        self.pairs.push(pair);
    }
}

/// Sum over workers of `last_finish − own_finish`: the idle time a stage
/// barrier imposed on the workers that finished early.
pub(crate) fn barrier_idle(finish_ns: &[u64]) -> u64 {
    let max = finish_ns.iter().copied().max().unwrap_or(0);
    finish_ns.iter().map(|&ns| max - ns).sum()
}

/// Expands the root pair breadth-first (coarsest node pairs first, no
/// pruning) until at least `target` pairs exist or only object pairs
/// remain.
pub(crate) fn seed_frontier<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    cfg: &JoinConfig,
    target: usize,
    stats: &mut JoinStats,
) -> Vec<Pair<D>> {
    let (Some(rb), Some(sb), Some(rp), Some(sp)) =
        (r.bounds(), s.bounds(), r.root_page(), s.root_page())
    else {
        return Vec::new();
    };
    let mut frontier = vec![Pair {
        dist: rb.min_dist(&sb),
        a: ItemRef::Node {
            page: rp.0,
            level: r.height() - 1,
        },
        b: ItemRef::Node {
            page: sp.0,
            level: s.height() - 1,
        },
        a_mbr: rb,
        b_mbr: sb,
    }];
    let mut scratch = SweepScratch::new();
    while frontier.len() < target {
        // Split the coarsest remaining node pair so the frontier stays
        // balanced; stop once only object pairs are left.
        let Some(idx) = frontier
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_result())
            .max_by_key(|(_, p)| pair_level(p))
            .map(|(i, _)| i)
        else {
            break;
        };
        let pair = frontier.swap_remove(idx);
        scratch.expand(r, s, &pair, f64::INFINITY, cfg);
        let mut sink = CollectAll { pairs: Vec::new() };
        scratch.sweep(&mut sink, stats, MarkMode::None);
        frontier.append(&mut sink.pairs);
    }
    frontier
}

fn pair_level<const D: usize>(p: &Pair<D>) -> u32 {
    let side = |i: ItemRef| match i {
        ItemRef::Node { level, .. } => level + 1,
        ItemRef::Object { .. } => 0,
    };
    side(p.a).max(side(p.b))
}

/// On one thread the frontier stays the root pair alone, so the single
/// worker replays the sequential join bit for bit (and counter for
/// counter). More threads get `4×` oversplit for balance.
fn frontier_target(threads: usize) -> usize {
    if threads == 1 {
        1
    } else {
        threads * 4
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Sorts results into the canonical `(dist, r, s)` order all parallel
/// backends merge with.
pub(crate) fn sort_canonical(results: &mut [ResultPair]) {
    results.sort_unstable_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
}
