//! Execution backends: how many expansion drivers run, and how their
//! stages hand work to each other.
//!
//! [`Sequential`] runs one [`ExpansionDriver`] (or one
//! [`StageDriver`](super::stage::StageDriver)) to completion.
//! [`Parallel`] runs the claim-round scheduler of the
//! [`steal`](super::steal) module: the frontier lives in per-worker
//! ascending deques that workers claim prefixes of, and — when
//! [`JoinConfig::steal`] is on, the default — drained workers steal the
//! tail half of a loaded peer's claimable prefix instead of idling at the
//! stage barrier. With stealing off the same scheduler runs without peer
//! probes: each worker consumes only its own statically partitioned
//! deque, `JoinStats::pairs_stolen`/`steal_attempts` stay zero, and
//! [`JoinStats::barrier_idle_ns`] measures the idle time the static
//! split imposes. Either way the path is the checkpointable one — a
//! fired [`PauseCtl`](super::checkpoint::PauseCtl) drains every worker
//! into one canonical frontier snapshot (DESIGN.md §9).
//!
//! # Exactness of the parallel backend
//!
//! Bidirectional expansion replaces a node pair by the cross product of
//! its children pairs, so every object pair descends from *exactly one*
//! pair of any frontier cut through the expansion DAG. The frontier here
//! is built by expanding node pairs with an infinite pruning cutoff
//! (nothing is dropped) until there are enough pairs to feed every
//! worker; partitioning that frontier therefore partitions the
//! object-pair space. Each worker computes the exact k nearest pairs of
//! its partition, and the global k nearest pairs — each living in exactly
//! one partition, at local rank ≤ k — all survive into the merge, which
//! sorts by `(dist, r, s)` and truncates to `k`.
//!
//! # The shared bound
//!
//! Every worker — under either policy — publishes its `qDmax` into the
//! shared [`MinBound`] whenever it tightens, and clamps its own cutoffs
//! to the shared value. The clamp is sound because each published value
//! is the k-th smallest of k *real pair distances* of distinct pairs —
//! any such value upper-bounds the global `Dmax(k)`, so a pair beyond the
//! shared bound can never be among the global k nearest. The bound is
//! monotone non-increasing (CAS-min), so a stale read is merely a
//! *larger* bound: reads can be `Relaxed` and correctness never depends
//! on timing.
//!
//! The bound can also be supplied from *outside* the run
//! ([`ExecBackend::run_kdj_bounded`]): the partitioned execution plan
//! ([`plan`](super::plan)) threads one `MinBound` through every
//! per-partition-pair engine invocation, so a pair that finishes early
//! tightens the cutoff of every pair still running. The soundness
//! argument is unchanged — published values are still k-th-of-k real
//! distinct-pair distances, now drawn from a partition of the same
//! object-pair space.
//!
//! Under the aggressive policy, each worker parks its skipped-pair
//! bookkeeping in a *per-worker* compensation queue (no contention). When
//! every worker has finished its aggressive stage, the leftovers — parked
//! compensation entries and unprocessed main-queue pairs — are pooled,
//! pruned against the now-tight shared bound, redistributed by the
//! configured [`partition`](super::partition) mode,
//! and replayed by a second parallel stage whose cutoffs are exact
//! (`min(qDmax, shared)`), preserving the no-false-dismissals guarantee.
//! The stage-two workers' distance queues are pre-seeded (uncounted) with
//! the pooled k smallest stage-one distances, so their `qDmax` starts
//! tight instead of at infinity.
//!
//! [`JoinConfig::steal`]: crate::JoinConfig::steal
//! [`JoinStats::barrier_idle_ns`]: crate::JoinStats::barrier_idle_ns

use amdj_rtree::RTree;

use crate::stats::Baseline;
use crate::{
    AmIdjOptions, Estimator, ItemRef, JoinConfig, JoinOutput, JoinStats, Pair, ResultPair,
};

use super::bound::MinBound;
use super::driver::ExpansionDriver;
use super::policy::PruningPolicy;
use super::stage::StageDriver;
use super::steal::{self, TestSchedule};
use super::sweep::{MarkMode, SweepScratch, SweepSink};

/// How a join executes: one driver, or a fleet of frontier-partitioned
/// workers. Backends own thread management, work distribution between
/// stages, and stats aggregation; all join logic lives in the drivers.
pub trait ExecBackend {
    /// Runs a k-distance join under `policy`: the `k` nearest pairs in
    /// canonical `(dist, r, s)` order.
    fn run_kdj<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
    ) -> JoinOutput {
        self.run_kdj_bounded(r, s, k, cfg, policy, None)
    }

    /// [`run_kdj`](Self::run_kdj), with the run's cutoffs clamped to (and
    /// its proven `qDmax` published into) an externally owned shared
    /// [`MinBound`]. This is the seam the partitioned execution plan
    /// (`engine::plan`) links per-partition-pair invocations through;
    /// monolithic joins pass `None` and own a private bound.
    fn run_kdj_bounded<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
        shared: Option<&MinBound>,
    ) -> JoinOutput;

    /// Runs the incremental distance join, materializing its first `take`
    /// pairs.
    fn run_idj<const D: usize>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        take: usize,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> JoinOutput;
}

/// One driver, one thread: the paper's sequential algorithms.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequential;

impl ExecBackend for Sequential {
    fn run_kdj_bounded<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
        shared: Option<&MinBound>,
    ) -> JoinOutput {
        let baseline = Baseline::capture(r, s);
        let est = Estimator::from_trees(r, s);
        let edmax0 = policy.initial_edmax(est.as_ref(), k);
        let mut drv =
            ExpansionDriver::new(r, s, cfg, k, est.as_ref(), P::AGGRESSIVE, edmax0, shared);
        if k > 0 {
            drv.seed_roots();
        }
        drv.run_stage_one();
        if P::AGGRESSIVE && drv.needs_stage_two() {
            drv.stats.stages = 2;
            drv.run_stage_two();
        }
        let (results, mut stats, queue_io) = drv.finish();
        stats.results = results.len() as u64;
        baseline.finish(r, s, &mut stats, queue_io);
        JoinOutput { results, stats }
    }

    fn run_idj<const D: usize>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        take: usize,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> JoinOutput {
        let mut cursor = StageDriver::new(r, s, cfg, opts.clone());
        let mut results = Vec::with_capacity(take.min(1 << 20));
        while results.len() < take {
            let Some(pair) = cursor.next() else { break };
            results.push(pair);
        }
        let stats = cursor.stats();
        JoinOutput { results, stats }
    }
}

/// Frontier-partitioned workers sharing the CAS-min [`MinBound`], with
/// pooled compensation queues between the stages. `threads == 0` uses
/// [`std::thread::available_parallelism`]. Workers steal from each other
/// unless [`JoinConfig::steal`](crate::JoinConfig::steal) turns the
/// dynamic scheduling off (the claim-round machinery then runs without
/// peer probes — see the module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Parallel {
    /// Worker count; `0` resolves to the machine's available parallelism.
    pub threads: usize,
    /// Deterministic schedule perturbation for the claim/steal protocol —
    /// test-only machinery; leave `None` in production use.
    pub schedule: Option<TestSchedule>,
}

impl Parallel {
    /// A backend with `threads` workers and no schedule perturbation.
    pub fn new(threads: usize) -> Self {
        Parallel {
            threads,
            schedule: None,
        }
    }
}

impl ExecBackend for Parallel {
    fn run_kdj_bounded<const D: usize, P: PruningPolicy>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        k: usize,
        cfg: &JoinConfig,
        policy: &P,
        shared: Option<&MinBound>,
    ) -> JoinOutput {
        let threads = resolve_threads(self.threads);
        steal::run_kdj::<D, P>(r, s, k, cfg, policy, threads, self.schedule, shared)
    }

    fn run_idj<const D: usize>(
        &self,
        r: &RTree<D>,
        s: &RTree<D>,
        take: usize,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> JoinOutput {
        let threads = resolve_threads(self.threads);
        steal::run_idj(r, s, take, cfg, opts, threads, self.schedule)
    }
}

/// Collects every swept pair, pruning nothing — used to split frontier
/// pairs without losing any descendant.
struct CollectAll<const D: usize> {
    pairs: Vec<Pair<D>>,
}

impl<const D: usize> SweepSink<D> for CollectAll<D> {
    fn axis_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn real_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn emit(&mut self, pair: Pair<D>) {
        self.pairs.push(pair);
    }
}

/// Sum over workers of `last_finish − own_finish`: the idle time a stage
/// barrier imposed on the workers that finished early.
pub(crate) fn barrier_idle(finish_ns: &[u64]) -> u64 {
    let max = finish_ns.iter().copied().max().unwrap_or(0);
    finish_ns.iter().map(|&ns| max - ns).sum()
}

/// Expands the root pair breadth-first (coarsest node pairs first, no
/// pruning) until at least `target` pairs exist or only object pairs
/// remain.
pub(crate) fn seed_frontier<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    cfg: &JoinConfig,
    target: usize,
    stats: &mut JoinStats,
) -> Vec<Pair<D>> {
    let (Some(rb), Some(sb), Some(rp), Some(sp)) =
        (r.bounds(), s.bounds(), r.root_page(), s.root_page())
    else {
        return Vec::new();
    };
    let mut frontier = vec![Pair {
        dist: rb.min_dist(&sb),
        a: ItemRef::Node {
            page: rp.0,
            level: r.height() - 1,
        },
        b: ItemRef::Node {
            page: sp.0,
            level: s.height() - 1,
        },
        a_mbr: rb,
        b_mbr: sb,
    }];
    let mut scratch = SweepScratch::new();
    while frontier.len() < target {
        // Split the coarsest remaining node pair so the frontier stays
        // balanced; stop once only object pairs are left.
        let Some(idx) = frontier
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_result())
            .max_by_key(|(_, p)| pair_level(p))
            .map(|(i, _)| i)
        else {
            break;
        };
        let pair = frontier.swap_remove(idx);
        scratch.expand(r, s, &pair, f64::INFINITY, cfg);
        let mut sink = CollectAll { pairs: Vec::new() };
        scratch.sweep(&mut sink, stats, MarkMode::None);
        frontier.append(&mut sink.pairs);
    }
    frontier
}

fn pair_level<const D: usize>(p: &Pair<D>) -> u32 {
    let side = |i: ItemRef| match i {
        ItemRef::Node { level, .. } => level + 1,
        ItemRef::Object { .. } => 0,
    };
    side(p.a).max(side(p.b))
}

pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Sorts results into the canonical `(dist, r, s)` order all parallel
/// backends merge with.
pub(crate) fn sort_canonical(results: &mut [ResultPair]) {
    results.sort_unstable_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
}
