use amdj_rtree::RTree;

use crate::Correction;

/// Maximum-distance estimation (§4.3), generalized to dimension `D`.
///
/// Under a uniformity assumption, the number of S-objects within distance
/// `d` of an R-object is `|S| · V_D(d) / area(R ∩ S)`, where `V_D` is the
/// volume of the `D`-ball (`π·d²` in the paper's 2-D setting). Solving for
/// `d` at `k` total pairs gives Equation (3):
///
/// ```text
/// eDmax = (k · ρ)^(1/D),   ρ = area(R ∩ S) / (c_D · |R| · |S|)
/// ```
///
/// with `c_D` the unit-ball volume. The same `ρ` parameterizes the
/// main-queue segment boundaries of §4.4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimator<const D: usize> {
    rho: f64,
}

/// Volume of the unit `D`-ball.
fn unit_ball_volume(d: usize) -> f64 {
    // V_0 = 1, V_1 = 2, V_D = V_{D-2} · 2π/D.
    match d {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(d - 2) * std::f64::consts::TAU / d as f64,
    }
}

impl<const D: usize> Estimator<D> {
    /// Builds an estimator from the joint data-space volume and the two
    /// cardinalities. `area` must be positive.
    pub fn new(area: f64, n_r: u64, n_s: u64) -> Self {
        assert!(
            area > 0.0 && n_r > 0 && n_s > 0,
            "estimator needs a non-degenerate space"
        );
        Estimator {
            rho: area / (unit_ball_volume(D) * n_r as f64 * n_s as f64),
        }
    }

    /// Derives the estimator from two built indexes, using the area of the
    /// intersection of their bounding rectangles (falling back to the
    /// union when they are disjoint or the intersection is degenerate).
    pub fn from_trees(r: &RTree<D>, s: &RTree<D>) -> Option<Self> {
        let rb = r.bounds()?;
        let sb = s.bounds()?;
        let inter = rb.intersection(&sb).map(|i| i.area()).unwrap_or(0.0);
        let area = if inter > 0.0 {
            inter
        } else {
            rb.union(&sb).area()
        };
        if area <= 0.0 {
            // Degenerate data (e.g. all objects on one point): any positive
            // placeholder keeps the math finite; estimates will be 0-ish,
            // which the multi-stage algorithms tolerate.
            return Some(Estimator {
                rho: f64::MIN_POSITIVE,
            });
        }
        Some(Estimator::new(area, r.len(), s.len()))
    }

    /// The density parameter `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Equation (3): the initial `eDmax` for a target cardinality `k`.
    pub fn initial(&self, k: u64) -> f64 {
        (k as f64 * self.rho).powf(1.0 / D as f64)
    }

    /// Equation (4) (arithmetic correction): given `k0` results obtained
    /// with the `k0`-th distance `d_k0`, the expected `k`-th distance.
    pub fn arithmetic(&self, k: u64, k0: u64, d_k0: f64) -> f64 {
        debug_assert!(k >= k0);
        (d_k0.powi(D as i32) + (k - k0) as f64 * self.rho).powf(1.0 / D as f64)
    }

    /// Equation (5) (geometric correction). Requires `d_k0 > 0` and
    /// `k0 > 0`; falls back to the arithmetic correction otherwise.
    pub fn geometric(&self, k: u64, k0: u64, d_k0: f64) -> f64 {
        if d_k0 > 0.0 && k0 > 0 {
            d_k0 * (k as f64 / k0 as f64).powf(1.0 / D as f64)
        } else {
            self.arithmetic(k, k0, d_k0)
        }
    }

    /// The correction of §4.3.2 under the chosen policy.
    pub fn corrected(&self, k: u64, k0: u64, d_k0: f64, policy: Correction) -> f64 {
        if k0 == 0 {
            return self.initial(k);
        }
        match policy {
            Correction::Arithmetic => self.arithmetic(k, k0, d_k0),
            Correction::Geometric => self.geometric(k, k0, d_k0),
            Correction::MinOfBoth => self
                .arithmetic(k, k0, d_k0)
                .min(self.geometric(k, k0, d_k0)),
            Correction::MaxOfBoth => self
                .arithmetic(k, k0, d_k0)
                .max(self.geometric(k, k0, d_k0)),
        }
    }

    /// Main-queue segment boundaries (§4.4): with an in-memory heap
    /// holding `n` elements, boundary `i` is the expected distance of the
    /// `(i·n)`-th pair, `(i·n·ρ)^(1/D)`.
    pub fn queue_boundaries(&self, heap_capacity: usize, count: usize) -> Vec<f64> {
        let n = heap_capacity.max(1) as f64;
        (1..=count)
            .map(|i| (i as f64 * n * self.rho).powf(1.0 / D as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ball_volumes() {
        assert_eq!(unit_ball_volume(1), 2.0);
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn initial_matches_paper_formula_2d() {
        // k = |R|·|S|·π·d²/A  ⇔  d = sqrt(k·ρ).
        let e: Estimator<2> = Estimator::new(100.0, 1000, 2000);
        let k = 50;
        let d = e.initial(k);
        let back = 1000.0 * 2000.0 * std::f64::consts::PI * d * d / 100.0;
        assert!(
            (back - k as f64).abs() < 1e-6,
            "round-trips Equation (3), got {back}"
        );
    }

    #[test]
    fn initial_grows_with_k() {
        let e: Estimator<2> = Estimator::new(1.0, 100, 100);
        assert!(e.initial(10) < e.initial(100));
        assert_eq!(e.initial(0), 0.0);
    }

    #[test]
    fn arithmetic_correction_consistency() {
        let e: Estimator<2> = Estimator::new(1.0, 500, 500);
        // Correcting from the model's own prediction is a fixed point.
        let d10 = e.initial(10);
        let d40 = e.initial(40);
        assert!((e.arithmetic(40, 10, d10) - d40).abs() < 1e-12);
    }

    #[test]
    fn geometric_correction_scaling() {
        let e: Estimator<2> = Estimator::new(1.0, 500, 500);
        // Quadrupling k doubles the distance in 2-D.
        assert!((e.geometric(40, 10, 0.5) - 1.0).abs() < 1e-12);
        // Zero observed distance falls back to arithmetic.
        assert_eq!(e.geometric(40, 10, 0.0), e.arithmetic(40, 10, 0.0));
    }

    #[test]
    fn corrected_policies_order() {
        let e: Estimator<2> = Estimator::new(1.0, 500, 500);
        // Observed distance above the model: geometric extrapolates higher.
        let (k, k0, d) = (100, 10, 0.9);
        let lo = e.corrected(k, k0, d, Correction::MinOfBoth);
        let hi = e.corrected(k, k0, d, Correction::MaxOfBoth);
        assert!(lo <= hi);
        assert!([e.arithmetic(k, k0, d), e.geometric(k, k0, d)].contains(&lo));
    }

    #[test]
    fn corrected_with_no_results_is_initial() {
        let e: Estimator<2> = Estimator::new(1.0, 500, 500);
        assert_eq!(
            e.corrected(100, 0, 0.0, Correction::Geometric),
            e.initial(100)
        );
    }

    #[test]
    fn boundaries_ascend() {
        let e: Estimator<2> = Estimator::new(1.0, 100, 100);
        let b = e.queue_boundaries(1000, 8);
        assert_eq!(b.len(), 8);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b[3] - (4.0 * 1000.0 * e.rho()).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_initial() {
        let e: Estimator<3> = Estimator::new(8.0, 100, 100);
        let d = e.initial(10);
        let back = 100.0 * 100.0 * unit_ball_volume(3) * d.powi(3) / 8.0;
        assert!((back - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn rejects_zero_area() {
        let _: Estimator<2> = Estimator::new(0.0, 10, 10);
    }

    use amdj_geom::{Point, Rect};
    use amdj_rtree::{RTree, RTreeParams};

    fn tree(points: &[(f64, f64)]) -> RTree<2> {
        let data = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new([x, y])), i as u64))
            .collect();
        RTree::bulk_load(RTreeParams::for_tests(), data)
    }

    #[test]
    fn from_trees_disjoint_extents_fall_back_to_union() {
        // Zero-overlap extents: ρ must come from the union area, not a
        // zero intersection (which would collapse every estimate to 0 and
        // strand the aggressive stage one with nothing to prune against).
        let r = tree(&[(0.0, 0.0), (1.0, 1.0)]);
        let s = tree(&[(10.0, 10.0), (12.0, 13.0)]);
        let e = Estimator::from_trees(&r, &s).unwrap();
        let union = 12.0 * 13.0;
        let want = union / (unit_ball_volume(2) * 4.0);
        assert!((e.rho() - want).abs() < 1e-12, "rho {} != {want}", e.rho());
        assert!(e.initial(1) > 0.0);
    }

    #[test]
    fn from_trees_coincident_points_stay_finite() {
        // Every object on one point: area 0 in both the intersection and
        // the union. ρ degrades to the smallest positive value instead of
        // 0 or NaN, and the estimates stay finite (≈ 0).
        let r = tree(&[(5.0, 5.0), (5.0, 5.0), (5.0, 5.0)]);
        let s = tree(&[(5.0, 5.0), (5.0, 5.0)]);
        let e = Estimator::from_trees(&r, &s).unwrap();
        assert_eq!(e.rho(), f64::MIN_POSITIVE);
        let d = e.initial(u64::MAX);
        assert!(d.is_finite() && d >= 0.0);
    }

    #[test]
    fn from_trees_empty_tree_is_none() {
        let empty = RTree::bulk_load(RTreeParams::for_tests(), Vec::new());
        let full = tree(&[(0.0, 0.0), (1.0, 1.0)]);
        assert!(Estimator::<2>::from_trees(&empty, &full).is_none());
        assert!(Estimator::<2>::from_trees(&full, &empty).is_none());
    }

    #[test]
    fn k_beyond_total_pairs_stays_finite_and_monotone() {
        // Joins clamp k to |R|·|S| results, but the estimator is also
        // consulted with raw k (e.g. an incremental cursor's next stage
        // target). Past the total pair count it must keep extrapolating
        // finitely and monotonically, never saturate or overflow.
        let e: Estimator<2> = Estimator::new(100.0, 10, 10);
        let total = 100u64;
        let at_total = e.initial(total);
        let beyond = e.initial(total * 1000);
        assert!(at_total.is_finite() && beyond.is_finite());
        assert!(beyond > at_total);
        let corrected = e.corrected(total * 1000, 10, e.initial(10), Correction::MinOfBoth);
        assert!(corrected.is_finite() && corrected > at_total);
    }

    #[test]
    fn corrections_with_degenerate_samples() {
        let e: Estimator<2> = Estimator::new(1.0, 500, 500);
        // k == k0: nothing left to extrapolate — every policy returns the
        // observed distance itself.
        for policy in [
            Correction::Arithmetic,
            Correction::Geometric,
            Correction::MinOfBoth,
            Correction::MaxOfBoth,
        ] {
            assert!((e.corrected(10, 10, 0.25, policy) - 0.25).abs() < 1e-12);
        }
        // d_k0 == 0 with k0 > 0 (k0 coincident pairs observed): the
        // geometric ratio is undefined, so both paths reduce to the
        // arithmetic form, which degrades gracefully to the density model
        // over the remaining k − k0 pairs.
        let want = ((10.0 - 3.0) * e.rho()).sqrt();
        assert!((e.arithmetic(10, 3, 0.0) - want).abs() < 1e-12);
        assert_eq!(e.geometric(10, 3, 0.0), e.arithmetic(10, 3, 0.0));
        assert!((e.corrected(10, 3, 0.0, Correction::MaxOfBoth) - want).abs() < 1e-12);
    }
}
