use amdj_geom::Rect;
use amdj_storage::codec::{put_f64, put_u32, put_u64, put_u8, CodecError, Reader};
use amdj_storage::SpillItem;

/// One side of a main-queue pair: an R-tree node or a data object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemRef {
    /// A tree node, identified by its page, with its level (0 = leaf).
    Node {
        /// Page id on the owning tree's disk.
        page: u64,
        /// Node level.
        level: u32,
    },
    /// A data object.
    Object {
        /// Object id (as stored in leaf entries).
        oid: u64,
    },
}

impl ItemRef {
    /// Whether this side is an object.
    #[inline]
    pub fn is_object(&self) -> bool {
        matches!(self, ItemRef::Object { .. })
    }
}

/// An element of the main queue: a ⟨left, right⟩ pair with its minimum
/// distance as priority. `a` always refers to the outer (R) tree, `b` to
/// the inner (S) tree. MBRs are carried so ⟨node, object⟩ pairs can be
/// expanded and the sweeping axis chosen without re-fetching parents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pair<const D: usize> {
    /// `dist(a, b)` — minimum distance between the MBRs.
    pub dist: f64,
    /// Left side (from R).
    pub a: ItemRef,
    /// Right side (from S).
    pub b: ItemRef,
    /// MBR of the left side.
    pub a_mbr: Rect<D>,
    /// MBR of the right side.
    pub b_mbr: Rect<D>,
}

impl<const D: usize> Pair<D> {
    /// Serialized size in bytes (fixed for a given `D`).
    pub const ENCODED_LEN: usize = 8 + 2 * 13 + 2 * 16 * D;

    /// Whether both sides are objects — i.e. this pair is a query result.
    #[inline]
    pub fn is_result(&self) -> bool {
        self.a.is_object() && self.b.is_object()
    }
}

fn encode_ref(out: &mut Vec<u8>, r: &ItemRef) {
    match r {
        ItemRef::Node { page, level } => {
            put_u8(out, 0);
            put_u64(out, *page);
            put_u32(out, *level);
        }
        ItemRef::Object { oid } => {
            put_u8(out, 1);
            put_u64(out, *oid);
            put_u32(out, 0);
        }
    }
}

fn try_decode_ref(r: &mut Reader<'_>) -> Result<ItemRef, CodecError> {
    let at = r.position();
    let tag = r.try_u8("pair ref tag")?;
    let id = r.try_u64("pair ref id")?;
    let level = r.try_u32("pair ref level")?;
    match tag {
        0 => Ok(ItemRef::Node { page: id, level }),
        1 => Ok(ItemRef::Object { oid: id }),
        _ => Err(CodecError {
            offset: at,
            expected: "pair ref tag 0 or 1",
        }),
    }
}

fn encode_rect<const D: usize>(out: &mut Vec<u8>, rect: &Rect<D>) {
    for d in 0..D {
        put_f64(out, rect.lo()[d]);
    }
    for d in 0..D {
        put_f64(out, rect.hi()[d]);
    }
}

fn try_decode_rect<const D: usize>(r: &mut Reader<'_>) -> Result<Rect<D>, CodecError> {
    let start = r.position();
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for slot in lo.iter_mut() {
        *slot = r.try_f64("rect lo coordinate")?;
    }
    for slot in hi.iter_mut() {
        *slot = r.try_f64("rect hi coordinate")?;
    }
    // Rect::new panics on inverted or non-finite bounds; corrupt bytes
    // must surface as a decode error instead.
    if (0..D).any(|d| !lo[d].is_finite() || !hi[d].is_finite() || lo[d] > hi[d]) {
        return Err(CodecError {
            offset: start,
            expected: "well-formed rect bounds",
        });
    }
    Ok(Rect::new(lo, hi))
}

impl<const D: usize> SpillItem for Pair<D> {
    fn key(&self) -> f64 {
        self.dist
    }

    fn encoded_len(&self) -> usize {
        Self::ENCODED_LEN
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.dist);
        encode_ref(out, &self.a);
        encode_ref(out, &self.b);
        encode_rect(out, &self.a_mbr);
        encode_rect(out, &self.b_mbr);
    }

    fn try_decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let dist = r.try_f64("pair dist")?;
        let a = try_decode_ref(r)?;
        let b = try_decode_ref(r)?;
        let a_mbr = try_decode_rect(r)?;
        let b_mbr = try_decode_rect(r)?;
        Ok(Pair {
            dist,
            a,
            b,
            a_mbr,
            b_mbr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pair<2> {
        Pair {
            dist: 3.25,
            a: ItemRef::Node { page: 17, level: 2 },
            b: ItemRef::Object { oid: u64::MAX },
            a_mbr: Rect::new([0.0, 1.0], [2.0, 3.0]),
            b_mbr: Rect::new([5.0, 5.0], [5.0, 5.0]),
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), p.encoded_len());
        let mut r = Reader::new(&buf);
        assert_eq!(Pair::<2>::decode(&mut r), p);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn key_is_distance() {
        assert_eq!(sample().key(), 3.25);
    }

    #[test]
    fn result_detection() {
        let mut p = sample();
        assert!(!p.is_result());
        p.a = ItemRef::Object { oid: 1 };
        assert!(p.is_result());
        assert!(p.a.is_object());
    }

    #[test]
    fn try_decode_rejects_bad_tag_and_truncation() {
        let p = sample();
        let mut buf = Vec::new();
        p.encode(&mut buf);
        buf[8] = 9; // first ref tag
        let err = Pair::<2>::try_decode(&mut Reader::new(&buf)).unwrap_err();
        assert_eq!(err.offset, 8);
        assert_eq!(err.expected, "pair ref tag 0 or 1");
        let mut short = Vec::new();
        p.encode(&mut short);
        short.truncate(short.len() - 1);
        assert!(Pair::<2>::try_decode(&mut Reader::new(&short)).is_err());
    }

    #[test]
    fn object_object_roundtrip() {
        let p = Pair::<2> {
            dist: 0.0,
            a: ItemRef::Object { oid: 1 },
            b: ItemRef::Object { oid: 2 },
            a_mbr: Rect::new([0.0, 0.0], [0.0, 0.0]),
            b_mbr: Rect::new([0.0, 0.0], [0.0, 0.0]),
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(Pair::<2>::decode(&mut r), p);
    }
}
