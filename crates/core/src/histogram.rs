//! Histogram-based `eDmax` estimation for **non-uniform** data — the
//! extension the paper names as future work in §6 ("we plan to develop
//! new strategies for estimating the maximum distances … for non-uniform
//! data sets").
//!
//! Equation (3) assumes uniformity and therefore *overestimates* `eDmax`
//! on skewed data (§4.3): most close pairs live in dense regions the
//! global density cannot see. [`HistogramEstimator`] replaces the global
//! density with a grid histogram of both data sets: the expected number
//! of pairs within distance `d` is accumulated per cell pair via a
//! separable per-axis probability model, and `eDmax` for a target `k` is
//! recovered by bisection over the monotone estimate.

use amdj_geom::sweep_index::axis_within_probability;
use amdj_geom::Rect;

/// Volume of the unit `D`-ball divided by the unit `D`-cube of side 2 —
/// the L∞→L2 correction factor (π/4 in 2-D).
fn ball_box_ratio(d: usize) -> f64 {
    fn ball(d: usize) -> f64 {
        match d {
            0 => 1.0,
            1 => 2.0,
            _ => ball(d - 2) * std::f64::consts::TAU / d as f64,
        }
    }
    ball(d) / 2f64.powi(d as i32)
}

/// A grid-histogram pair-count model over two data sets.
///
/// ```
/// use amdj_core::HistogramEstimator;
/// use amdj_geom::{Point, Rect};
///
/// // A dense clump near the origin plus sparse outliers.
/// let data: Vec<(Rect<2>, u64)> = (0..100)
///     .map(|i| {
///         let (x, y) = if i < 90 {
///             (0.001 * i as f64, 0.002 * i as f64)
///         } else {
///             (i as f64, i as f64)
///         };
///         (Rect::from_point(Point::new([x, y])), i)
///     })
///     .collect();
/// let h = HistogramEstimator::from_items(&data, &data, 16);
/// // The 1000 closest pairs live inside the clump: the estimate must be
/// // cell-sized (resolution-limited), not universe-sized — a uniform
/// // model (Equation 3) would answer ≈ 17 here.
/// assert!(h.edmax(1000) < 2.0);
/// ```
///
/// The grid has `grid^D` cells over the union of both data sets' bounds.
/// Build cost is one pass over each data set; estimation cost is one pass
/// over cell pairs within the probe distance (windowed, so small probes
/// are cheap).
#[derive(Clone, Debug)]
pub struct HistogramEstimator<const D: usize> {
    bounds: Rect<D>,
    grid: usize,
    counts_r: Vec<f64>,
    counts_s: Vec<f64>,
    diag: f64,
}

impl<const D: usize> HistogramEstimator<D> {
    /// Builds the histogram from the two raw data sets with `grid` cells
    /// per dimension. Objects are counted by MBR center.
    ///
    /// Panics if either set is empty or `grid == 0`.
    pub fn from_items(r: &[(Rect<D>, u64)], s: &[(Rect<D>, u64)], grid: usize) -> Self {
        assert!(grid > 0, "grid must be positive");
        assert!(
            !r.is_empty() && !s.is_empty(),
            "histogram needs non-empty inputs"
        );
        let mut bounds = r[0].0;
        for (mbr, _) in r.iter().chain(s.iter()) {
            bounds.union_assign(mbr);
        }
        let cells = grid.pow(D as u32);
        let mut h = HistogramEstimator {
            bounds,
            grid,
            counts_r: vec![0.0; cells],
            counts_s: vec![0.0; cells],
            diag: {
                let mut acc = 0.0;
                for d in 0..D {
                    acc += bounds.side(d) * bounds.side(d);
                }
                acc.sqrt()
            },
        };
        for (mbr, _) in r {
            let idx = h.cell_of(mbr);
            h.counts_r[idx] += 1.0;
        }
        for (mbr, _) in s {
            let idx = h.cell_of(mbr);
            h.counts_s[idx] += 1.0;
        }
        h
    }

    fn cell_of(&self, mbr: &Rect<D>) -> usize {
        let c = mbr.center();
        let mut idx = 0;
        for d in 0..D {
            let side = self.bounds.side(d);
            let frac = if side > 0.0 {
                (c[d] - self.bounds.lo()[d]) / side
            } else {
                0.0
            };
            let coord = ((frac * self.grid as f64) as usize).min(self.grid - 1);
            idx = idx * self.grid + coord;
        }
        idx
    }

    fn cell_rect(&self, mut idx: usize) -> Rect<D> {
        let mut coords = [0usize; D];
        for d in (0..D).rev() {
            coords[d] = idx % self.grid;
            idx /= self.grid;
        }
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            let side = self.bounds.side(d) / self.grid as f64;
            lo[d] = self.bounds.lo()[d] + coords[d] as f64 * side;
            hi[d] = lo[d] + side;
        }
        Rect::new(lo, hi)
    }

    /// Expected number of ⟨R, S⟩ pairs within distance `d`, assuming
    /// objects are uniform within their cells.
    ///
    /// Per cell pair the probability that |u − v| ≤ d is modeled
    /// separably: the exact per-axis probability (an L∞ ball) blended
    /// with the L2/L∞ volume ratio — exact in the limits d → 0 (up to
    /// the ball/box factor) and d → ∞, monotone and continuous in
    /// between, which is all the bisection needs.
    pub fn expected_pairs_within(&self, d: f64) -> f64 {
        let bb = ball_box_ratio(D);
        let mut total = 0.0;
        for (i, &cr) in self.counts_r.iter().enumerate() {
            if cr == 0.0 {
                continue;
            }
            let ri = self.cell_rect(i);
            for (j, &cs) in self.counts_s.iter().enumerate() {
                if cs == 0.0 {
                    continue;
                }
                let rj = self.cell_rect(j);
                if ri.min_dist(&rj) > d {
                    continue;
                }
                let mut linf = 1.0;
                for dim in 0..D {
                    linf *= axis_within_probability(
                        ri.lo()[dim],
                        ri.hi()[dim],
                        rj.lo()[dim],
                        rj.hi()[dim],
                        d,
                    );
                    if linf == 0.0 {
                        break;
                    }
                }
                // Blend: at small coverage the L2 ball is ~bb of the L∞
                // box; at full coverage both reach 1.
                let f = linf * (bb + (1.0 - bb) * linf);
                total += cr * cs * f;
            }
        }
        total
    }

    /// The estimated `eDmax` for a target cardinality `k`: the smallest
    /// distance whose expected pair count reaches `k`, by bisection.
    pub fn edmax(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let target = k as f64;
        let (mut lo, mut hi) = (0.0, self.diag);
        if self.expected_pairs_within(hi) < target {
            return hi;
        }
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if self.expected_pairs_within(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::Estimator;
    use amdj_geom::Point;

    fn points(coords: impl Iterator<Item = (f64, f64)>) -> Vec<(Rect<2>, u64)> {
        coords
            .enumerate()
            .map(|(i, (x, y))| (Rect::from_point(Point::new([x, y])), i as u64))
            .collect()
    }

    fn pseudo_uniform(n: usize, seed: u64) -> Vec<(Rect<2>, u64)> {
        points((0..n).map(move |i| {
            let a = ((i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed)
                >> 11) as f64
                / (1u64 << 53) as f64;
            let b = ((i as u64)
                .wrapping_mul(2862933555777941757)
                .wrapping_add(seed ^ 7)
                >> 11) as f64
                / (1u64 << 53) as f64;
            (a, b)
        }))
    }

    fn two_clusters(n: usize) -> Vec<(Rect<2>, u64)> {
        // Dense cluster near the origin, sparse elsewhere.
        points((0..n).map(move |i| {
            if i % 10 != 0 {
                (0.01 * (i % 37) as f64 / 37.0, 0.01 * (i % 41) as f64 / 41.0)
            } else {
                ((i % 29) as f64 / 29.0, (i % 31) as f64 / 31.0)
            }
        }))
    }

    #[test]
    fn monotone_in_distance() {
        let r = pseudo_uniform(300, 1);
        let s = pseudo_uniform(300, 2);
        let h = HistogramEstimator::from_items(&r, &s, 8);
        let mut prev = -1.0;
        for step in 0..20 {
            let d = step as f64 * 0.05;
            let e = h.expected_pairs_within(d);
            assert!(e >= prev, "estimate must be monotone");
            prev = e;
        }
        // Full diagonal covers every pair.
        assert!((h.expected_pairs_within(2.0) - (300.0 * 300.0)).abs() < 1e-6);
    }

    #[test]
    fn edmax_bisection_is_consistent() {
        let r = pseudo_uniform(400, 3);
        let s = pseudo_uniform(400, 4);
        let h = HistogramEstimator::from_items(&r, &s, 10);
        for k in [10u64, 1_000, 50_000] {
            let d = h.edmax(k);
            let e = h.expected_pairs_within(d);
            assert!(e >= k as f64 * 0.99, "k={k}: estimate at edmax = {e}");
        }
        assert_eq!(h.edmax(0), 0.0);
    }

    #[test]
    fn agrees_with_eq3_on_uniform_data() {
        let r = pseudo_uniform(800, 5);
        let s = pseudo_uniform(800, 6);
        let h = HistogramEstimator::from_items(&r, &s, 12);
        let e: Estimator<2> = Estimator::new(1.0, 800, 800);
        let k = 2_000;
        let ratio = h.edmax(k) / e.initial(k);
        assert!(
            (0.4..2.5).contains(&ratio),
            "uniform data: histogram ({}) and Eq. 3 ({}) should roughly agree",
            h.edmax(k),
            e.initial(k)
        );
    }

    #[test]
    fn beats_eq3_on_skewed_data() {
        // The §6 motivation: on skewed data Eq. 3 overestimates badly; the
        // histogram must land much closer to the true Dmax.
        let r = two_clusters(600);
        let s = two_clusters(600);
        let k = 5_000;
        let truth = bruteforce::dmax_for_k(&r, &s, k).unwrap();
        let h = HistogramEstimator::from_items(&r, &s, 16);
        let eq3: Estimator<2> = Estimator::new(1.0, 600, 600);
        let hist_err = (h.edmax(k as u64) / truth).max(truth / h.edmax(k as u64));
        let eq3_err = (eq3.initial(k as u64) / truth).max(truth / eq3.initial(k as u64));
        assert!(
            hist_err < eq3_err,
            "histogram off by {hist_err:.2}×, Eq. 3 off by {eq3_err:.2}× (truth {truth:.4})"
        );
        assert!(
            eq3_err > 2.0,
            "the skew must actually break Eq. 3 (off by {eq3_err:.2}×)"
        );
    }

    #[test]
    fn usable_as_amkdj_override() {
        use crate::{am_kdj, AmKdjOptions, JoinConfig};
        use amdj_rtree::{RTree, RTreeParams};
        let a = two_clusters(400);
        let b = two_clusters(400);
        let k = 500;
        let h = HistogramEstimator::from_items(&a, &b, 16);
        let r = RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let opts = AmKdjOptions {
            edmax_override: Some(h.edmax(k as u64)),
        };
        let out = am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts);
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        for (g, w) in out.results.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
        // And it should do no more work than the default (overestimating)
        // Eq. 3 run on this skewed workload.
        let default = am_kdj(
            &r,
            &s,
            k,
            &JoinConfig::unbounded(),
            &AmKdjOptions::default(),
        );
        assert!(
            out.stats.mainq_insertions <= default.stats.mainq_insertions,
            "histogram {} vs Eq. 3 {}",
            out.stats.mainq_insertions,
            default.stats.mainq_insertions
        );
    }

    #[test]
    fn three_dimensional_histogram() {
        let r: Vec<(Rect<3>, u64)> = (0..200)
            .map(|i| {
                let f = i as f64;
                (
                    Rect::from_point(Point::new([f % 5.0, (f / 5.0) % 5.0, f / 25.0])),
                    i as u64,
                )
            })
            .collect();
        let h = HistogramEstimator::from_items(&r, &r, 4);
        assert!(h.edmax(100) > 0.0);
        assert!(h.expected_pairs_within(100.0) >= (200.0 * 200.0) - 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_input() {
        let r: Vec<(Rect<2>, u64)> = vec![];
        let _ = HistogramEstimator::from_items(&r, &r.clone(), 4);
    }
}
