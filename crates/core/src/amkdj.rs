//! AM-KDJ (§4.1, Algorithms 2 and 3): the adaptive multi-stage k-distance
//! join. Stage one prunes *aggressively* on an estimated maximum distance
//! `eDmax`; every skipped child pair is recoverable through per-anchor
//! marks kept with the pair in the compensation queue, so stage two can
//! finish the join exactly if the estimate was too small.
//!
//! One erratum is handled (see DESIGN.md): Algorithm 2 line 9 terminates
//! stage one when the dequeued distance is *smaller* than `eDmax`, and
//! emits object pairs before that check. Taken literally, both break the
//! algorithm (the first dequeued pairs are the closest, and an emitted
//! object pair beyond `eDmax` may be preceded by pruned pairs). We
//! terminate when the dequeued distance *exceeds* `eDmax`, checking before
//! emission — the reading consistent with §4.1's condition (3) and §5.6.
//!
//! Adapter over the unified engine: AM-KDJ is the [`Aggressive`] pruning
//! policy on the [`Sequential`] backend.

use crate::engine::{self, Aggressive, Sequential};
use crate::{AmKdjOptions, JoinConfig, JoinOutput};
use amdj_rtree::RTree;

/// The AM-KDJ k-distance join. `opts.edmax_override` replaces the
/// Equation (3) estimate (Figure 14's sweep).
///
/// ```
/// use amdj_core::{am_kdj, AmKdjOptions, JoinConfig};
/// use amdj_geom::{Point, Rect};
/// use amdj_rtree::{RTree, RTreeParams};
///
/// let pts = |off: f64| -> Vec<(Rect<2>, u64)> {
///     (0..64).map(|i| {
///         let p = Point::new([(i % 8) as f64 + off, (i / 8) as f64]);
///         (Rect::from_point(p), i)
///     }).collect()
/// };
/// let mut r = RTree::bulk_load(RTreeParams::for_tests(), pts(0.0));
/// let mut s = RTree::bulk_load(RTreeParams::for_tests(), pts(0.25));
/// let out = am_kdj(&r, &s, 5, &JoinConfig::unbounded(), &AmKdjOptions::default());
/// assert_eq!(out.results.len(), 5);
/// assert!(out.results.iter().all(|p| p.dist == 0.25));
/// ```
pub fn am_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    opts: &AmKdjOptions,
) -> JoinOutput {
    let policy = Aggressive {
        edmax_override: opts.edmax_override,
    };
    engine::kdj(r, s, k, cfg, &policy, &Sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{b_kdj, bruteforce};
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    fn trees(
        a: &[(Rect<2>, u64)],
        b: &[(Rect<2>, u64)],
    ) -> (amdj_rtree::RTree<2>, amdj_rtree::RTree<2>) {
        (
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
        )
    }

    fn check(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)], k: usize, opts: &AmKdjOptions) {
        let (r, s) = trees(a, b);
        let out = am_kdj(&r, &s, k, &JoinConfig::unbounded(), opts);
        let want = bruteforce::k_closest_pairs(a, b, k);
        assert_eq!(out.results.len(), want.len());
        for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.dist - exp.dist).abs() < 1e-9,
                "rank {i}: got {} want {} (opts {opts:?})",
                got.dist,
                exp.dist
            );
        }
        assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn matches_brute_force_with_estimated_edmax() {
        let a = grid(13, 0.0, 0.0);
        let b = grid(13, 0.29, 0.37);
        for k in [1, 10, 100, 250] {
            check(&a, &b, k, &AmKdjOptions::default());
        }
    }

    #[test]
    fn underestimated_edmax_compensates_correctly() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.31, 0.17);
        let true_dmax = bruteforce::dmax_for_k(&a, &b, 100).unwrap();
        for factor in [0.01, 0.1, 0.5, 0.9] {
            check(
                &a,
                &b,
                100,
                &AmKdjOptions {
                    edmax_override: Some(true_dmax * factor),
                },
            );
        }
    }

    #[test]
    fn overestimated_edmax_still_exact() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.31, 0.17);
        let true_dmax = bruteforce::dmax_for_k(&a, &b, 100).unwrap();
        for factor in [1.0, 2.0, 10.0] {
            check(
                &a,
                &b,
                100,
                &AmKdjOptions {
                    edmax_override: Some(true_dmax * factor),
                },
            );
        }
    }

    #[test]
    fn zero_edmax_forces_full_compensation() {
        let a = grid(9, 0.0, 0.0);
        let b = grid(9, 0.4, 0.4);
        check(
            &a,
            &b,
            30,
            &AmKdjOptions {
                edmax_override: Some(0.0),
            },
        );
    }

    #[test]
    fn compensation_stage_is_recorded() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.3, 0.3);
        let (r, s) = trees(&a, &b);
        let dmax = bruteforce::dmax_for_k(&a, &b, 80).unwrap();
        let out = am_kdj(
            &r,
            &s,
            80,
            &JoinConfig::unbounded(),
            &AmKdjOptions {
                edmax_override: Some(dmax * 0.2),
            },
        );
        assert_eq!(
            out.stats.stages, 2,
            "underestimate must trigger compensation"
        );
        assert_eq!(out.results.len(), 80);
    }

    #[test]
    fn no_worse_than_bkdj_when_overestimated() {
        // §5.6: with eDmax ≥ Dmax, AM-KDJ needs no more distance
        // computations or queue insertions than B-KDJ.
        let a = grid(15, 0.0, 0.0);
        let b = grid(15, 0.23, 0.41);
        let (r, s) = trees(&a, &b);
        let k = 50;
        let dmax = bruteforce::dmax_for_k(&a, &b, k).unwrap();
        let am = am_kdj(
            &r,
            &s,
            k,
            &JoinConfig::unbounded(),
            &AmKdjOptions {
                edmax_override: Some(dmax * 1.5),
            },
        );
        let bk = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        assert!(am.stats.real_dist <= bk.stats.real_dist);
        assert!(am.stats.mainq_insertions <= bk.stats.mainq_insertions);
    }

    #[test]
    fn tight_memory_budget_still_exact() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.37, 0.21);
        let mut cfg = JoinConfig::with_queue_memory(4096);
        cfg.queue_cost.page_size = 1024;
        let (r, s) = trees(&a, &b);
        let out = am_kdj(&r, &s, 150, &cfg, &AmKdjOptions::default());
        let want = bruteforce::k_closest_pairs(&a, &b, 150);
        for (got, exp) in out.results.iter().zip(want.iter()) {
            assert!((got.dist - exp.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_tree_gives_empty_result() {
        let r: amdj_rtree::RTree<2> = amdj_rtree::RTree::new(RTreeParams::for_tests());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), grid(3, 0.0, 0.0));
        let out = am_kdj(
            &r,
            &s,
            5,
            &JoinConfig::unbounded(),
            &AmKdjOptions::default(),
        );
        assert!(out.results.is_empty());
    }
}
