//! The k-nearest-neighbours join: for *every* object of R, its `k`
//! closest objects of S. This is the other join of the distance-join
//! family (the paper's related-work §2.2 cites the multi-step k-NN work
//! it builds on); it completes the crate's coverage of distance-based
//! join operations.
//!
//! The implementation runs one best-first (Hjaltason–Samet) k-NN search
//! per R-object against the S index. With a warm node buffer and R
//! iterated in index order (so consecutive queries touch the same S
//! subtrees), this is a strong baseline; block-based variants would share
//! more work but change no results.

use amdj_rtree::RTree;
use amdj_storage::PageId;

use crate::stats::Baseline;
use crate::{JoinStats, ResultPair};

/// Result of a [`knn_join`]: for each R-object (in index order), its `k`
/// nearest S-objects ascending by distance.
#[derive(Clone, Debug)]
pub struct KnnJoinOutput {
    /// One entry per R-object: `(r_id, neighbours)`.
    pub groups: Vec<(u64, Vec<ResultPair>)>,
    /// Work counters (node accesses cover both trees; `results` counts
    /// every emitted neighbour pair).
    pub stats: JoinStats,
}

/// For every object in `r`, finds its `k` nearest objects in `s`.
///
/// ```
/// use amdj_core::knn_join;
/// use amdj_geom::{Point, Rect};
/// use amdj_rtree::{RTree, RTreeParams};
///
/// let pts = |off: f64| -> Vec<(Rect<2>, u64)> {
///     (0..25).map(|i| {
///         let p = Point::new([(i % 5) as f64 + off, (i / 5) as f64]);
///         (Rect::from_point(p), i)
///     }).collect()
/// };
/// let mut r = RTree::bulk_load(RTreeParams::for_tests(), pts(0.0));
/// let mut s = RTree::bulk_load(RTreeParams::for_tests(), pts(0.1));
/// let out = knn_join(&r, &s, 2);
/// assert_eq!(out.groups.len(), 25);
/// for (rid, nn) in &out.groups {
///     assert_eq!(nn[0].s, *rid, "the shifted twin is the nearest");
/// }
/// ```
pub fn knn_join<const D: usize>(r: &RTree<D>, s: &RTree<D>, k: usize) -> KnnJoinOutput {
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let mut groups = Vec::with_capacity(r.len() as usize);
    if k > 0 && !r.is_empty() && !s.is_empty() {
        // Walk R's leaves in index order for S-buffer locality.
        let mut stack = vec![r.root_page().expect("non-empty")];
        let mut leaves: Vec<(u64, amdj_geom::Rect<D>)> = Vec::new();
        while let Some(pid) = stack.pop() {
            let node = r.fetch(pid);
            if node.is_leaf() {
                for e in &node.entries {
                    leaves.push((e.child, e.mbr));
                }
            } else {
                for e in &node.entries {
                    stack.push(PageId(e.child));
                }
            }
        }
        for (rid, mbr) in leaves {
            let neighbors = s.nearest_neighbors_rect(&mbr, k);
            let pairs: Vec<ResultPair> = neighbors
                .into_iter()
                .map(|n| {
                    stats.real_dist += 1;
                    ResultPair {
                        r: rid,
                        s: n.oid,
                        dist: n.dist,
                    }
                })
                .collect();
            stats.results += pairs.len() as u64;
            groups.push((rid, pairs));
        }
        groups.sort_by_key(|&(rid, _)| rid);
    }
    baseline.finish(r, s, &mut stats, 0.0);
    KnnJoinOutput { groups, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    #[test]
    fn every_object_gets_its_neighbours() {
        let a = grid(8, 0.0, 0.0);
        let b = grid(8, 0.3, 0.4);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let k = 3;
        let out = knn_join(&r, &s, k);
        assert_eq!(out.groups.len(), 64);
        assert_eq!(out.stats.results, 64 * 3);
        for (rid, pairs) in &out.groups {
            assert_eq!(pairs.len(), k);
            assert!(pairs.windows(2).all(|w| w[0].dist <= w[1].dist));
            // Verify against a scan (point objects: center distance ==
            // MBR distance).
            let rm = a[*rid as usize].0;
            let mut want: Vec<f64> = b.iter().map(|(sm, _)| rm.min_dist(sm)).collect();
            want.sort_unstable_by(f64::total_cmp);
            for (p, w) in pairs.iter().zip(want.iter()) {
                assert!((p.dist - w).abs() < 1e-9, "r = {rid}");
            }
        }
    }

    #[test]
    fn groups_are_in_r_id_order() {
        let a = grid(5, 0.0, 0.0);
        let b = grid(5, 0.1, 0.1);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a);
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b);
        let out = knn_join(&r, &s, 1);
        let ids: Vec<u64> = out.groups.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..25).collect::<Vec<u64>>());
    }

    #[test]
    fn k_exceeding_s_size() {
        let a = grid(3, 0.0, 0.0);
        let b = grid(2, 0.5, 0.5);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a);
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b);
        let out = knn_join(&r, &s, 10);
        for (_, pairs) in &out.groups {
            assert_eq!(pairs.len(), 4, "only 4 S-objects exist");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty: amdj_rtree::RTree<2> = amdj_rtree::RTree::new(RTreeParams::for_tests());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), grid(3, 0.0, 0.0));
        assert!(knn_join(&empty, &s, 3).groups.is_empty());
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), grid(3, 0.0, 0.0));
        assert!(knn_join(&r, &s, 0).groups.is_empty());
    }
}
