//! Admission control for concurrent serve-mode queries.
//!
//! Every executing query charges its [`JoinConfig::queue_mem_bytes`]
//! budget against one shared serve-wide memory budget — the same unit
//! the paper's main queue is bounded by, so "how many queries fit" is
//! answered by the knob that already exists. Requests that do not fit
//! wait in a bounded FIFO line; when the line is full they are rejected
//! outright with a structured error (load shedding, not queueing
//! collapse).
//!
//! The decision logic lives in [`AdmissionCore`], a pure deterministic
//! state machine with no clocks or threads — the admission proptest
//! (`tests/serve_admission.rs`) drives it through random
//! admit/complete sequences and checks the budget, liveness, and
//! FIFO invariants on the model alone. [`Admission`] wraps the core in
//! a mutex + condvar for the real server, measuring each query's queue
//! wait.
//!
//! [`JoinConfig::queue_mem_bytes`]: crate::JoinConfig::queue_mem_bytes

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A granted admission's identity, used to match condvar wakeups to
/// waiters. Monotone per [`AdmissionCore`].
pub type Ticket = u64;

/// The outcome of an admission request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admit {
    /// The query fits now; it may start immediately.
    Admitted(Ticket),
    /// The budget is full but the waiting line has room; the ticket is
    /// granted in FIFO order by a later [`AdmissionCore::complete`].
    Queued(Ticket),
    /// The waiting line is full (or the query could never fit the
    /// budget at all); the caller must give up.
    Rejected,
}

/// The deterministic admission state machine: a byte budget, the bytes
/// charged by running queries, and a bounded FIFO of waiting requests.
///
/// Invariants (pinned by `tests/serve_admission.rs`):
///
/// * `in_use ≤ budget` after every transition;
/// * grants are strictly FIFO — a waiter is never overtaken by a
///   later-queued waiter;
/// * every queued request is eventually granted once enough completions
///   occur (no deadlock, no lost wakeup at the model level).
#[derive(Debug)]
pub struct AdmissionCore {
    budget: u64,
    in_use: u64,
    max_waiting: usize,
    waiting: VecDeque<(Ticket, u64)>,
    next_ticket: Ticket,
    rejections: u64,
}

impl AdmissionCore {
    /// A controller over `budget` bytes with at most `max_waiting`
    /// requests allowed to wait.
    pub fn new(budget: u64, max_waiting: usize) -> Self {
        AdmissionCore {
            budget,
            in_use: 0,
            max_waiting,
            waiting: VecDeque::new(),
            next_ticket: 0,
            rejections: 0,
        }
    }

    /// Requests admission for a query charging `cost` bytes.
    ///
    /// A `cost` larger than the whole budget is rejected immediately —
    /// it could never be granted, and queueing it would deadlock the
    /// line behind it. Queries are otherwise admitted when they fit
    /// *and* no earlier request is still waiting (FIFO — a small query
    /// must not overtake a large one, or the large one starves).
    pub fn request(&mut self, cost: u64) -> Admit {
        if cost > self.budget {
            self.rejections += 1;
            return Admit::Rejected;
        }
        let ticket = self.next_ticket;
        if self.waiting.is_empty() && self.in_use + cost <= self.budget {
            self.next_ticket += 1;
            self.in_use += cost;
            return Admit::Admitted(ticket);
        }
        if self.waiting.len() < self.max_waiting {
            self.next_ticket += 1;
            self.waiting.push_back((ticket, cost));
            return Admit::Queued(ticket);
        }
        self.rejections += 1;
        Admit::Rejected
    }

    /// Releases `cost` bytes of a finished (previously admitted) query
    /// and grants the longest FIFO prefix of the waiting line that now
    /// fits. Returns the granted tickets, in grant order.
    pub fn complete(&mut self, cost: u64) -> Vec<Ticket> {
        debug_assert!(self.in_use >= cost, "completing more than admitted");
        self.in_use -= cost;
        let mut granted = Vec::new();
        while let Some(&(ticket, c)) = self.waiting.front() {
            if self.in_use + c > self.budget {
                break;
            }
            self.waiting.pop_front();
            self.in_use += c;
            granted.push(ticket);
        }
        granted
    }

    /// Bytes charged by currently admitted queries.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Requests currently waiting.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Requests rejected so far (line full or cost larger than the
    /// whole budget).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

/// What a blocking [`Admission::acquire`] returned with.
#[derive(Debug)]
pub struct AdmitGuard<'a> {
    admission: &'a Admission,
    cost: u64,
    /// Nanoseconds this request spent waiting in the admission line
    /// (zero when admitted immediately).
    pub queue_wait_ns: u64,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.admission.inner.lock().expect("admission poisoned");
        let granted = inner.core.complete(self.cost);
        inner.granted.extend(granted);
        drop(inner);
        self.admission.cv.notify_all();
    }
}

#[derive(Debug)]
struct AdmissionInner {
    core: AdmissionCore,
    /// Tickets granted by completions whose waiters have not woken yet.
    granted: std::collections::HashSet<Ticket>,
}

/// The blocking admission controller the server runs: [`AdmissionCore`]
/// behind a mutex, with a condvar carrying grants to waiting handler
/// threads. Dropping the returned [`AdmitGuard`] releases the budget
/// and wakes waiters.
#[derive(Debug)]
pub struct Admission {
    inner: Mutex<AdmissionInner>,
    cv: Condvar,
}

impl Admission {
    /// A blocking controller over `budget` bytes with at most
    /// `max_waiting` waiters.
    pub fn new(budget: u64, max_waiting: usize) -> Self {
        Admission {
            inner: Mutex::new(AdmissionInner {
                core: AdmissionCore::new(budget, max_waiting),
                granted: std::collections::HashSet::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until `cost` bytes are admitted, or returns `None` when
    /// the request is rejected (line full / cost larger than the
    /// budget). The guard's `queue_wait_ns` records the time spent in
    /// the line.
    pub fn acquire(&self, cost: u64) -> Option<AdmitGuard<'_>> {
        let mut inner = self.inner.lock().expect("admission poisoned");
        match inner.core.request(cost) {
            Admit::Admitted(_) => Some(AdmitGuard {
                admission: self,
                cost,
                queue_wait_ns: 0,
            }),
            Admit::Rejected => None,
            Admit::Queued(ticket) => {
                let started = std::time::Instant::now();
                loop {
                    if inner.granted.remove(&ticket) {
                        return Some(AdmitGuard {
                            admission: self,
                            cost,
                            queue_wait_ns: started.elapsed().as_nanos() as u64,
                        });
                    }
                    inner = self.cv.wait(inner).expect("admission poisoned");
                }
            }
        }
    }

    /// Bytes charged by currently admitted queries.
    pub fn in_use(&self) -> u64 {
        self.inner.lock().expect("admission poisoned").core.in_use()
    }

    /// Requests rejected so far.
    pub fn rejections(&self) -> u64 {
        self.inner
            .lock()
            .expect("admission poisoned")
            .core
            .rejections()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_budget_then_queues_then_rejects() {
        let mut a = AdmissionCore::new(100, 2);
        assert!(matches!(a.request(60), Admit::Admitted(_)));
        assert!(matches!(a.request(60), Admit::Queued(_)));
        assert!(
            matches!(a.request(10), Admit::Queued(_)),
            "FIFO: no overtaking"
        );
        assert!(matches!(a.request(10), Admit::Rejected));
        assert_eq!(a.rejections(), 1);
        assert!(a.in_use() <= a.budget());
    }

    #[test]
    fn complete_grants_fifo_prefix() {
        let mut a = AdmissionCore::new(100, 8);
        let Admit::Admitted(_) = a.request(100) else {
            panic!("first fits")
        };
        let Admit::Queued(t1) = a.request(40) else {
            panic!("queues")
        };
        let Admit::Queued(t2) = a.request(40) else {
            panic!("queues")
        };
        let Admit::Queued(_) = a.request(40) else {
            panic!("queues")
        };
        assert_eq!(a.complete(100), vec![t1, t2], "two fit, third must wait");
        assert_eq!(a.in_use(), 80);
    }

    #[test]
    fn oversized_request_rejected_not_queued() {
        let mut a = AdmissionCore::new(100, 8);
        assert_eq!(a.request(101), Admit::Rejected);
        assert_eq!(a.waiting_len(), 0);
    }

    #[test]
    fn blocking_acquire_waits_for_release() {
        let adm = Admission::new(100, 4);
        let first = adm.acquire(100).expect("fits");
        std::thread::scope(|scope| {
            let adm = &adm;
            let h = scope.spawn(move || {
                let g = adm.acquire(50).expect("granted after release");
                g.queue_wait_ns
            });
            // Give the waiter time to enter the line, then release.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(first);
            let waited = h.join().expect("waiter panicked");
            assert!(waited > 0, "queued waiter must measure its wait");
        });
        assert_eq!(adm.in_use(), 0, "all guards dropped");
    }

    #[test]
    fn blocking_rejects_when_line_full() {
        let adm = Admission::new(10, 0);
        let _g = adm.acquire(10).expect("fits");
        assert!(adm.acquire(1).is_none(), "no line, no admission");
        assert_eq!(adm.rejections(), 1);
    }
}
