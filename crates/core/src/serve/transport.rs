//! TCP transport for the serve loop: a listener thread plus one
//! handler loop per connection, all driving the transport-independent
//! [`Server`] through its [`handle_line`](Server::handle_line) seam.
//!
//! The wire protocol is exactly the stdin/stdout one — line-delimited
//! JSON, one response line per request line — so a session recorded
//! against `amdj serve` on a pipe replays unchanged over a socket.
//! What the transport adds is the multi-client machinery the pipe
//! cannot express:
//!
//! * **connection cap** — at most [`TransportOptions::max_conns`]
//!   handler threads; an excess connection receives one structured
//!   error line and is closed, never silently queued;
//! * **idle timeout** — a connection that sends no bytes for
//!   [`TransportOptions::idle_timeout`] gets a structured error line
//!   and is closed, so a stalled client cannot pin a handler thread;
//! * **bounded buffering** — at most `max_request_bytes` of an
//!   unterminated line is ever buffered; a client that streams more
//!   without a newline is refused and disconnected *before* the bytes
//!   accumulate (a complete-but-oversized line is still answered with
//!   the codec's structured `TooLarge` error and the connection
//!   survives);
//! * **cooperative shutdown** — when the caller's `stop` flag rises
//!   (SIGINT) or any client sends the `shutdown` op, the listener
//!   stops accepting, every handler finishes the requests already
//!   buffered on its connection, and [`serve_listener`] returns so the
//!   caller can checkpoint open cursors.
//!
//! The handler loop never blocks indefinitely: reads tick at
//! [`TransportOptions::poll_interval`] so the stop flag is observed
//! between requests, and writes carry the idle timeout so a client
//! that stops draining responses is disconnected rather than pinning
//! the thread.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use super::codec::Response;
use super::Server;

/// Socket-transport tuning knobs.
#[derive(Clone, Debug)]
pub struct TransportOptions {
    /// Concurrent connections served; excess connections get one
    /// structured error line and are closed.
    pub max_conns: usize,
    /// A connection silent for this long is sent a structured error
    /// line and closed. Also bounds how long a write to a non-draining
    /// client may stall.
    pub idle_timeout: Duration,
    /// How often blocked reads and the accept loop wake to observe the
    /// stop flag — the upper bound on shutdown latency for an idle
    /// server.
    pub poll_interval: Duration,
}

impl Default for TransportOptions {
    fn default() -> Self {
        TransportOptions {
            max_conns: 256,
            idle_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// What a [`serve_listener`] run did, returned when it stops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections admitted to a handler thread.
    pub accepted: u64,
    /// Connections refused by the `max_conns` cap.
    pub rejected: u64,
    /// Request lines dispatched to the server.
    pub requests: u64,
    /// Connections closed by the idle timeout.
    pub idle_disconnects: u64,
    /// Connections closed for streaming an unterminated oversized line.
    pub oversize_disconnects: u64,
}

/// Shared mutable transport state: the handler threads' counters plus
/// the internal shutdown latch the `shutdown` op raises.
#[derive(Debug, Default)]
struct Shared {
    accepted: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    idle_disconnects: AtomicU64,
    oversize_disconnects: AtomicU64,
    active: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn stopping(&self, stop: &AtomicBool) -> bool {
        stop.load(Ordering::Relaxed) || self.shutdown.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> TransportStats {
        TransportStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            idle_disconnects: self.idle_disconnects.load(Ordering::Relaxed),
            oversize_disconnects: self.oversize_disconnects.load(Ordering::Relaxed),
        }
    }
}

/// Serves `server` over `listener` until `stop` rises or a client sends
/// the `shutdown` op, then drains: the listener stops accepting, every
/// handler finishes the request lines already buffered on its
/// connection, and the accumulated [`TransportStats`] are returned.
///
/// `stop` is the *external* stop request (typically the CLI's SIGINT
/// flag). The `shutdown` op latches a separate internal flag, so the
/// caller can distinguish "a client asked us to stop" (exit 0) from
/// "the operator interrupted us" (exit 75) by re-reading its own flag
/// after this returns.
///
/// Handler threads are scoped, so a panic in one propagates instead of
/// leaking a wedged connection; the `Server`'s own `handle_line` seam
/// never panics on wire input (`tests/serve_codec.rs` fuzzes it).
pub fn serve_listener<const D: usize>(
    server: &Server<'_, D>,
    listener: TcpListener,
    opts: &TransportOptions,
    stop: &AtomicBool,
) -> std::io::Result<TransportStats> {
    listener.set_nonblocking(true)?;
    let shared = Shared::default();
    let mut fatal = None;
    std::thread::scope(|scope| {
        while !shared.stopping(stop) {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(opts.poll_interval);
                    continue;
                }
                Err(e) => {
                    // Accept failures (fd exhaustion, a torn-down
                    // listener) end the run; in-flight connections
                    // still drain below.
                    fatal = Some(e);
                    break;
                }
            };
            if shared.active.load(Ordering::Relaxed) >= opts.max_conns {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                reject(stream, opts.max_conns);
                continue;
            }
            shared.accepted.fetch_add(1, Ordering::Relaxed);
            shared.active.fetch_add(1, Ordering::Relaxed);
            let shared = &shared;
            scope.spawn(move || {
                handle_conn(server, stream, opts, stop, shared);
                shared.active.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // Leaving the scope joins every handler: the drain barrier.
    });
    match fatal {
        Some(e) => Err(e),
        None => Ok(shared.snapshot()),
    }
}

/// Refuses an over-cap connection with one structured error line.
/// Best-effort: the client may already be gone.
fn reject(mut stream: TcpStream, max_conns: usize) {
    let resp = Response::Error {
        id: None,
        error: format!("server at capacity: {max_conns} connections"),
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut line = resp.encode();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// One connection's handler loop: read lines, dispatch each through
/// [`Server::handle_line`], write each response line back. Returns (and
/// thereby closes the connection) on EOF, any I/O error, idle timeout,
/// an unterminated oversized line, or once a stop is requested and the
/// already-buffered lines have been answered.
fn handle_conn<const D: usize>(
    server: &Server<'_, D>,
    mut stream: TcpStream,
    opts: &TransportOptions,
    stop: &AtomicBool,
    shared: &Shared,
) {
    let max_line = server.options().max_request_bytes;
    let _ = stream.set_nodelay(true);
    // The listener is nonblocking; on platforms where accepted sockets
    // inherit that, the tick loop below would spin. Blocking + read
    // timeout is the mode the loop is written for.
    let _ = stream.set_nonblocking(false);
    if stream.set_read_timeout(Some(opts.poll_interval)).is_err()
        || stream.set_write_timeout(Some(opts.idle_timeout)).is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping(stop) {
                    // Drain point: nothing buffered is in flight (every
                    // complete line was answered below), so close.
                    return;
                }
                if last_activity.elapsed() >= opts.idle_timeout {
                    shared.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error {
                        id: None,
                        error: format!(
                            "idle timeout: no request in {} ms",
                            opts.idle_timeout.as_millis()
                        ),
                    };
                    let _ = write_line(&mut stream, &resp);
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        last_activity = Instant::now();
        buf.extend_from_slice(&chunk[..n]);
        while let Some(line) = split_line(&mut buf) {
            if line.is_empty() {
                continue; // blank keep-alive lines are inert
            }
            shared.requests.fetch_add(1, Ordering::Relaxed);
            let (resp, shutdown) = server.handle_line(&line);
            if write_line(&mut stream, &resp).is_err() {
                return;
            }
            if shutdown {
                shared.shutdown.store(true, Ordering::Relaxed);
                return;
            }
        }
        // A complete line of any length was handed to the codec above
        // (which answers oversize with a structured error); what must
        // never happen is buffering an unterminated line without bound.
        if buf.len() > max_line {
            shared.oversize_disconnects.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Error {
                id: None,
                error: format!("unterminated request exceeds {max_line} bytes; closing connection"),
            };
            let _ = write_line(&mut stream, &resp);
            return;
        }
        if shared.stopping(stop) {
            return;
        }
    }
}

/// Writes one encoded response line. The stream's write timeout bounds
/// how long a non-draining client can stall this.
fn write_line(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut line = resp.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Splits the first complete line off `buf`, stripping the `\n` and an
/// optional preceding `\r` (so `nc -C`/telnet-style clients work).
/// Returns `None` when no newline is buffered yet.
fn split_line(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let rest = buf.split_off(pos + 1);
    let mut line = std::mem::replace(buf, rest);
    line.pop(); // the `\n`
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_line_takes_one_line_and_keeps_the_rest() {
        let mut buf = b"{\"op\":\"stats\"}\n{\"op\":".to_vec();
        assert_eq!(
            split_line(&mut buf).as_deref(),
            Some(&b"{\"op\":\"stats\"}"[..])
        );
        assert_eq!(buf, b"{\"op\":");
        assert_eq!(split_line(&mut buf), None);
        buf.extend_from_slice(b"\"x\"}\r\n");
        assert_eq!(
            split_line(&mut buf).as_deref(),
            Some(&b"{\"op\":\"x\"}"[..])
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn split_line_yields_empty_lines_verbatim() {
        let mut buf = b"\n\r\nx\n".to_vec();
        assert_eq!(split_line(&mut buf).as_deref(), Some(&b""[..]));
        assert_eq!(split_line(&mut buf).as_deref(), Some(&b""[..]));
        assert_eq!(split_line(&mut buf).as_deref(), Some(&b"x"[..]));
        assert_eq!(split_line(&mut buf), None);
    }
}
