//! Serve-mode cursor sessions: suspended incremental joins behind ids.
//!
//! An open IDJ cursor is, between pulls, nothing but an
//! [`EngineSnapshot`] — the same consistent cut the checkpoint/resume
//! machinery writes to disk — plus the client's delivery position. A
//! pull runs resumable episodes ([`idj_resumable`] with a fresh
//! [`PauseCtl`] per episode) until enough of the result stream is
//! *stable*, then hands the next slice out.
//!
//! # Stable-prefix rule
//!
//! A mid-join snapshot's `results` are canonically sorted but not final:
//! a pending frontier pair or parked compensation entry may still
//! produce a closer pair. What makes a prefix deliverable is the
//! engine's own lower-bound discipline — every frontier pair's `dist`
//! lower-bounds all its descendants' distances, and every compensation
//! entry's key lower-bounds every pair its replay can recover (the
//! CompQueue invariant in `engine/sweep.rs`). Therefore every result
//! *strictly* below the minimum pending lower bound is immutable: no
//! remaining work can emit a pair that sorts at or before it.
//! (`Strictly`, because an equal-distance pair with smaller ids would
//! sort earlier in canonical order.) `tests/serve_cursor.rs` pins that
//! pulled prefixes are bit-identical to the uninterrupted stream.

use amdj_rtree::RTree;

use crate::engine::{idj_resumable, Checkpointed, EngineSnapshot, PauseCtl, SnapshotKind};
use crate::{AmIdjOptions, JoinConfig, JoinStats, ResultPair};

use super::codec::QuerySpec;
use super::ServeError;

/// A cursor's engine state between pulls.
#[derive(Debug)]
enum CursorState<const D: usize> {
    /// Opened, no episode run yet.
    Fresh,
    /// Suspended mid-join.
    Live(Box<EngineSnapshot<D>>),
    /// The join finished; the full result stream is known.
    Done(Vec<ResultPair>),
}

/// One open incremental-join cursor: target size, per-query engine
/// knobs, delivery position, suspended engine state, and the stats
/// accumulated across its episodes (per-query buffer attribution).
#[derive(Debug)]
pub struct Cursor<const D: usize> {
    take: usize,
    spec: QuerySpec,
    delivered: u64,
    state: CursorState<D>,
    /// Counters accumulated across every episode this cursor ran —
    /// including episodes that ended in suspension, whose stats ride
    /// the [`Checkpointed::Suspended`] variant.
    pub stats: JoinStats,
    /// Total admission queue wait across this cursor's pulls, ns.
    pub queue_wait_ns: u64,
}

/// Folds one episode's stats into a cursor's running totals. Work
/// counters sum; `stages` keeps the maximum; driver scalars
/// (`results`) are positional and taken from the final episode.
fn accumulate(total: &mut JoinStats, episode: &JoinStats) {
    let stages = total.stages.max(episode.stages);
    total.absorb_worker(episode);
    total.node_requests += episode.node_requests;
    total.node_disk_reads += episode.node_disk_reads;
    total.cpu_seconds += episode.cpu_seconds;
    total.io_seconds += episode.io_seconds;
    total.barrier_idle_ns += episode.barrier_idle_ns;
    total.stages = stages;
    total.results = episode.results;
}

/// How many of a suspended snapshot's results are final (stable): the
/// count of results strictly below every pending frontier pair's
/// distance and every parked compensation entry's key, capped at the
/// cursor's `take`. Both vectors are kept ascending by the suspension
/// path, so the minimum pending lower bound is their front elements'.
fn stable_len<const D: usize>(snap: &EngineSnapshot<D>, take: usize) -> usize {
    let mut pending_min = f64::INFINITY;
    if let Some(p) = snap.frontier.first() {
        pending_min = pending_min.min(p.dist);
    }
    if let Some(e) = snap.comps.first() {
        pending_min = pending_min.min(e.key);
    }
    let stable = snap.results.partition_point(|p| p.dist < pending_min);
    stable.min(take)
}

/// The structured refusal for a delivery position ahead of what the
/// result stream can replay. Unreachable through honest resumes (the
/// checks in [`Cursor::resume`] bound `delivered`), but an adversarial
/// snapshot whose claimed results later shrink under the proven bound
/// must surface here as an error — never as a slice panic, which would
/// tear down the whole `serve` thread scope.
fn position_error() -> ServeError {
    ServeError::Snapshot(crate::SnapshotError::Invalid(
        "cursor delivery position is ahead of the result stream",
    ))
}

impl<const D: usize> Cursor<D> {
    /// A fresh cursor for `take` pairs under the given knobs.
    pub fn open(take: usize, spec: QuerySpec) -> Self {
        Cursor {
            take,
            spec,
            delivered: 0,
            state: CursorState::Fresh,
            stats: JoinStats::default(),
            queue_wait_ns: 0,
        }
    }

    /// Re-creates a cursor from a checkpoint snapshot, resuming
    /// delivery after `delivered` already-received pairs. The
    /// snapshot's kind must be an incremental join (its embedded `take`
    /// becomes the cursor's); corruption surfaces as a clean error.
    pub fn resume(
        snap: EngineSnapshot<D>,
        delivered: u64,
        spec: QuerySpec,
    ) -> Result<Self, ServeError> {
        let SnapshotKind::Idj { take } = snap.kind() else {
            return Err(ServeError::Snapshot(crate::SnapshotError::Invalid(
                "k-distance-join snapshot passed to an incremental cursor",
            )));
        };
        // A suspended snapshot may retain more than `take` results
        // (everything under the proven bound rides along as resume
        // evidence), but a client can only ever have received pairs
        // from the stable prefix, which pull() caps at `take` — so a
        // `delivered` beyond either bound is a lie, and accepting it
        // would make pull() slice backwards.
        if delivered > take {
            return Err(ServeError::Snapshot(crate::SnapshotError::Invalid(
                "delivered position beyond the cursor's result budget",
            )));
        }
        if delivered > snap.results_len() as u64 {
            return Err(ServeError::Snapshot(crate::SnapshotError::Invalid(
                "delivered position beyond the snapshot's results",
            )));
        }
        Ok(Cursor {
            take: take as usize,
            spec,
            delivered,
            state: CursorState::Live(Box::new(snap)),
            stats: JoinStats::default(),
            queue_wait_ns: 0,
        })
    }

    /// Total pairs delivered to the client so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The cursor's total result budget.
    pub fn take(&self) -> usize {
        self.take
    }

    /// The engine knobs the cursor runs with.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Runs one resumable episode of at most `episode_expansions`
    /// expansions (`0` = run to completion), advancing the state.
    fn run_episode(
        &mut self,
        r: &RTree<D>,
        s: &RTree<D>,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
        episode_expansions: u64,
        stop_immediately: bool,
    ) -> Result<(), ServeError> {
        let resume = match std::mem::replace(&mut self.state, CursorState::Fresh) {
            CursorState::Fresh => None,
            CursorState::Live(snap) => Some(*snap),
            done @ CursorState::Done(_) => {
                self.state = done;
                return Ok(());
            }
        };
        let ctl = PauseCtl::every(episode_expansions);
        if stop_immediately {
            ctl.request_stop();
        }
        let threads = (self.spec.threads as usize).max(1);
        match idj_resumable(
            r,
            s,
            self.take,
            cfg,
            opts,
            threads,
            None,
            resume,
            Some(&ctl),
        )
        .map_err(ServeError::Snapshot)?
        {
            Checkpointed::Done(out) => {
                accumulate(&mut self.stats, &out.stats);
                self.state = CursorState::Done(out.results);
            }
            Checkpointed::Suspended(snap, stats) => {
                accumulate(&mut self.stats, &stats);
                self.state = CursorState::Live(snap);
            }
        }
        Ok(())
    }

    /// Pulls the next `n` pairs, running as many episodes as needed
    /// until the delivery window is stable (or the join finishes).
    /// Returns the slice and whether the cursor is exhausted.
    pub fn pull(
        &mut self,
        r: &RTree<D>,
        s: &RTree<D>,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
        episode_expansions: u64,
        n: usize,
    ) -> Result<(Vec<ResultPair>, bool), ServeError> {
        let want = (self.delivered as usize).saturating_add(n).min(self.take);
        loop {
            match &self.state {
                CursorState::Done(results) => {
                    let end = want.min(results.len()).min(self.take);
                    let from = self.delivered as usize;
                    // `from > end` means the delivery position claims
                    // pairs the stream cannot replay (an inconsistent
                    // resume): refuse rather than rewind `delivered`
                    // and re-label old pairs as new.
                    if from > end {
                        return Err(position_error());
                    }
                    let slice = results[from..end].to_vec();
                    self.delivered = end as u64;
                    let exhausted = end >= results.len().min(self.take);
                    return Ok((slice, exhausted));
                }
                CursorState::Live(snap) if stable_len(snap, self.take) >= want => {
                    let from = self.delivered as usize;
                    if from > want {
                        return Err(position_error());
                    }
                    let slice = snap.results[from..want].to_vec();
                    self.delivered = want as u64;
                    // Stable but suspended: more results may follow —
                    // unless the delivery budget itself is spent.
                    return Ok((slice, want >= self.take));
                }
                _ => self.run_episode(r, s, cfg, opts, episode_expansions, false)?,
            }
        }
    }

    /// Serializes the cursor to snapshot bytes plus the delivery
    /// position a resume must pass back. A fresh cursor runs one
    /// immediately-paused episode to obtain a consistent cut; a
    /// finished cursor synthesizes a resume-to-done snapshot (empty
    /// frontier, full results), so checkpointing always succeeds.
    pub fn checkpoint(
        &mut self,
        r: &RTree<D>,
        s: &RTree<D>,
        cfg: &JoinConfig,
        opts: &AmIdjOptions,
    ) -> Result<(Vec<u8>, u64), ServeError> {
        if matches!(self.state, CursorState::Fresh) {
            self.run_episode(r, s, cfg, opts, 0, true)?;
        }
        let bytes = match &self.state {
            CursorState::Fresh => unreachable!("episode above left Fresh"),
            CursorState::Live(snap) => snap.encode(),
            CursorState::Done(results) => {
                let results: Vec<ResultPair> = results.iter().take(self.take).copied().collect();
                let dists: Vec<f64> = results.iter().map(|p| p.dist).collect();
                let snap = EngineSnapshot::<D> {
                    kind: SnapshotKind::Idj {
                        take: self.take as u64,
                    },
                    stage: self.stats.stages.max(1),
                    edmax: f64::INFINITY,
                    shared_bound: f64::INFINITY,
                    k_target: self.take as u64,
                    emitted: results.len() as u64,
                    last_dist: results.last().map(|p| p.dist).unwrap_or(0.0),
                    results,
                    dists,
                    frontier: Vec::new(),
                    comps: Vec::new(),
                };
                snap.encode()
            }
        };
        Ok((bytes, self.delivered))
    }
}

/// The serve-mode session table: cursor id → cursor, with checkout
/// semantics so two concurrent requests against the same cursor fail
/// fast (`CursorBusy`) instead of racing or deadlocking.
#[derive(Debug, Default)]
pub struct CursorTable<const D: usize> {
    /// `None` marks a cursor checked out by an executing request.
    map: std::sync::Mutex<std::collections::HashMap<String, Option<Cursor<D>>>>,
}

impl<const D: usize> CursorTable<D> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new cursor under `id`.
    pub fn insert(&self, id: &str, cursor: Cursor<D>) -> Result<(), ServeError> {
        let mut map = self.map.lock().expect("cursor table poisoned");
        if map.contains_key(id) {
            return Err(ServeError::CursorExists(id.to_string()));
        }
        map.insert(id.to_string(), Some(cursor));
        Ok(())
    }

    /// Checks a cursor out for exclusive use by one request.
    pub fn checkout(&self, id: &str) -> Result<Cursor<D>, ServeError> {
        let mut map = self.map.lock().expect("cursor table poisoned");
        match map.get_mut(id) {
            None => Err(ServeError::UnknownCursor(id.to_string())),
            Some(slot) => slot
                .take()
                .ok_or_else(|| ServeError::CursorBusy(id.to_string())),
        }
    }

    /// Returns a checked-out cursor to the table.
    pub fn checkin(&self, id: &str, cursor: Cursor<D>) {
        let mut map = self.map.lock().expect("cursor table poisoned");
        if let Some(slot) = map.get_mut(id) {
            *slot = Some(cursor);
        }
    }

    /// Removes a cursor (it must not be checked out).
    pub fn remove(&self, id: &str) -> Result<Cursor<D>, ServeError> {
        let mut map = self.map.lock().expect("cursor table poisoned");
        match map.get(id) {
            None => return Err(ServeError::UnknownCursor(id.to_string())),
            Some(None) => return Err(ServeError::CursorBusy(id.to_string())),
            Some(Some(_)) => {}
        }
        Ok(map
            .remove(id)
            .flatten()
            .expect("checked present and idle above"))
    }

    /// Puts a drained cursor back, even under an id that was removed in
    /// between — the undo path of a failed shutdown checkpoint, which
    /// must leave every cursor exactly as open as it found it.
    pub fn restore(&self, id: String, cursor: Cursor<D>) {
        let mut map = self.map.lock().expect("cursor table poisoned");
        map.insert(id, Some(cursor));
    }

    /// Drains every idle cursor (shutdown: in-flight requests have
    /// already finished, so after the drain the table is empty).
    pub fn drain(&self) -> Vec<(String, Cursor<D>)> {
        let mut map = self.map.lock().expect("cursor table poisoned");
        map.drain()
            .filter_map(|(id, slot)| slot.map(|c| (id, c)))
            .collect()
    }

    /// Open cursor ids (idle and busy).
    pub fn ids(&self) -> Vec<String> {
        let map = self.map.lock().expect("cursor table poisoned");
        map.keys().cloned().collect()
    }
}
