//! The serve-mode wire protocol: line-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request. The decoder is
//! a hand-rolled flat-JSON scanner (no external dependencies anywhere
//! in the workspace) that fails the way the storage codec's `try_*`
//! path does: every syntax, truncation, type, or missing-field problem
//! comes back as an [`amdj_storage::codec::CodecError`] naming the byte
//! offset and the thing expected there — never a panic, never a hung
//! session. Oversized lines are refused before parsing.
//!
//! # Requests
//!
//! ```text
//! {"op":"kdj","id":"q1","k":100,"aggressive":true,"threads":2}
//! {"op":"idj_open","id":"c1","take":500}
//! {"op":"idj_pull","id":"c1","n":100}
//! {"op":"idj_checkpoint","id":"c1"}
//! {"op":"idj_resume","id":"c1","snapshot":"<hex>","delivered":100}
//! {"op":"idj_close","id":"c1"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Join-bearing ops (`kdj`, `idj_open`, `idj_resume`) accept the
//! optional per-query knobs `aggressive` (default `true`), `threads`
//! (default 1), `partitions` (default 0 = monolithic; `kdj` only) and
//! `steal`. Cursor snapshots travel as lowercase hex of the
//! [`EngineSnapshot`](crate::EngineSnapshot) wire format.
//!
//! # Responses
//!
//! Every response carries `"ok": true|false`; errors carry `"error"`
//! with the offending byte offset when the request itself was
//! malformed. Result rows are `{"r": u64, "s": u64, "dist": f64}` with
//! `dist` printed in shortest round-trip form, so a client re-parsing
//! the stream recovers bit-identical distances.

use amdj_storage::codec::CodecError;

use crate::ResultPair;

/// Per-query engine knobs a request may carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Aggressive (estimate-driven, compensated) pruning — the paper's
    /// AM family — versus the exact policy. Default `true`.
    pub aggressive: bool,
    /// Worker threads for this query. Default 1.
    pub threads: u64,
    /// Partitioned-plan fan-out (`0` = monolithic). KDJ only.
    pub partitions: u64,
    /// Work stealing override (`None` = server default).
    pub steal: Option<bool>,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            aggressive: true,
            threads: 1,
            partitions: 0,
            steal: None,
        }
    }
}

/// One decoded request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a k-distance join and return all `k` results at once.
    Kdj {
        /// Client-chosen query id, echoed in the response and the
        /// per-query stats log.
        id: String,
        /// Number of closest pairs.
        k: u64,
        /// Engine knobs.
        spec: QuerySpec,
    },
    /// Open an incremental-join cursor materializing up to `take`
    /// pairs, delivered by later `idj_pull`s.
    IdjOpen {
        /// Cursor id (also the stats query id).
        id: String,
        /// Total pairs the cursor may deliver.
        take: u64,
        /// Engine knobs.
        spec: QuerySpec,
    },
    /// Pull the next `n` pairs from an open cursor.
    IdjPull {
        /// Cursor id.
        id: String,
        /// Pairs to deliver.
        n: u64,
    },
    /// Serialize an open cursor to a snapshot the client (or a restart)
    /// can resume from.
    IdjCheckpoint {
        /// Cursor id.
        id: String,
    },
    /// Re-create a cursor from a checkpoint snapshot.
    IdjResume {
        /// Cursor id to create.
        id: String,
        /// The snapshot bytes (hex on the wire).
        snapshot: Vec<u8>,
        /// Pairs the client had already received before the
        /// checkpoint (the cursor resumes delivery after them).
        delivered: u64,
        /// Engine knobs for the resumed episodes.
        spec: QuerySpec,
    },
    /// Drop an open cursor.
    IdjClose {
        /// Cursor id.
        id: String,
    },
    /// Server statistics: global buffer counters plus the per-query
    /// attribution log.
    Stats,
    /// Stop accepting requests and shut down cleanly.
    Shutdown,
}

/// Why a request line could not become a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The line exceeds the server's request size cap.
    TooLarge {
        /// Bytes received.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// Malformed JSON, a missing or mistyped field, or an unknown op —
    /// with the byte offset where decoding gave up.
    Bad(CodecError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::TooLarge { len, max } => {
                write!(f, "request of {len} bytes exceeds the {max}-byte cap")
            }
            RequestError::Bad(e) => write!(
                f,
                "bad request at byte {}: expected {}",
                e.offset, e.expected
            ),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<CodecError> for RequestError {
    fn from(e: CodecError) -> Self {
        RequestError::Bad(e)
    }
}

/// A scalar JSON value the flat scanner produces.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Str(String),
    UInt(u64),
    Num(f64),
    Bool(bool),
    Null,
}

/// A parsed `key: value` with the byte offset of the value, for error
/// reporting in the style of the storage codec's `try_*` reads.
struct Field {
    key: String,
    val: Val,
    offset: usize,
}

struct Scan<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn err(&self, expected: &'static str) -> CodecError {
        CodecError {
            offset: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, expected: &'static str) -> Result<(), CodecError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    /// Parses a JSON string, positioned at its opening quote.
    fn string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = char::from_u32(cp)
                                .ok_or_else(|| self.err("a valid \\u code point"))?;
                            out.push(ch);
                        }
                        _ => {
                            self.pos -= 1;
                            return Err(self.err("a JSON escape"));
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("an escaped control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar; reject invalid UTF-8.
                    let rest = &self.b[self.pos..];
                    let upto = rest.iter().position(|&c| c == b'"' || c == b'\\');
                    let chunk = &rest[..upto.unwrap_or(rest.len())];
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("valid UTF-8"))?;
                    out.push_str(s);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, CodecError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("4 hex digits"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("4 hex digits"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        // Surrogate pairs are not produced by this codec's encoder;
        // reject them instead of emitting invalid scalars.
        Ok(cp)
    }

    fn value(&mut self) -> Result<Val, CodecError> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => {
                self.literal(b"true")?;
                Ok(Val::Bool(true))
            }
            Some(b'f') => {
                self.literal(b"false")?;
                Ok(Val::Bool(false))
            }
            Some(b'n') => {
                self.literal(b"null")?;
                Ok(Val::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(b'{' | b'[') => {
                Err(self.err("a scalar value (nested values are not part of the protocol)"))
            }
            _ => Err(self.err("a value")),
        }
    }

    fn literal(&mut self, lit: &'static [u8]) -> Result<(), CodecError> {
        if self.b[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("a JSON literal"))
        }
    }

    fn number(&mut self) -> Result<Val, CodecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii number");
        if !float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Val::UInt(v));
            }
        }
        let v: f64 = text.parse().map_err(|_| CodecError {
            offset: start,
            expected: "a number",
        })?;
        Ok(Val::Num(v))
    }
}

/// Parses one flat JSON object into its fields, with offsets.
fn parse_object(line: &[u8]) -> Result<Vec<Field>, CodecError> {
    let mut s = Scan { b: line, pos: 0 };
    s.skip_ws();
    s.expect(b'{', "'{'")?;
    let mut fields = Vec::new();
    s.skip_ws();
    if s.peek() == Some(b'}') {
        s.pos += 1;
    } else {
        loop {
            s.skip_ws();
            let key = s.string()?;
            s.skip_ws();
            s.expect(b':', "':'")?;
            s.skip_ws();
            let offset = s.pos;
            let val = s.value()?;
            fields.push(Field { key, val, offset });
            s.skip_ws();
            match s.peek() {
                Some(b',') => s.pos += 1,
                Some(b'}') => {
                    s.pos += 1;
                    break;
                }
                _ => return Err(s.err("',' or '}'")),
            }
        }
    }
    s.skip_ws();
    if s.pos != line.len() {
        return Err(s.err("end of request"));
    }
    Ok(fields)
}

struct Fields {
    inner: Vec<Field>,
    end: usize,
}

impl Fields {
    fn find(&self, key: &str) -> Option<&Field> {
        self.inner.iter().find(|f| f.key == key)
    }

    fn missing(&self, expected: &'static str) -> CodecError {
        CodecError {
            offset: self.end,
            expected,
        }
    }

    fn str(&self, key: &str, expected: &'static str) -> Result<String, CodecError> {
        let f = self.find(key).ok_or_else(|| self.missing(expected))?;
        match &f.val {
            Val::Str(s) => Ok(s.clone()),
            _ => Err(CodecError {
                offset: f.offset,
                expected,
            }),
        }
    }

    fn uint(&self, key: &str, expected: &'static str) -> Result<u64, CodecError> {
        let f = self.find(key).ok_or_else(|| self.missing(expected))?;
        match f.val {
            Val::UInt(v) => Ok(v),
            _ => Err(CodecError {
                offset: f.offset,
                expected,
            }),
        }
    }

    fn uint_or(&self, key: &str, expected: &'static str, default: u64) -> Result<u64, CodecError> {
        match self.find(key) {
            None => Ok(default),
            Some(f) => match f.val {
                Val::UInt(v) => Ok(v),
                _ => Err(CodecError {
                    offset: f.offset,
                    expected,
                }),
            },
        }
    }

    fn bool_opt(&self, key: &str, expected: &'static str) -> Result<Option<bool>, CodecError> {
        match self.find(key) {
            None => Ok(None),
            Some(f) => match f.val {
                Val::Bool(v) => Ok(Some(v)),
                _ => Err(CodecError {
                    offset: f.offset,
                    expected,
                }),
            },
        }
    }

    fn spec(&self) -> Result<QuerySpec, CodecError> {
        Ok(QuerySpec {
            aggressive: self
                .bool_opt("aggressive", "boolean field `aggressive`")?
                .unwrap_or(true),
            threads: self.uint_or("threads", "unsigned field `threads`", 1)?,
            partitions: self.uint_or("partitions", "unsigned field `partitions`", 0)?,
            steal: self.bool_opt("steal", "boolean field `steal`")?,
        })
    }
}

impl Request {
    /// Decodes one request line. `max_bytes` caps the accepted line
    /// length; everything else that can go wrong is a structured
    /// [`RequestError`], never a panic.
    pub fn decode(line: &[u8], max_bytes: usize) -> Result<Request, RequestError> {
        if line.len() > max_bytes {
            return Err(RequestError::TooLarge {
                len: line.len(),
                max: max_bytes,
            });
        }
        let fields = Fields {
            inner: parse_object(line)?,
            end: line.len(),
        };
        let op = fields.str("op", "string field `op`")?;
        let req = match op.as_str() {
            "kdj" => Request::Kdj {
                id: fields.str("id", "string field `id`")?,
                k: fields.uint("k", "unsigned field `k`")?,
                spec: fields.spec()?,
            },
            "idj_open" => Request::IdjOpen {
                id: fields.str("id", "string field `id`")?,
                take: fields.uint("take", "unsigned field `take`")?,
                spec: fields.spec()?,
            },
            "idj_pull" => Request::IdjPull {
                id: fields.str("id", "string field `id`")?,
                n: fields.uint("n", "unsigned field `n`")?,
            },
            "idj_checkpoint" => Request::IdjCheckpoint {
                id: fields.str("id", "string field `id`")?,
            },
            "idj_resume" => {
                let hex = fields.str("snapshot", "string field `snapshot`")?;
                let offset = fields
                    .find("snapshot")
                    .map(|f| f.offset)
                    .unwrap_or(fields.end);
                Request::IdjResume {
                    id: fields.str("id", "string field `id`")?,
                    snapshot: hex_decode(&hex).ok_or(CodecError {
                        offset,
                        expected: "an even-length lowercase hex snapshot",
                    })?,
                    delivered: fields.uint_or("delivered", "unsigned field `delivered`", 0)?,
                    spec: fields.spec()?,
                }
            }
            "idj_close" => Request::IdjClose {
                id: fields.str("id", "string field `id`")?,
            },
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            _ => {
                let offset = fields.find("op").map(|f| f.offset).unwrap_or(0);
                return Err(RequestError::Bad(CodecError {
                    offset,
                    expected: "a known op (kdj, idj_open, idj_pull, idj_checkpoint, idj_resume, idj_close, stats, shutdown)",
                }));
            }
        };
        Ok(req)
    }

    /// Encodes the request as one canonical protocol line (no trailing
    /// newline). `decode(encode(r)) == r` for every request — pinned by
    /// the codec round-trip proptest.
    pub fn encode(&self) -> String {
        fn spec_fields(out: &mut String, spec: &QuerySpec) {
            out.push_str(&format!(
                ",\"aggressive\":{},\"threads\":{},\"partitions\":{}",
                spec.aggressive, spec.threads, spec.partitions
            ));
            if let Some(steal) = spec.steal {
                out.push_str(&format!(",\"steal\":{steal}"));
            }
        }
        let mut out = String::new();
        match self {
            Request::Kdj { id, k, spec } => {
                out.push_str(&format!(
                    "{{\"op\":\"kdj\",\"id\":{},\"k\":{k}",
                    json_string(id)
                ));
                spec_fields(&mut out, spec);
                out.push('}');
            }
            Request::IdjOpen { id, take, spec } => {
                out.push_str(&format!(
                    "{{\"op\":\"idj_open\",\"id\":{},\"take\":{take}",
                    json_string(id)
                ));
                spec_fields(&mut out, spec);
                out.push('}');
            }
            Request::IdjPull { id, n } => {
                out.push_str(&format!(
                    "{{\"op\":\"idj_pull\",\"id\":{},\"n\":{n}}}",
                    json_string(id)
                ));
            }
            Request::IdjCheckpoint { id } => {
                out.push_str(&format!(
                    "{{\"op\":\"idj_checkpoint\",\"id\":{}}}",
                    json_string(id)
                ));
            }
            Request::IdjResume {
                id,
                snapshot,
                delivered,
                spec,
            } => {
                out.push_str(&format!(
                    "{{\"op\":\"idj_resume\",\"id\":{},\"snapshot\":\"{}\",\"delivered\":{delivered}",
                    json_string(id),
                    hex_encode(snapshot)
                ));
                spec_fields(&mut out, spec);
                out.push('}');
            }
            Request::IdjClose { id } => {
                out.push_str(&format!(
                    "{{\"op\":\"idj_close\",\"id\":{}}}",
                    json_string(id)
                ));
            }
            Request::Stats => out.push_str("{\"op\":\"stats\"}"),
            Request::Shutdown => out.push_str("{\"op\":\"shutdown\"}"),
        }
        out
    }
}

/// Per-query attribution surfaced by the `stats` op and the bench serve
/// rows: which query enjoyed which share of the shared buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReport {
    /// The client-chosen query/cursor id.
    pub id: String,
    /// The op that produced the work (`"kdj"`, `"idj"`).
    pub op: &'static str,
    /// Nanoseconds spent waiting in the admission line.
    pub queue_wait_ns: u64,
    /// Shared-buffer hits attributed to this query's threads.
    pub buffer_hits: u64,
    /// Shared-buffer misses attributed to this query's threads.
    pub buffer_misses: u64,
    /// Shared-buffer evictions this query's inserts caused — its share
    /// of cross-query thrashing pressure.
    pub buffer_evictions: u64,
    /// Results delivered so far.
    pub results: u64,
}

impl QueryReport {
    fn encode(&self) -> String {
        format!(
            "{{\"id\":{},\"op\":\"{}\",\"queue_wait_ns\":{},\"buffer_hits\":{},\"buffer_misses\":{},\"buffer_evictions\":{},\"results\":{}}}",
            json_string(&self.id),
            self.op,
            self.queue_wait_ns,
            self.buffer_hits,
            self.buffer_misses,
            self.buffer_evictions,
            self.results
        )
    }
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Results of a `kdj` or `idj_pull`.
    Results {
        /// Echoed query id.
        id: String,
        /// `"kdj"` or `"idj_pull"`.
        op: &'static str,
        /// The delivered pairs, ascending by distance.
        results: Vec<ResultPair>,
        /// Whether the query (or cursor) has no more results to give.
        done: bool,
        /// Total pairs delivered to this id so far (cursors only;
        /// equals `results.len()` for one-shot kdj).
        delivered_total: u64,
        /// Admission wait for this request, nanoseconds.
        queue_wait_ns: u64,
    },
    /// A cursor was opened or resumed.
    Opened {
        /// Cursor id.
        id: String,
        /// `"idj_open"` or `"idj_resume"`.
        op: &'static str,
    },
    /// A cursor checkpoint: the snapshot (hex) plus the delivery
    /// position a resume should pass back.
    Snapshot {
        /// Cursor id.
        id: String,
        /// Encoded snapshot bytes.
        snapshot: Vec<u8>,
        /// Pairs delivered before the checkpoint.
        delivered: u64,
    },
    /// A cursor was closed.
    Closed {
        /// Cursor id.
        id: String,
    },
    /// Server statistics.
    Stats {
        /// Queries completed.
        queries: u64,
        /// Requests the admission controller rejected.
        admission_rejections: u64,
        /// Bytes currently admitted.
        mem_in_use: u64,
        /// Global shared-buffer hits (both trees).
        buffer_hits: u64,
        /// Global shared-buffer misses (both trees).
        buffer_misses: u64,
        /// Global buffer evictions (both trees) — cross-query
        /// thrashing pressure.
        buffer_evictions: u64,
        /// Per-query attribution log.
        reports: Vec<QueryReport>,
    },
    /// The server acknowledges shutdown.
    Shutdown,
    /// Anything that went wrong, as a structured line.
    Error {
        /// Echoed id when the request carried one.
        id: Option<String>,
        /// Human-readable cause (includes byte offsets for malformed
        /// requests).
        error: String,
    },
}

impl Response {
    /// Encodes the response as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Results {
                id,
                op,
                results,
                done,
                delivered_total,
                queue_wait_ns,
            } => {
                let mut out = format!(
                    "{{\"ok\":true,\"op\":\"{op}\",\"id\":{},\"done\":{done},\"delivered_total\":{delivered_total},\"queue_wait_ns\":{queue_wait_ns},\"results\":[",
                    json_string(id)
                );
                for (i, p) in results.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"r\":{},\"s\":{},\"dist\":{}}}",
                        p.r, p.s, p.dist
                    ));
                }
                out.push_str("]}");
                out
            }
            Response::Opened { id, op } => {
                format!("{{\"ok\":true,\"op\":\"{op}\",\"id\":{}}}", json_string(id))
            }
            Response::Snapshot {
                id,
                snapshot,
                delivered,
            } => format!(
                "{{\"ok\":true,\"op\":\"idj_checkpoint\",\"id\":{},\"delivered\":{delivered},\"snapshot\":\"{}\"}}",
                json_string(id),
                hex_encode(snapshot)
            ),
            Response::Closed { id } => format!(
                "{{\"ok\":true,\"op\":\"idj_close\",\"id\":{}}}",
                json_string(id)
            ),
            Response::Stats {
                queries,
                admission_rejections,
                mem_in_use,
                buffer_hits,
                buffer_misses,
                buffer_evictions,
                reports,
            } => {
                let mut out = format!(
                    "{{\"ok\":true,\"op\":\"stats\",\"queries\":{queries},\"admission_rejections\":{admission_rejections},\"mem_in_use\":{mem_in_use},\"buffer_hits\":{buffer_hits},\"buffer_misses\":{buffer_misses},\"buffer_evictions\":{buffer_evictions},\"per_query\":["
                );
                for (i, r) in reports.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&r.encode());
                }
                out.push_str("]}");
                out
            }
            Response::Shutdown => "{\"ok\":true,\"op\":\"shutdown\"}".to_string(),
            Response::Error { id, error } => match id {
                Some(id) => format!(
                    "{{\"ok\":false,\"id\":{},\"error\":{}}}",
                    json_string(id),
                    json_string(error)
                ),
                None => format!("{{\"ok\":false,\"error\":{}}}", json_string(error)),
            },
        }
    }
}

/// Quotes and escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lowercase hex of `bytes`.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes lowercase/uppercase hex; `None` on odd length or a non-hex
/// character.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_minimal_kdj() {
        let req = Request::decode(br#"{"op":"kdj","id":"q1","k":10}"#, 1024).expect("valid");
        assert_eq!(
            req,
            Request::Kdj {
                id: "q1".into(),
                k: 10,
                spec: QuerySpec::default(),
            }
        );
    }

    #[test]
    fn roundtrips_every_op() {
        let reqs = vec![
            Request::Kdj {
                id: "a\"b\\c".into(),
                k: 7,
                spec: QuerySpec {
                    aggressive: false,
                    threads: 4,
                    partitions: 8,
                    steal: Some(true),
                },
            },
            Request::IdjOpen {
                id: "c".into(),
                take: 100,
                spec: QuerySpec::default(),
            },
            Request::IdjPull {
                id: "c".into(),
                n: 25,
            },
            Request::IdjCheckpoint { id: "c".into() },
            Request::IdjResume {
                id: "c".into(),
                snapshot: vec![0, 1, 254, 255],
                delivered: 12,
                spec: QuerySpec::default(),
            },
            Request::IdjClose { id: "c".into() },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            let back = Request::decode(line.as_bytes(), 1 << 20).expect("own encoding decodes");
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Request::decode(br#"{"op":"kdj","id":"q1""#, 1024).unwrap_err();
        let RequestError::Bad(e) = err else {
            panic!("expected Bad")
        };
        assert_eq!(e.offset, 21, "offset points at the truncation");
        let err = Request::decode(br#"{"op":"kdj","id":"q1","k":"ten"}"#, 1024).unwrap_err();
        let RequestError::Bad(e) = err else {
            panic!("expected Bad")
        };
        assert_eq!(e.offset, 26, "offset points at the mistyped value");
        assert_eq!(e.expected, "unsigned field `k`");
    }

    #[test]
    fn oversized_line_refused_before_parsing() {
        let line = vec![b'x'; 100];
        assert_eq!(
            Request::decode(&line, 10),
            Err(RequestError::TooLarge { len: 100, max: 10 })
        );
    }

    #[test]
    fn unknown_op_is_an_error() {
        let err = Request::decode(br#"{"op":"evict_everything"}"#, 1024).unwrap_err();
        assert!(matches!(err, RequestError::Bad(_)));
    }

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)), Some(bytes));
        assert_eq!(hex_decode("0"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex");
    }

    #[test]
    fn result_distances_print_round_trip_exact() {
        let resp = Response::Results {
            id: "q".into(),
            op: "kdj",
            results: vec![ResultPair {
                r: 1,
                s: 2,
                dist: 0.1 + 0.2,
            }],
            done: true,
            delivered_total: 1,
            queue_wait_ns: 0,
        };
        let line = resp.encode();
        let printed = line.split("\"dist\":").nth(1).unwrap();
        let printed = &printed[..printed.find('}').unwrap()];
        let back: f64 = printed.parse().unwrap();
        assert_eq!(back.to_bits(), (0.1f64 + 0.2).to_bits());
    }
}
