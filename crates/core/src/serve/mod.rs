//! The concurrent join server: many KDJ/IDJ queries over one shared
//! pair of trees.
//!
//! [`Server`] is the transport-independent core of `amdj serve`
//! (DESIGN.md §12): it owns no sockets and spawns no threads — callers
//! (the CLI's stdin/stdout loop, the concurrency tests, the bench serve
//! section) bring their own threads and drive it through either the
//! typed methods ([`Server::kdj`], [`Server::idj_pull`], …) or the wire
//! seam ([`Server::handle_line`]), which decodes one request line,
//! dispatches, and encodes one response line without ever panicking.
//!
//! Three subsystems compose it:
//!
//! * **admission** ([`admission`]) — every executing query charges the
//!   engine's own `queue_mem_bytes` unit against one serve-wide memory
//!   budget; overflow waits in a bounded FIFO line, and a full line is
//!   a structured rejection. Blocking happens on the *handler thread*
//!   (one per in-flight request), so admitted queries always progress;
//! * **sessions** ([`session`]) — IDJ cursors are suspended
//!   [`EngineSnapshot`](crate::EngineSnapshot)s behind ids, with
//!   checkout semantics so concurrent requests against one cursor fail
//!   fast instead of racing;
//! * **codec** ([`codec`]) — the line-delimited JSON protocol, with
//!   every malformed input reported as a byte-offset error in the
//!   storage codec's style.
//!
//! Every query's buffer traffic is attributed to its id: the engine's
//! `Baseline` captures the coordinating handler thread, worker spans
//! capture the join's own workers, and suspended episodes return their
//! stats through [`Checkpointed::Suspended`](crate::Checkpointed) — so
//! the per-query counters in the `stats` response sum exactly to the
//! shared buffer's global deltas (`tests/serve_concurrent.rs`).

pub mod admission;
pub mod codec;
pub mod session;
pub mod transport;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use amdj_rtree::RTree;

use crate::engine::{self, Aggressive, Exact, Parallel, Sequential};
use crate::{AmIdjOptions, JoinConfig, JoinOutput, SnapshotError};

use admission::Admission;
use codec::{QueryReport, QuerySpec, Request, RequestError, Response};
use session::{Cursor, CursorTable};

/// Serve-mode tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Total admission budget, bytes. Each executing query charges
    /// `base_config.queue_mem_bytes`; the default admits 8 at once.
    pub mem_budget_bytes: u64,
    /// Requests allowed to wait for admission before rejection.
    pub max_waiting: usize,
    /// Expansion budget per cursor episode (`0` = run to completion in
    /// one episode; pulls then never suspend mid-join).
    pub episode_expansions: u64,
    /// Request line size cap, bytes.
    pub max_request_bytes: usize,
    /// Per-query `threads` cap. The engine spawns exactly that many OS
    /// threads, so an uncapped wire value is a resource-exhaustion
    /// vector; requests beyond the cap are rejected with a structured
    /// error. Default: 4× the machine's available parallelism, at
    /// least 16.
    pub max_threads: u64,
    /// Per-query `partitions` cap (the plan enumerates up to
    /// `partitions²` partition pairs). Requests beyond it are rejected
    /// with a structured error.
    pub max_partitions: u64,
    /// The engine configuration queries start from (per-query knobs
    /// override `steal`/`partitions`).
    pub base_config: JoinConfig,
    /// Incremental-join stage schedule options.
    pub idj_opts: AmIdjOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let base_config = JoinConfig::default();
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get() as u64);
        ServeOptions {
            mem_budget_bytes: 8 * base_config.queue_mem_bytes as u64,
            max_waiting: 64,
            episode_expansions: 512,
            max_request_bytes: 1 << 20,
            max_threads: (4 * cores).max(16),
            max_partitions: 256,
            base_config,
            idj_opts: AmIdjOptions::default(),
        }
    }
}

/// Why a serve request failed.
#[derive(Debug)]
pub enum ServeError {
    /// The admission controller rejected the query (waiting line full,
    /// or the query could never fit the budget).
    Rejected {
        /// Bytes the query would have charged.
        cost: u64,
        /// The serve-wide budget.
        budget: u64,
    },
    /// `idj_open`/`idj_resume` against an id that already exists.
    CursorExists(String),
    /// A cursor op against an unknown id.
    UnknownCursor(String),
    /// A cursor op while another request holds the cursor.
    CursorBusy(String),
    /// A snapshot failed to decode or validate.
    Snapshot(SnapshotError),
    /// The request line itself was malformed.
    BadRequest(RequestError),
    /// A per-query knob exceeded the server's configured cap.
    SpecOutOfRange {
        /// The knob (`"threads"` or `"partitions"`).
        knob: &'static str,
        /// The requested value.
        got: u64,
        /// The server's cap.
        max: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { cost, budget } => write!(
                f,
                "admission rejected: {cost} bytes against a {budget}-byte budget with a full waiting line"
            ),
            ServeError::CursorExists(id) => write!(f, "cursor `{id}` already exists"),
            ServeError::UnknownCursor(id) => write!(f, "no cursor `{id}`"),
            ServeError::CursorBusy(id) => {
                write!(f, "cursor `{id}` is busy serving another request")
            }
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::BadRequest(e) => write!(f, "{e}"),
            ServeError::SpecOutOfRange { knob, got, max } => {
                write!(f, "per-query `{knob}` {got} exceeds the server cap {max}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<RequestError> for ServeError {
    fn from(e: RequestError) -> Self {
        ServeError::BadRequest(e)
    }
}

/// The on-disk snapshot file name for a checkpointed cursor id:
/// lowercase hex of the id's bytes plus `.snap`. Hex is injective, so
/// distinct ids — `"a.b"` versus `"a_b"`, say — can never collide on
/// one file, and ids containing separators or control characters stay
/// inert. Shared by [`Server::checkpoint_open_cursors`] and the CLI's
/// restart-resume path so both ends agree on the naming.
pub fn snap_file_name(id: &str) -> String {
    format!("{}.snap", codec::hex_encode(id.as_bytes()))
}

/// One [`Server::idj_pull`]'s outcome.
#[derive(Clone, Debug)]
pub struct Pull {
    /// The delivered pairs, ascending by distance.
    pub results: Vec<crate::ResultPair>,
    /// Whether the cursor is exhausted.
    pub done: bool,
    /// Total pairs delivered to the client so far.
    pub delivered: u64,
    /// The cursor's *cumulative* admission wait across all its pulls,
    /// ns — the queueing delay the wire response reports.
    pub queue_wait_ns: u64,
}

/// Writes `bytes` to `path` atomically: write to a `.tmp` sibling,
/// fsync, rename — the `engine/checkpoint.rs` pattern. A crash
/// mid-write can leave a stale tmp file behind but never a truncated
/// snapshot or manifest under the real name.
fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

/// The transport-independent join server over one shared tree pair.
/// All methods take `&self`; the shared buffer synchronizes internally,
/// so any number of handler threads may call in concurrently.
#[derive(Debug)]
pub struct Server<'t, const D: usize> {
    r: &'t RTree<D>,
    s: &'t RTree<D>,
    opts: ServeOptions,
    admission: Admission,
    cursors: CursorTable<D>,
    reports: Mutex<Vec<QueryReport>>,
    queries: AtomicU64,
}

impl<'t, const D: usize> Server<'t, D> {
    /// A server over `r` and `s` (loaded/persisted once by the caller).
    pub fn new(r: &'t RTree<D>, s: &'t RTree<D>, opts: ServeOptions) -> Self {
        let admission = Admission::new(opts.mem_budget_bytes, opts.max_waiting);
        Server {
            r,
            s,
            opts,
            admission,
            cursors: CursorTable::new(),
            reports: Mutex::new(Vec::new()),
            queries: AtomicU64::new(0),
        }
    }

    /// The serve options in effect.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Bounds the per-query knobs that come straight off the wire:
    /// `threads` spawns that many OS threads and `partitions` fans a
    /// plan out quadratically, so arbitrary u64s must be refused as
    /// structured errors before any dispatch.
    fn check_spec(&self, spec: &QuerySpec) -> Result<(), ServeError> {
        if spec.threads > self.opts.max_threads {
            return Err(ServeError::SpecOutOfRange {
                knob: "threads",
                got: spec.threads,
                max: self.opts.max_threads,
            });
        }
        if spec.partitions > self.opts.max_partitions {
            return Err(ServeError::SpecOutOfRange {
                knob: "partitions",
                got: spec.partitions,
                max: self.opts.max_partitions,
            });
        }
        Ok(())
    }

    /// The per-query engine configuration: the base config with the
    /// request's overrides applied. Like `steal`, `partitions` is only
    /// touched when the request actually carries it (the codec default
    /// 0 means "unspecified"): `partitions ≥ 2` repartitions, an
    /// explicit `partitions: 1` forces a monolithic run, and an omitted
    /// knob keeps whatever the server's base config says.
    fn config_for(&self, spec: &QuerySpec) -> JoinConfig {
        let mut cfg = self.opts.base_config.clone();
        if let Some(steal) = spec.steal {
            cfg.steal = steal;
        }
        if spec.partitions > 0 {
            cfg.partitions = (spec.partitions > 1).then_some(spec.partitions as usize);
        }
        cfg
    }

    /// Admission cost of one query under `cfg` — the engine's own
    /// queue memory budget, the unit the paper bounds a join by.
    fn cost_of(&self, cfg: &JoinConfig) -> u64 {
        cfg.queue_mem_bytes as u64
    }

    fn admit(&self, cost: u64) -> Result<admission::AdmitGuard<'_>, ServeError> {
        self.admission.acquire(cost).ok_or(ServeError::Rejected {
            cost,
            budget: self.opts.mem_budget_bytes,
        })
    }

    /// Folds one finished request's attribution into the per-query log
    /// (one row per id+op). The two ops report differently and must
    /// not mix: a cursor (`cumulative`) carries running totals across
    /// its whole lifetime, so its row is *replaced* — adding would
    /// double-count earlier pulls; a kdj request reports this query's
    /// deltas, so a reused id *sums* — replacing would drop the
    /// earlier queries' traffic. Either way every buffer fetch lands
    /// in exactly one row exactly once, preserving the rows-sum-to-
    /// global-deltas invariant (`tests/serve_concurrent.rs`).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        id: &str,
        op: &'static str,
        wait_ns: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
        results: u64,
        cumulative: bool,
    ) {
        let mut log = self.reports.lock().expect("report log poisoned");
        if let Some(row) = log.iter_mut().find(|r| r.id == id && r.op == op) {
            if cumulative {
                row.queue_wait_ns = wait_ns;
                row.buffer_hits = hits;
                row.buffer_misses = misses;
                row.buffer_evictions = evictions;
                row.results = results;
            } else {
                row.queue_wait_ns += wait_ns;
                row.buffer_hits += hits;
                row.buffer_misses += misses;
                row.buffer_evictions += evictions;
                row.results += results;
            }
        } else {
            log.push(QueryReport {
                id: id.to_string(),
                op,
                queue_wait_ns: wait_ns,
                buffer_hits: hits,
                buffer_misses: misses,
                buffer_evictions: evictions,
                results,
            });
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs one k-distance join under admission control, returning the
    /// results and the query's attribution report.
    pub fn kdj(
        &self,
        id: &str,
        k: usize,
        spec: &QuerySpec,
    ) -> Result<(JoinOutput, QueryReport), ServeError> {
        self.check_spec(spec)?;
        let cfg = self.config_for(spec);
        let guard = self.admit(self.cost_of(&cfg))?;
        let threads = (spec.threads as usize).max(1);
        let out = if spec.aggressive {
            if threads > 1 {
                engine::kdj(
                    self.r,
                    self.s,
                    k,
                    &cfg,
                    &Aggressive::default(),
                    &Parallel::new(threads),
                )
            } else {
                engine::kdj(self.r, self.s, k, &cfg, &Aggressive::default(), &Sequential)
            }
        } else if threads > 1 {
            engine::kdj(self.r, self.s, k, &cfg, &Exact, &Parallel::new(threads))
        } else {
            engine::kdj(self.r, self.s, k, &cfg, &Exact, &Sequential)
        };
        let wait_ns = guard.queue_wait_ns;
        drop(guard);
        let report = QueryReport {
            id: id.to_string(),
            op: "kdj",
            queue_wait_ns: wait_ns,
            buffer_hits: out.stats.buffer_hits,
            buffer_misses: out.stats.buffer_misses,
            buffer_evictions: out.stats.buffer_evictions,
            results: out.results.len() as u64,
        };
        self.record(
            id,
            "kdj",
            wait_ns,
            out.stats.buffer_hits,
            out.stats.buffer_misses,
            out.stats.buffer_evictions,
            out.results.len() as u64,
            false,
        );
        Ok((out, report))
    }

    /// Opens an incremental-join cursor (no engine work yet).
    pub fn idj_open(&self, id: &str, take: usize, spec: QuerySpec) -> Result<(), ServeError> {
        self.check_spec(&spec)?;
        self.cursors.insert(id, Cursor::open(take, spec))
    }

    /// Re-creates a cursor from checkpoint snapshot bytes; `delivered`
    /// pairs are skipped on the next pull. Corrupt or truncated bytes
    /// are a clean error.
    pub fn idj_resume(
        &self,
        id: &str,
        snapshot: &[u8],
        delivered: u64,
        spec: QuerySpec,
    ) -> Result<(), ServeError> {
        self.check_spec(&spec)?;
        let snap = crate::EngineSnapshot::<D>::decode(snapshot).map_err(ServeError::Snapshot)?;
        let cursor = Cursor::resume(snap, delivered, spec)?;
        self.cursors.insert(id, cursor)
    }

    /// Pulls the next `n` pairs from a cursor, running resumable
    /// episodes under admission control until the window is stable.
    pub fn idj_pull(&self, id: &str, n: usize) -> Result<Pull, ServeError> {
        let mut cursor = self.cursors.checkout(id)?;
        let cfg = self.config_for(cursor.spec());
        let outcome = match self.admit(self.cost_of(&cfg)) {
            Err(e) => Err(e),
            Ok(guard) => {
                cursor.queue_wait_ns += guard.queue_wait_ns;
                let res = cursor.pull(
                    self.r,
                    self.s,
                    &cfg,
                    &self.opts.idj_opts,
                    self.opts.episode_expansions,
                    n,
                );
                drop(guard);
                res
            }
        };
        let wait_ns = cursor.queue_wait_ns;
        let hits = cursor.stats.buffer_hits;
        let misses = cursor.stats.buffer_misses;
        let evictions = cursor.stats.buffer_evictions;
        let delivered = cursor.delivered();
        self.cursors.checkin(id, cursor);
        let (results, done) = outcome?;
        self.record(id, "idj", wait_ns, hits, misses, evictions, delivered, true);
        Ok(Pull {
            results,
            done,
            delivered,
            queue_wait_ns: wait_ns,
        })
    }

    /// Serializes a cursor to snapshot bytes plus its delivery
    /// position. The cursor stays open.
    pub fn idj_checkpoint(&self, id: &str) -> Result<(Vec<u8>, u64), ServeError> {
        let mut cursor = self.cursors.checkout(id)?;
        let cfg = self.config_for(cursor.spec());
        let outcome = cursor.checkpoint(self.r, self.s, &cfg, &self.opts.idj_opts);
        self.cursors.checkin(id, cursor);
        outcome
    }

    /// Closes a cursor, dropping its state.
    pub fn idj_close(&self, id: &str) -> Result<(), ServeError> {
        self.cursors.remove(id).map(drop)
    }

    /// Checkpoints every idle cursor into `dir` as
    /// [`snap_file_name`]`(id)` files plus a `cursors.txt` manifest
    /// (`hex(id)<TAB>delivered` per line) — the graceful-shutdown
    /// path: call after draining in-flight requests, so every cursor
    /// is idle. Returns the checkpointed ids (sorted, so the on-disk
    /// layout is deterministic).
    ///
    /// The shutdown is non-lossy: cursors leave the table only once
    /// every snapshot *and* the manifest are safely on disk. If any
    /// checkpoint or write fails mid-way, every cursor — including the
    /// ones already written — is restored to the table and the error is
    /// returned, so a caller can retry (or keep serving) without having
    /// silently dropped the remaining cursors. Both the snapshots and
    /// the manifest are written atomically (write-then-rename with an
    /// fsync, the `engine/checkpoint.rs` pattern), so a crash mid-
    /// shutdown never leaves a truncated manifest pointing at good
    /// snapshots or vice versa.
    ///
    /// Ids are hex-encoded in both places: the encoding is injective,
    /// so distinct ids can never share a snapshot file, and no id byte
    /// (tab, newline, path separator — all legal in JSON strings) can
    /// corrupt the manifest or escape the directory.
    pub fn checkpoint_open_cursors(&self, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let mut cursors = self.cursors.drain();
        cursors.sort_by(|a, b| a.0.cmp(&b.0));
        let attempt = (|| -> std::io::Result<Vec<String>> {
            let mut manifest = String::new();
            let mut ids = Vec::new();
            for (id, cursor) in cursors.iter_mut() {
                let cfg = self.config_for(cursor.spec());
                let (bytes, delivered) = cursor
                    .checkpoint(self.r, self.s, &cfg, &self.opts.idj_opts)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                write_atomic(&dir.join(snap_file_name(id)), &bytes)?;
                manifest.push_str(&format!(
                    "{}\t{delivered}\n",
                    codec::hex_encode(id.as_bytes())
                ));
                ids.push(id.clone());
            }
            write_atomic(&dir.join("cursors.txt"), manifest.as_bytes())?;
            Ok(ids)
        })();
        if attempt.is_err() {
            // Undo the drain: the cursors stay open and pullable, and a
            // later shutdown attempt can checkpoint them again.
            for (id, cursor) in cursors {
                self.cursors.restore(id, cursor);
            }
        }
        attempt
    }

    /// Re-opens every cursor a previous run's
    /// [`checkpoint_open_cursors`](Server::checkpoint_open_cursors)
    /// left in `dir`, resuming each snapshot at its recorded delivery
    /// position. A missing manifest means a fresh start (returns no
    /// ids); a malformed manifest or a corrupt snapshot is a clean
    /// error. Returns the resumed ids in manifest order.
    pub fn resume_cursors_from(&self, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
        let manifest = dir.join("cursors.txt");
        let text = match std::fs::read_to_string(&manifest) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let bad = |what: String| std::io::Error::other(format!("{}: {what}", manifest.display()));
        let mut ids = Vec::new();
        for line in text.lines() {
            let (hex_id, delivered) = line
                .split_once('\t')
                .ok_or_else(|| bad(format!("malformed manifest line {line:?}")))?;
            let id = codec::hex_decode(hex_id)
                .and_then(|b| String::from_utf8(b).ok())
                .ok_or_else(|| bad(format!("malformed cursor id {hex_id:?} (expected hex)")))?;
            let delivered: u64 = delivered.parse().map_err(|e| bad(format!("{e}")))?;
            let path = dir.join(snap_file_name(&id));
            let bytes = std::fs::read(&path)?;
            self.idj_resume(&id, &bytes, delivered, QuerySpec::default())
                .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?;
            ids.push(id);
        }
        Ok(ids)
    }

    /// The server's statistics response: global buffer counters for
    /// both trees plus the per-query attribution log.
    pub fn stats(&self) -> Response {
        Response::Stats {
            queries: self.queries.load(Ordering::Relaxed),
            admission_rejections: self.admission.rejections(),
            mem_in_use: self.admission.in_use(),
            buffer_hits: self.r.buffer_hits() + self.s.buffer_hits(),
            buffer_misses: self.r.buffer_misses() + self.s.buffer_misses(),
            buffer_evictions: self.r.buffer_evictions() + self.s.buffer_evictions(),
            reports: self.reports.lock().expect("report log poisoned").clone(),
        }
    }

    /// A clone of the per-query attribution log.
    pub fn query_reports(&self) -> Vec<QueryReport> {
        self.reports.lock().expect("report log poisoned").clone()
    }

    /// Requests the admission controller rejected.
    pub fn admission_rejections(&self) -> u64 {
        self.admission.rejections()
    }

    /// Decodes one request line, dispatches it, and encodes the
    /// response. Returns the response plus whether the request asked
    /// the server to shut down. Every failure — malformed line,
    /// unknown cursor, rejected admission, corrupt snapshot — is a
    /// structured [`Response::Error`]; this seam never panics
    /// (`tests/serve_codec.rs` fuzzes it).
    pub fn handle_line(&self, line: &[u8]) -> (Response, bool) {
        let req = match Request::decode(line, self.opts.max_request_bytes) {
            Ok(req) => req,
            Err(e) => {
                return (
                    Response::Error {
                        id: None,
                        error: e.to_string(),
                    },
                    false,
                )
            }
        };
        let (id, resp) = match req {
            Request::Kdj { id, k, spec } => {
                let resp =
                    self.kdj(&id, k as usize, &spec)
                        .map(|(out, report)| Response::Results {
                            id: id.clone(),
                            op: "kdj",
                            done: true,
                            delivered_total: out.results.len() as u64,
                            queue_wait_ns: report.queue_wait_ns,
                            results: out.results,
                        });
                (id, resp)
            }
            Request::IdjOpen { id, take, spec } => {
                let resp = self
                    .idj_open(&id, take as usize, spec)
                    .map(|()| Response::Opened {
                        id: id.clone(),
                        op: "idj_open",
                    });
                (id, resp)
            }
            Request::IdjPull { id, n } => {
                let resp = self
                    .idj_pull(&id, n as usize)
                    .map(|pull| Response::Results {
                        id: id.clone(),
                        op: "idj_pull",
                        done: pull.done,
                        delivered_total: pull.delivered,
                        queue_wait_ns: pull.queue_wait_ns,
                        results: pull.results,
                    });
                (id, resp)
            }
            Request::IdjCheckpoint { id } => {
                let resp =
                    self.idj_checkpoint(&id)
                        .map(|(snapshot, delivered)| Response::Snapshot {
                            id: id.clone(),
                            snapshot,
                            delivered,
                        });
                (id, resp)
            }
            Request::IdjResume {
                id,
                snapshot,
                delivered,
                spec,
            } => {
                let resp =
                    self.idj_resume(&id, &snapshot, delivered, spec)
                        .map(|()| Response::Opened {
                            id: id.clone(),
                            op: "idj_resume",
                        });
                (id, resp)
            }
            Request::IdjClose { id } => {
                let resp = self
                    .idj_close(&id)
                    .map(|()| Response::Closed { id: id.clone() });
                (id, resp)
            }
            Request::Stats => return (self.stats(), false),
            Request::Shutdown => return (Response::Shutdown, true),
        };
        let resp = resp.unwrap_or_else(|e| Response::Error {
            id: Some(id),
            error: e.to_string(),
        });
        (resp, false)
    }
}
