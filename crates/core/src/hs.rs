//! The Hjaltason–Samet baseline (§2): incremental distance join with
//! *uni-directional* node expansion.
//!
//! When a ⟨node, node⟩ pair is dequeued, only one node is expanded — its
//! children are paired with the *whole* other node. This bounds the pairs
//! generated per step by the fanout, but re-visits nodes repeatedly and
//! cannot use the plane-sweep pruning of §3; it is the "previous work" the
//! paper improves on. We expand the node with the larger MBR area (of the
//! policies studied in the original paper, the one that worked best).
//!
//! `HsIdj` is the incremental cursor (HS-IDJ); [`hs_kdj`] adds a distance
//! queue and a stopping cardinality (HS-KDJ). Following this paper's
//! footnote 1, only object-pair distances enter the distance queue — the
//! original's max-distance entries for node pairs can double-count a
//! witness and are also ineffective, as the footnote observes.

use amdj_rtree::{AccessStats, RTree};
use amdj_storage::PageId;

use crate::mainq::MainQueue;
use crate::{
    DistanceQueue, Estimator, ItemRef, JoinConfig, JoinOutput, JoinStats, Pair, ResultPair,
};

/// The HS-IDJ cursor: yields pairs in ascending distance order, one per
/// [`next`](HsIdj::next) call.
pub struct HsIdj<'a, const D: usize> {
    r: &'a RTree<D>,
    s: &'a RTree<D>,
    mainq: MainQueue<D>,
    distq: Option<DistanceQueue>,
    counters: JoinStats,
    r_acc0: AccessStats,
    s_acc0: AccessStats,
    r_io0: f64,
    s_io0: f64,
    buf0: (u64, u64, u64),
}

impl<'a, const D: usize> HsIdj<'a, D> {
    /// Starts an incremental join (no distance queue, no k).
    pub fn new(r: &'a RTree<D>, s: &'a RTree<D>, cfg: &JoinConfig) -> Self {
        Self::build(r, s, cfg, None)
    }

    fn build(
        r: &'a RTree<D>,
        s: &'a RTree<D>,
        cfg: &JoinConfig,
        distq: Option<DistanceQueue>,
    ) -> Self {
        let est = Estimator::from_trees(r, s);
        let mut mainq = MainQueue::new(cfg, est.as_ref());
        if let (Some(rb), Some(sb), Some(rp), Some(sp)) =
            (r.bounds(), s.bounds(), r.root_page(), s.root_page())
        {
            mainq.push(Pair {
                dist: rb.min_dist(&sb),
                a: ItemRef::Node {
                    page: rp.0,
                    level: r.height() - 1,
                },
                b: ItemRef::Node {
                    page: sp.0,
                    level: s.height() - 1,
                },
                a_mbr: rb,
                b_mbr: sb,
            });
        }
        let (r_acc0, s_acc0) = (r.access_stats(), s.access_stats());
        let (r_io0, s_io0) = (r.disk_stats().io_seconds, s.disk_stats().io_seconds);
        HsIdj {
            r,
            s,
            mainq,
            distq,
            counters: JoinStats {
                stages: 1,
                ..JoinStats::default()
            },
            r_acc0,
            s_acc0,
            r_io0,
            s_io0,
            buf0: amdj_rtree::thread_buffer_stats(),
        }
    }

    /// Produces the next nearest pair, or `None` when exhausted.
    #[allow(clippy::should_implement_trait)] // deliberate cursor API; &mut borrows preclude Iterator
    pub fn next(&mut self) -> Option<ResultPair> {
        let started = std::time::Instant::now();
        let out = self.step();
        self.counters.cpu_seconds += started.elapsed().as_secs_f64();
        out
    }

    fn step(&mut self) -> Option<ResultPair> {
        while let Some(pair) = self.mainq.pop() {
            if pair.is_result() {
                let (ItemRef::Object { oid: a }, ItemRef::Object { oid: b }) = (pair.a, pair.b)
                else {
                    unreachable!("is_result checked")
                };
                self.counters.results += 1;
                return Some(ResultPair {
                    r: a,
                    s: b,
                    dist: pair.dist,
                });
            }
            self.expand(pair);
        }
        None
    }

    /// Uni-directional expansion: pair one node's children with the other
    /// side unchanged.
    fn expand(&mut self, pair: Pair<D>) {
        let expand_left = match (pair.a, pair.b) {
            (ItemRef::Node { .. }, ItemRef::Object { .. }) => true,
            (ItemRef::Object { .. }, ItemRef::Node { .. }) => false,
            (ItemRef::Node { .. }, ItemRef::Node { .. }) => pair.a_mbr.area() >= pair.b_mbr.area(),
            (ItemRef::Object { .. }, ItemRef::Object { .. }) => {
                unreachable!("results never expand")
            }
        };
        let node = if expand_left {
            let ItemRef::Node { page, .. } = pair.a else {
                unreachable!()
            };
            self.r.fetch(PageId(page))
        } else {
            let ItemRef::Node { page, .. } = pair.b else {
                unreachable!()
            };
            self.s.fetch(PageId(page))
        };
        let (other_ref, other_mbr) = if expand_left {
            (pair.b, pair.b_mbr)
        } else {
            (pair.a, pair.a_mbr)
        };
        for e in &node.entries {
            self.counters.real_dist += 1;
            let d = e.mbr.min_dist(&other_mbr);
            let qdmax = self
                .distq
                .as_ref()
                .map_or(f64::INFINITY, DistanceQueue::qdmax);
            if d > qdmax {
                continue;
            }
            let child_ref = if node.is_leaf() {
                ItemRef::Object { oid: e.child }
            } else {
                ItemRef::Node {
                    page: e.child,
                    level: node.level - 1,
                }
            };
            let new_pair = if expand_left {
                Pair {
                    dist: d,
                    a: child_ref,
                    b: other_ref,
                    a_mbr: e.mbr,
                    b_mbr: other_mbr,
                }
            } else {
                Pair {
                    dist: d,
                    a: other_ref,
                    b: child_ref,
                    a_mbr: other_mbr,
                    b_mbr: e.mbr,
                }
            };
            let is_result = new_pair.is_result();
            self.mainq.push(new_pair);
            if is_result {
                if let Some(dq) = &mut self.distq {
                    dq.insert(d);
                }
            }
        }
    }

    /// A snapshot of the work done so far (idempotent; callable between
    /// [`next`](HsIdj::next) calls).
    pub fn stats(&self) -> JoinStats {
        let mut st = self.counters;
        st.mainq_insertions = self.mainq.insertions();
        st.distq_insertions = self.distq.as_ref().map_or(0, DistanceQueue::insertions);
        let (ra, sa) = (self.r.access_stats(), self.s.access_stats());
        st.node_requests =
            (ra.requests - self.r_acc0.requests) + (sa.requests - self.s_acc0.requests);
        st.node_disk_reads =
            (ra.disk_reads - self.r_acc0.disk_reads) + (sa.disk_reads - self.s_acc0.disk_reads);
        let qd = self.mainq.disk_stats();
        st.queue_page_reads = qd.pages_read;
        st.queue_page_writes = qd.pages_written;
        st.io_seconds = (self.r.disk_stats().io_seconds - self.r_io0)
            + (self.s.disk_stats().io_seconds - self.s_io0)
            + qd.io_seconds;
        // Single-threaded cursor: every fetch since construction happened
        // on this thread.
        let (h, m, e) = amdj_rtree::thread_buffer_stats();
        st.buffer_hits = h - self.buf0.0;
        st.buffer_misses = m - self.buf0.1;
        st.buffer_evictions = e - self.buf0.2;
        st
    }
}

/// HS-KDJ: the k-distance join of \[13\] — `HsIdj` plus a distance queue
/// whose `qDmax` gates main-queue insertions.
pub fn hs_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
) -> JoinOutput {
    let mut cursor = HsIdj::build(r, s, cfg, Some(DistanceQueue::new(k)));
    let mut results = Vec::with_capacity(k);
    while results.len() < k {
        match cursor.next() {
            Some(p) => results.push(p),
            None => break,
        }
    }
    let stats = cursor.stats();
    JoinOutput { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, offset: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + offset, (i / n) as f64 + offset * 0.5]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    #[test]
    fn hs_kdj_matches_brute_force() {
        let a = grid(12, 0.0);
        let b = grid(12, 0.31);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        for k in [1, 7, 50, 200] {
            let out = hs_kdj(&r, &s, k, &JoinConfig::unbounded());
            let want = bruteforce::k_closest_pairs(&a, &b, k);
            assert_eq!(out.results.len(), k);
            for (got, exp) in out.results.iter().zip(want.iter()) {
                assert!((got.dist - exp.dist).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn hs_idj_streams_in_order() {
        let a = grid(8, 0.0);
        let b = grid(8, 0.4);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let mut cursor = HsIdj::new(&r, &s, &JoinConfig::unbounded());
        let mut prev = -1.0;
        for _ in 0..100 {
            let p = cursor.next().expect("plenty of pairs");
            assert!(p.dist >= prev);
            prev = p.dist;
        }
        let st = cursor.stats();
        assert_eq!(st.results, 100);
        assert!(st.node_requests > 0);
        assert!(st.mainq_insertions > 0);
    }

    #[test]
    fn hs_idj_exhausts_completely() {
        let a = grid(3, 0.0);
        let b = grid(3, 0.2);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let mut cursor = HsIdj::new(&r, &s, &JoinConfig::unbounded());
        let mut n = 0;
        while cursor.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 81, "9×9 object pairs total");
        assert!(cursor.next().is_none(), "stays exhausted");
    }

    #[test]
    fn empty_inputs() {
        let r: amdj_rtree::RTree<2> = amdj_rtree::RTree::new(RTreeParams::for_tests());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), grid(3, 0.0));
        let out = hs_kdj(&r, &s, 5, &JoinConfig::unbounded());
        assert!(out.results.is_empty());
    }

    #[test]
    fn k_zero() {
        let g = grid(3, 0.0);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), g.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), g);
        let out = hs_kdj(&r, &s, 0, &JoinConfig::unbounded());
        assert!(out.results.is_empty());
    }
}
