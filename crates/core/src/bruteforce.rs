//! Exhaustive oracles used by tests and by experiment harnesses that need
//! true `Dmax` values (e.g. SJ-SORT's favorable configuration in §5).
//!
//! All functions are `O(|R|·|S|)` — fine for validation data sizes, and
//! deliberately independent of every structure they validate.

use amdj_geom::Rect;

use crate::ResultPair;

/// The `k` closest pairs, ascending by `(dist, r, s)`.
pub fn k_closest_pairs<const D: usize>(
    r: &[(Rect<D>, u64)],
    s: &[(Rect<D>, u64)],
    k: usize,
) -> Vec<ResultPair> {
    // Max-heap of the k best so far, keyed by (dist, r, s) for determinism.
    let mut heap: std::collections::BinaryHeap<(amdj_geom::TotalF64, u64, u64)> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    for &(ra, rid) in r {
        for &(sa, sid) in s {
            let d = ra.min_dist(&sa);
            let key = (amdj_geom::TotalF64::new(d), rid, sid);
            if heap.len() < k {
                heap.push(key);
            } else if let Some(top) = heap.peek() {
                if key < *top {
                    heap.pop();
                    heap.push(key);
                }
            }
        }
    }
    let mut out: Vec<ResultPair> = heap
        .into_iter()
        .map(|(d, rid, sid)| ResultPair {
            r: rid,
            s: sid,
            dist: d.get(),
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    out
}

/// Every pair within distance `d` (boundary inclusive), unordered.
pub fn pairs_within<const D: usize>(
    r: &[(Rect<D>, u64)],
    s: &[(Rect<D>, u64)],
    d: f64,
) -> Vec<ResultPair> {
    let mut out = Vec::new();
    for &(ra, rid) in r {
        for &(sa, sid) in s {
            let dist = ra.min_dist(&sa);
            if dist <= d {
                out.push(ResultPair {
                    r: rid,
                    s: sid,
                    dist,
                });
            }
        }
    }
    out
}

/// The distance of the `k`-th closest pair (the true `Dmax` for a
/// k-distance join). Returns `None` when fewer than `k` pairs exist.
pub fn dmax_for_k<const D: usize>(
    r: &[(Rect<D>, u64)],
    s: &[(Rect<D>, u64)],
    k: usize,
) -> Option<f64> {
    if k == 0 {
        return Some(0.0);
    }
    let top = k_closest_pairs(r, s, k);
    if top.len() < k {
        None
    } else {
        Some(top[k - 1].dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdj_geom::Point;

    fn pts(coords: &[(f64, f64)]) -> Vec<(Rect<2>, u64)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new([x, y])), i as u64))
            .collect()
    }

    #[test]
    fn finds_the_closest_pairs() {
        let r = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        let s = pts(&[(1.0, 0.0), (10.5, 0.0)]);
        let top = k_closest_pairs(&r, &s, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].dist, 0.5);
        assert_eq!((top[0].r, top[0].s), (1, 1));
        assert_eq!(top[1].dist, 1.0);
    }

    #[test]
    fn k_beyond_pair_count() {
        let r = pts(&[(0.0, 0.0)]);
        let s = pts(&[(1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(k_closest_pairs(&r, &s, 10).len(), 2);
        assert!(dmax_for_k(&r, &s, 10).is_none());
        assert_eq!(dmax_for_k(&r, &s, 2), Some(2.0));
    }

    #[test]
    fn within_is_boundary_inclusive() {
        let r = pts(&[(0.0, 0.0)]);
        let s = pts(&[(1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(pairs_within(&r, &s, 1.0).len(), 1);
        assert_eq!(pairs_within(&r, &s, 2.0).len(), 2);
        assert_eq!(pairs_within(&r, &s, 0.5).len(), 0);
    }

    #[test]
    fn deterministic_tie_break() {
        let r = pts(&[(0.0, 0.0), (0.0, 0.0)]);
        let s = pts(&[(1.0, 0.0)]);
        let top = k_closest_pairs(&r, &s, 1);
        assert_eq!((top[0].r, top[0].s), (0, 0), "smallest ids win ties");
    }

    #[test]
    fn dmax_zero_k() {
        let r = pts(&[(0.0, 0.0)]);
        assert_eq!(dmax_for_k(&r, &r.clone(), 0), Some(0.0));
    }
}
