use amdj_storage::CostModel;

/// Configuration shared by all join algorithms.
#[derive(Clone, Debug)]
pub struct JoinConfig {
    /// In-memory byte budget of the main queue (the paper's default:
    /// 512 KB; §5.5 sweeps 64 KB – 1024 KB). The same budget is given to
    /// SJ-SORT's external sorter.
    pub queue_mem_bytes: usize,
    /// Cost model for queue/sorter spill disks.
    pub queue_cost: CostModel,
    /// Select the sweeping axis per pair by the sweeping index (§3.2).
    /// When `false`, axis 0 is always used (the "optimization off"
    /// configuration of Figure 11).
    pub optimize_axis: bool,
    /// Select the sweeping direction per pair (§3.3). When `false`, the
    /// forward direction is always used.
    pub optimize_direction: bool,
    /// Derive main-queue segment boundaries from Equation (3) (§4.4).
    /// When `false` the queue always splits at the median key (the
    /// ablation of the paper's boundary-selection contribution).
    pub eq3_queue_boundaries: bool,
    /// Compute leaf–leaf candidate distances in one pass over SoA scratch
    /// buffers whenever the sweep's axis cutoff is frozen, instead of
    /// per-pair `min_dist` calls. Bit-identical to the scalar path; the
    /// switch exists so benches can ablate the batched kernel.
    pub batched_leaf_sweep: bool,
    /// Screen batched leaf–leaf candidates through a 16-bit grid-quantized
    /// integer lower bound on `min_dist` before the exact `f64` pass, and
    /// skip the distance + sqrt for candidates the bound already rejects
    /// against the live real cutoff. The quantization rounds outward and
    /// the rejection threshold carries half a cell of slack, so rejection
    /// is conservative and results stay bit-identical (DESIGN.md §10);
    /// the switch exists so benches can ablate the prefilter.
    pub quantized_prefilter: bool,
    /// Let parallel workers steal frontier pairs (and stage-two work
    /// items) from loaded peers instead of idling at the stage barrier
    /// once their own partition drains. Results are bit-identical either
    /// way; the switch exists so benches can compare against the static
    /// round-robin partitioning and so `JoinStats::pairs_stolen` can be
    /// pinned to zero in tests.
    pub steal: bool,
    /// How parallel backends carve a batch of work (frontier seeds,
    /// stage-two leftovers, compensation entries) into per-worker shares.
    /// Results are bit-identical under every choice; the switch trades
    /// buffer locality against nothing but bench ablation clarity.
    pub partition: Partition,
    /// Execute the join as a *plan* of independent per-partition-pair
    /// engine invocations: STR-tile both datasets into roughly this many
    /// partitions each, prune partition pairs whose MBR mindist exceeds
    /// the global `eDmax` estimate (bounds only — no point data), and run
    /// the engine per surviving pair under one shared CAS-min bound.
    /// Pruned pairs are replayed if the final proven qDmax shows the
    /// estimate was too tight, so results stay bit-identical to the
    /// monolithic plan. `None` (the default) and values ≤ 1 mean today's
    /// single-pair plan. KDJ only; IDJ always runs monolithic.
    pub partitions: Option<usize>,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            queue_mem_bytes: 512 * 1024,
            queue_cost: CostModel::paper_1999_disk(),
            optimize_axis: true,
            optimize_direction: true,
            eq3_queue_boundaries: true,
            batched_leaf_sweep: true,
            quantized_prefilter: true,
            steal: true,
            partition: Partition::Locality,
            partitions: None,
        }
    }
}

impl JoinConfig {
    /// No memory limits, no modeled I/O — for tests and small examples.
    pub fn unbounded() -> Self {
        JoinConfig {
            queue_mem_bytes: usize::MAX,
            queue_cost: CostModel::free(),
            optimize_axis: true,
            optimize_direction: true,
            eq3_queue_boundaries: true,
            batched_leaf_sweep: true,
            quantized_prefilter: true,
            steal: true,
            partition: Partition::Locality,
            partitions: None,
        }
    }

    /// The paper's configuration with a specific queue memory budget.
    pub fn with_queue_memory(bytes: usize) -> Self {
        JoinConfig {
            queue_mem_bytes: bytes,
            ..JoinConfig::default()
        }
    }
}

/// How parallel backends split a batch of work items across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Partition {
    /// Deal items round-robin in priority order. Every worker sees a
    /// representative slice of the whole batch — and, with it, the whole
    /// data space, so concurrent workers churn each other's buffer pages.
    /// Kept for ablation.
    RoundRobin,
    /// Order items by a Z-order (Morton) key of each pair's combined-MBR
    /// centroid and hand each worker one contiguous run, balanced by
    /// estimated expansion cost. Spatially close work lands on the same
    /// worker, so the node pages it touches stay hot in the shared
    /// buffer; the default.
    #[default]
    Locality,
}

/// How a new `eDmax` estimate is derived from partial results (§4.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Correction {
    /// Equation (4): `sqrt(Dmax(k0)² + (k − k0)·ρ)`.
    Arithmetic,
    /// Equation (5): `Dmax(k0) · sqrt(k / k0)`.
    Geometric,
    /// The minimum of both — errs on the aggressive side.
    MinOfBoth,
    /// The maximum of both — errs on the safe side (fewer compensation
    /// stages); the default.
    #[default]
    MaxOfBoth,
}

/// Options specific to [`crate::am_kdj`].
#[derive(Clone, Debug, Default)]
pub struct AmKdjOptions {
    /// Use this `eDmax` instead of the Equation (3) estimate — how
    /// Figure 14 sweeps `eDmax` from `0.1×Dmax` to `10×Dmax`.
    pub edmax_override: Option<f64>,
}

/// Where [`crate::AmIdj`] gets each stage's `eDmax` from.
#[derive(Clone, Debug)]
pub enum EdmaxPolicy {
    /// Stage 1 uses the Equation (3) estimate for `initial_k`; later
    /// stages apply the chosen correction to the results obtained so far.
    Estimated(Correction),
    /// Fixed per-stage values (e.g. real `Dmax` values from an oracle, as
    /// in Figure 15's comparison run). When exhausted, stages continue
    /// with geometric growth from the last value.
    Schedule(Vec<f64>),
}

/// Options specific to [`crate::AmIdj`].
#[derive(Clone, Debug)]
pub struct AmIdjOptions {
    /// Target cardinality `k₁` assumed for stage 1 (the paper's Figure 15
    /// uses the request batch size, 10,000).
    pub initial_k: u64,
    /// Growth factor for the assumed target between stages (`k₂ = k₁·g`).
    pub growth: f64,
    /// Stage `eDmax` source.
    pub edmax: EdmaxPolicy,
}

impl Default for AmIdjOptions {
    fn default() -> Self {
        AmIdjOptions {
            initial_k: 1024,
            growth: 4.0,
            edmax: EdmaxPolicy::Estimated(Correction::MaxOfBoth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = JoinConfig::default();
        assert_eq!(c.queue_mem_bytes, 512 * 1024);
        assert!(c.optimize_axis && c.optimize_direction);
        assert_eq!(c.queue_cost, CostModel::paper_1999_disk());
    }

    #[test]
    fn unbounded_is_free() {
        let c = JoinConfig::unbounded();
        assert_eq!(c.queue_mem_bytes, usize::MAX);
        assert_eq!(c.queue_cost.page_time(false), 0.0);
    }

    #[test]
    fn with_queue_memory_overrides_only_memory() {
        let c = JoinConfig::with_queue_memory(64 * 1024);
        assert_eq!(c.queue_mem_bytes, 64 * 1024);
        assert!(c.optimize_axis);
    }
}
