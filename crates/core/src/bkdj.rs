//! B-KDJ (§3, Algorithm 1): k-distance join with bidirectional node
//! expansion and the optimized plane sweep.
//!
//! Adapter over the unified engine: B-KDJ is the [`Exact`] pruning policy
//! on the [`Sequential`] backend — the only cutoff is the proven `qDmax`,
//! so stage one finishes the join outright.

use crate::engine::{self, Exact, Sequential};
use crate::{JoinConfig, JoinOutput};
use amdj_rtree::RTree;

/// The B-KDJ k-distance join (Algorithm 1): returns the `k` nearest pairs
/// in ascending distance order.
pub fn b_kdj<const D: usize>(r: &RTree<D>, s: &RTree<D>, k: usize, cfg: &JoinConfig) -> JoinOutput {
    engine::kdj(r, s, k, cfg, &Exact, &Sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn pts(coords: &[(f64, f64)]) -> Vec<(Rect<2>, u64)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new([x, y])), i as u64))
            .collect()
    }

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    fn check_against_brute(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)], k: usize, cfg: &JoinConfig) {
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.to_vec());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.to_vec());
        let out = b_kdj(&r, &s, k, cfg);
        let want = bruteforce::k_closest_pairs(a, b, k);
        assert_eq!(out.results.len(), want.len(), "k={k}");
        for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.dist - exp.dist).abs() < 1e-9,
                "k={k} rank {i}: got {} want {}",
                got.dist,
                exp.dist
            );
        }
        assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn matches_brute_force_on_grids() {
        let a = grid(13, 0.0, 0.0);
        let b = grid(13, 0.27, 0.41);
        for k in [1, 5, 64, 300] {
            check_against_brute(&a, &b, k, &JoinConfig::unbounded());
        }
    }

    #[test]
    fn matches_brute_force_without_sweep_optimizations() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.5, 0.1);
        let cfg = JoinConfig {
            optimize_axis: false,
            optimize_direction: false,
            ..JoinConfig::unbounded()
        };
        for k in [3, 40] {
            check_against_brute(&a, &b, k, &cfg);
        }
    }

    #[test]
    fn matches_brute_force_with_tight_queue_memory() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.33, 0.15);
        let mut cfg = JoinConfig::with_queue_memory(4 * 1024);
        cfg.queue_cost.page_size = 1024;
        for k in [10, 120] {
            check_against_brute(&a, &b, k, &cfg);
        }
    }

    #[test]
    fn k_larger_than_pair_count() {
        let a = pts(&[(0.0, 0.0), (5.0, 0.0)]);
        let b = pts(&[(1.0, 0.0)]);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a);
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b);
        let out = b_kdj(&r, &s, 100, &JoinConfig::unbounded());
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn stats_are_populated() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.4, 0.4);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a);
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b);
        let out = b_kdj(&r, &s, 20, &JoinConfig::unbounded());
        let st = out.stats;
        assert_eq!(st.results, 20);
        assert!(st.real_dist > 0);
        assert!(
            st.axis_dist >= st.real_dist,
            "every real dist was preceded by an axis dist"
        );
        assert!(st.mainq_insertions > 0);
        assert!(st.node_requests >= st.node_disk_reads);
        assert!(st.cpu_seconds > 0.0);
    }

    #[test]
    fn prunes_against_uni_directional_baseline() {
        // The headline claim of §3: far fewer distance computations than
        // uni-directional expansion for the same answer.
        let a = grid(18, 0.0, 0.0);
        let b = grid(18, 0.21, 0.37);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let k = 10;
        let bout = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let hout = crate::hs_kdj(&r, &s, k, &JoinConfig::unbounded());
        assert!(
            bout.stats.real_dist < hout.stats.real_dist,
            "B-KDJ {} vs HS-KDJ {}",
            bout.stats.real_dist,
            hout.stats.real_dist
        );
    }

    #[test]
    fn rect_objects_not_points() {
        let a: Vec<(Rect<2>, u64)> = (0..60)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Rect::new([x, y], [x + 0.8, y + 0.3]), i)
            })
            .collect();
        let b: Vec<(Rect<2>, u64)> = (0..60)
            .map(|i| {
                let x = (i % 10) as f64 + 0.15;
                let y = (i / 10) as f64 + 0.55;
                (Rect::new([x, y], [x + 0.4, y + 0.6]), i)
            })
            .collect();
        check_against_brute(&a, &b, 25, &JoinConfig::unbounded());
    }

    #[test]
    fn identical_datasets_many_zero_distances() {
        let a = grid(7, 0.0, 0.0);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let out = b_kdj(&r, &s, 49, &JoinConfig::unbounded());
        assert_eq!(out.results.len(), 49);
        assert!(out.results.iter().all(|p| p.dist == 0.0));
    }
}
