//! Parallel k-distance and incremental joins (§6 of DESIGN.md).
//!
//! Adapters over the unified engine's [`Parallel`] backend: the frontier
//! is split across workers by a breadth-first expansion of the node-pair
//! space, and every worker — exact or aggressive — clamps its cutoffs to
//! and publishes into a shared lock-free [`MinBound`](crate::MinBound), so
//! one worker's progress tightens every other worker's pruning. See
//! `engine::backend` for the partitioning and exactness arguments.

use crate::engine::{self, Aggressive, Exact, Parallel};
use crate::{AmIdjOptions, AmKdjOptions, JoinConfig, JoinOutput};
use amdj_rtree::RTree;

/// Parallel B-KDJ: frontier-partitioned workers, each running the exact
/// (`qDmax`-only) expansion loop against the shared bound. `threads == 0`
/// selects the available parallelism.
pub fn par_b_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    threads: usize,
) -> JoinOutput {
    engine::kdj(r, s, k, cfg, &Exact, &Parallel::new(threads))
}

/// Parallel AM-KDJ: stage one runs the aggressive policy per worker;
/// retained stage-one state is pooled, the bound tightened from the pooled
/// k best distances, and surviving leftovers plus compensation entries are
/// redistributed to stage-two workers. `threads == 0` selects the
/// available parallelism.
pub fn par_am_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    opts: &AmKdjOptions,
    threads: usize,
) -> JoinOutput {
    let policy = Aggressive {
        edmax_override: opts.edmax_override,
    };
    engine::kdj(r, s, k, cfg, &policy, &Parallel::new(threads))
}

/// Parallel AM-IDJ: each worker advances its own multi-stage incremental
/// cursor over a frontier partition; the shared bound carries the merged
/// stream's k-th distance so exhausted partitions stop early. `threads ==
/// 0` selects the available parallelism.
pub fn par_am_idj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    threads: usize,
) -> JoinOutput {
    engine::idj(r, s, take, cfg, opts, &Parallel::new(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{b_kdj, bruteforce};
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    fn trees(
        a: &[(Rect<2>, u64)],
        b: &[(Rect<2>, u64)],
    ) -> (amdj_rtree::RTree<2>, amdj_rtree::RTree<2>) {
        (
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
        )
    }

    #[test]
    fn matches_brute_force_across_thread_counts() {
        let a = grid(13, 0.0, 0.0);
        let b = grid(13, 0.27, 0.41);
        let (r, s) = trees(&a, &b);
        for threads in [1, 2, 3, 8] {
            for k in [1, 5, 64, 300] {
                let out = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), threads);
                let want = bruteforce::k_closest_pairs(&a, &b, k);
                assert_eq!(out.results.len(), want.len(), "threads={threads} k={k}");
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} k={k} rank {i}: got {} want {}",
                        got.dist,
                        exp.dist
                    );
                }
                assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
            }
        }
    }

    #[test]
    fn agrees_with_sequential_b_kdj() {
        // Irrational-ish offsets keep pair distances tie-free, so the
        // sequential order is already canonical and the comparison exact.
        let a: Vec<(Rect<2>, u64)> = (0..150)
            .map(|i| {
                let x = (i % 15) as f64 * 1.618 + (i as f64 * 0.0137).sin();
                let y = (i / 15) as f64 * 2.414 + (i as f64 * 0.0271).cos();
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        let b: Vec<(Rect<2>, u64)> = (0..150)
            .map(|i| {
                let x = (i % 15) as f64 * 1.732 + 0.37;
                let y = (i / 15) as f64 * 2.236 + 0.89;
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        let (r, s) = trees(&a, &b);
        for k in [1, 17, 80] {
            let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
            let par = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), 4);
            assert_eq!(seq.results.len(), par.results.len(), "k={k}");
            for (x, y) in seq.results.iter().zip(par.results.iter()) {
                assert_eq!((x.r, x.s), (y.r, y.s), "k={k}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let a = grid(6, 0.0, 0.0);
        let b = grid(6, 0.4, 0.2);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 10, &JoinConfig::unbounded(), 0);
        assert_eq!(out.results.len(), 10);
    }

    #[test]
    fn empty_inputs_and_zero_k() {
        let a = grid(4, 0.0, 0.0);
        let empty: Vec<(Rect<2>, u64)> = Vec::new();
        let (r, s) = trees(&a, &empty);
        assert!(par_b_kdj(&r, &s, 5, &JoinConfig::unbounded(), 2)
            .results
            .is_empty());
        let (r, s) = trees(&a, &a);
        assert!(par_b_kdj(&r, &s, 0, &JoinConfig::unbounded(), 2)
            .results
            .is_empty());
    }

    #[test]
    fn k_larger_than_pair_count() {
        let a = grid(3, 0.0, 0.0);
        let b = grid(3, 0.5, 0.5);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 1000, &JoinConfig::unbounded(), 4);
        assert_eq!(out.results.len(), 81);
    }

    #[test]
    fn works_with_tight_queue_memory() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.33, 0.15);
        let (r, s) = trees(&a, &b);
        let mut cfg = JoinConfig::with_queue_memory(4 * 1024);
        cfg.queue_cost.page_size = 1024;
        let out = par_b_kdj(&r, &s, 50, &JoinConfig::unbounded(), 3);
        let tight = par_b_kdj(&r, &s, 50, &cfg, 3);
        for (x, y) in out.results.iter().zip(tight.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.21, 0.37);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 25, &JoinConfig::unbounded(), 4);
        let st = out.stats;
        assert_eq!(st.results, 25);
        assert!(st.real_dist > 0);
        assert!(st.mainq_insertions > 0);
        assert!(st.stage1_expansions > 0);
        assert!(st.node_requests >= st.node_disk_reads);
        assert!(st.cpu_seconds > 0.0);
    }

    #[test]
    fn per_worker_buffer_counters_attribute_traffic() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.21, 0.37);
        let (r, s) = trees(&a, &b);
        let st = par_b_kdj(&r, &s, 25, &JoinConfig::unbounded(), 4).stats;
        assert!(
            st.buffer_hits + st.buffer_misses > 0,
            "a join that touches nodes must see buffer traffic"
        );
        let worker_hits: u64 = st.buffer_hits_by_worker.iter().sum();
        let worker_misses: u64 = st.buffer_misses_by_worker.iter().sum();
        // Totals = workers + the coordinating thread (frontier seeding).
        assert!(worker_hits <= st.buffer_hits);
        assert!(worker_misses <= st.buffer_misses);
        assert!(
            worker_hits + worker_misses > 0,
            "workers do the traversal, so some slot must be nonzero"
        );
        for w in 4..crate::MAX_TRACKED_WORKERS {
            assert_eq!(st.buffer_hits_by_worker[w], 0, "only 4 workers ran");
            assert_eq!(st.buffer_misses_by_worker[w], 0);
        }
        // Sequential joins leave the per-worker arrays untouched.
        let seq = b_kdj(&r, &s, 25, &JoinConfig::unbounded()).stats;
        assert!(seq.buffer_hits + seq.buffer_misses > 0);
        assert_eq!(seq.buffer_hits_by_worker, [0; crate::MAX_TRACKED_WORKERS]);
        assert_eq!(seq.buffer_misses_by_worker, [0; crate::MAX_TRACKED_WORKERS]);
    }

    #[test]
    fn independent_joins_share_trees_concurrently() {
        // The thread-safety smoke test: two unrelated joins run at the
        // same time against the same pair of trees, each through &RTree.
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.4, 0.4);
        let (r, s) = trees(&a, &b);
        let expected = b_kdj(&r, &s, 30, &JoinConfig::unbounded());
        let (out1, out2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| b_kdj(&r, &s, 30, &JoinConfig::unbounded()));
            let h2 = scope.spawn(|| crate::hs_kdj(&r, &s, 30, &JoinConfig::unbounded()));
            (
                h1.join().expect("join 1 panicked"),
                h2.join().expect("join 2 panicked"),
            )
        });
        assert_eq!(out1.results.len(), 30);
        assert_eq!(out2.results.len(), 30);
        for (x, y) in expected.results.iter().zip(out1.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
        for (x, y) in expected.results.iter().zip(out2.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn par_am_kdj_matches_brute_force() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.31, 0.17);
        let (r, s) = trees(&a, &b);
        for threads in [1, 3, 8] {
            for k in [1, 20, 150] {
                let out = par_am_kdj(
                    &r,
                    &s,
                    k,
                    &JoinConfig::unbounded(),
                    &AmKdjOptions::default(),
                    threads,
                );
                let want = bruteforce::k_closest_pairs(&a, &b, k);
                assert_eq!(out.results.len(), want.len(), "threads={threads} k={k}");
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} k={k} rank {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn par_am_kdj_underestimated_edmax_compensates() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.31, 0.17);
        let (r, s) = trees(&a, &b);
        let k = 80;
        let true_dmax = bruteforce::dmax_for_k(&a, &b, k).unwrap();
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        for factor in [0.0, 0.05, 0.4, 0.9] {
            let out = par_am_kdj(
                &r,
                &s,
                k,
                &JoinConfig::unbounded(),
                &AmKdjOptions {
                    edmax_override: Some(true_dmax * factor),
                },
                4,
            );
            assert_eq!(out.results.len(), k, "factor={factor}");
            for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got.dist - exp.dist).abs() < 1e-9,
                    "factor={factor} rank {i}"
                );
            }
            assert_eq!(out.stats.stages, 2, "underestimate must compensate");
            assert!(out.stats.stage2_expansions + out.stats.comp_replays > 0);
        }
    }

    #[test]
    fn par_am_idj_matches_brute_force() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.33, 0.21);
        let (r, s) = trees(&a, &b);
        for threads in [1, 2, 4] {
            for take in [1, 25, 200] {
                let out = par_am_idj(
                    &r,
                    &s,
                    take,
                    &JoinConfig::unbounded(),
                    &AmIdjOptions::default(),
                    threads,
                );
                let want = bruteforce::k_closest_pairs(&a, &b, take);
                assert_eq!(
                    out.results.len(),
                    want.len(),
                    "threads={threads} take={take}"
                );
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} take={take} rank {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn par_am_idj_exhausts_small_product() {
        let a = grid(4, 0.0, 0.0);
        let b = grid(4, 0.3, 0.3);
        let (r, s) = trees(&a, &b);
        let out = par_am_idj(
            &r,
            &s,
            1000,
            &JoinConfig::unbounded(),
            &AmIdjOptions::default(),
            3,
        );
        assert_eq!(out.results.len(), 256, "all 16×16 pairs");
        assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
