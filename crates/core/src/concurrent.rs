//! Concurrent k-distance join over shared trees — the payoff of the
//! `&self` read path.
//!
//! Every query entry point borrows its trees immutably, and
//! `RTree<D>: Send + Sync`, so independent joins can already run
//! concurrently over the same indexes with no coordination at all (each
//! join owns its queues; the trees' page buffers synchronize internally).
//! [`par_b_kdj`] goes one step further and parallelizes a *single* B-KDJ
//! join: the pair space is partitioned at the top of both trees and each
//! partition is processed by its own worker thread running the ordinary
//! Algorithm-1 loop.
//!
//! # Exactness
//!
//! Bidirectional expansion replaces a node pair by the cross product of
//! its children pairs, so every object pair descends from *exactly one*
//! pair of any frontier cut through the expansion DAG. The frontier here
//! is built by expanding node pairs with an infinite pruning cutoff
//! (nothing is dropped) until there are enough pairs to feed every
//! worker; partitioning that frontier therefore partitions the object-pair
//! space. Each worker computes the exact k nearest pairs of its
//! partition, and the global k nearest pairs — each living in exactly one
//! partition, at local rank ≤ k — all survive into the merge, which sorts
//! by `(dist, r, s)` and truncates to `k`.
//!
//! Workers prune only against their *local* `qDmax`, which is never
//! smaller than the global one would be, so parallelism trades some
//! pruning (more distance computations in aggregate) for wall-clock time —
//! the answer is unchanged. Note also that `cfg.queue_mem_bytes` budgets
//! each worker's main queue separately.

use crate::bkdj::{to_result, KdjSink};
use crate::mainq::MainQueue;
use crate::stats::Baseline;
use crate::sweep::{expand_lists, plane_sweep, MarkMode, SweepSink};
use crate::{
    DistanceQueue, Estimator, ItemRef, JoinConfig, JoinOutput, JoinStats, Pair, ResultPair,
};
use amdj_rtree::RTree;

/// Collects every swept pair, pruning nothing — used to split frontier
/// pairs without losing any descendant.
struct CollectAll<const D: usize> {
    pairs: Vec<Pair<D>>,
}

impl<const D: usize> SweepSink<D> for CollectAll<D> {
    fn axis_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn real_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn emit(&mut self, pair: Pair<D>) {
        self.pairs.push(pair);
    }
}

/// Expands the root pair breadth-first (coarsest node pairs first, no
/// pruning) until at least `target` pairs exist or only object pairs
/// remain.
fn seed_frontier<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    cfg: &JoinConfig,
    target: usize,
    stats: &mut JoinStats,
) -> Vec<Pair<D>> {
    let (Some(rb), Some(sb), Some(rp), Some(sp)) =
        (r.bounds(), s.bounds(), r.root_page(), s.root_page())
    else {
        return Vec::new();
    };
    let mut frontier = vec![Pair {
        dist: rb.min_dist(&sb),
        a: ItemRef::Node {
            page: rp.0,
            level: r.height() - 1,
        },
        b: ItemRef::Node {
            page: sp.0,
            level: s.height() - 1,
        },
        a_mbr: rb,
        b_mbr: sb,
    }];
    while frontier.len() < target {
        // Split the coarsest remaining node pair so the frontier stays
        // balanced; stop once only object pairs are left.
        let Some(idx) = frontier
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_result())
            .max_by_key(|(_, p)| pair_level(p))
            .map(|(i, _)| i)
        else {
            break;
        };
        let pair = frontier.swap_remove(idx);
        let (left, right, axis) = expand_lists(r, s, &pair, f64::INFINITY, cfg);
        let mut sink = CollectAll { pairs: Vec::new() };
        plane_sweep(&left, &right, axis, &mut sink, stats, MarkMode::None);
        frontier.append(&mut sink.pairs);
    }
    frontier
}

fn pair_level<const D: usize>(p: &Pair<D>) -> u32 {
    let side = |i: ItemRef| match i {
        ItemRef::Node { level, .. } => level + 1,
        ItemRef::Object { .. } => 0,
    };
    side(p.a).max(side(p.b))
}

/// Runs the plain B-KDJ loop over one partition of the pair space.
fn worker_join<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    seed: Vec<Pair<D>>,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let mut stats = JoinStats::default();
    let mut mainq = MainQueue::new(cfg, est);
    let mut distq = DistanceQueue::new(k);
    let mut results = Vec::with_capacity(k.min(1 << 20));
    for pair in seed {
        let is_result = pair.is_result();
        let dist = pair.dist;
        mainq.push(pair);
        if is_result {
            distq.insert(dist);
        }
    }
    while results.len() < k {
        let Some(pair) = mainq.pop() else { break };
        if pair.is_result() {
            results.push(to_result(&pair));
            continue;
        }
        let cutoff = distq.qdmax();
        let (left, right, axis) = expand_lists(r, s, &pair, cutoff, cfg);
        let mut sink = KdjSink {
            mainq: &mut mainq,
            distq: &mut distq,
        };
        plane_sweep(&left, &right, axis, &mut sink, &mut stats, MarkMode::None);
    }
    stats.distq_insertions = distq.insertions();
    let queue_io = mainq.account(&mut stats);
    (results, stats, queue_io)
}

/// Parallel B-KDJ: the exact k nearest pairs, computed by `threads`
/// workers sharing both trees through `&RTree`.
///
/// `threads == 0` uses [`std::thread::available_parallelism`]. Results are
/// returned in canonical `(dist, r, s)` order — ascending distance, ties
/// broken by object ids — which for tie-free inputs is the same order
/// [`crate::b_kdj`] produces. Aggregate work counters (distance
/// computations, queue insertions) are summed across workers; they exceed
/// the sequential join's because each worker prunes only against its own
/// `qDmax`.
pub fn par_b_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    threads: usize,
) -> JoinOutput {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let est = Estimator::from_trees(r, s);
    let mut results = Vec::new();
    let mut queue_io = 0.0;
    if k > 0 {
        let mut frontier = seed_frontier(r, s, cfg, threads * 4, &mut stats);
        // Ascending by distance, then round-robin, so every worker gets a
        // mix of near and far pairs.
        frontier.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("finite distances"));
        let mut seeds: Vec<Vec<Pair<D>>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, pair) in frontier.into_iter().enumerate() {
            seeds[i % threads].push(pair);
        }
        let est = est.as_ref();
        let worker_outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .into_iter()
                .filter(|seed| !seed.is_empty())
                .map(|seed| scope.spawn(move || worker_join(r, s, k, cfg, est, seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        for (mut part, wstats, wio) in worker_outputs {
            results.append(&mut part);
            stats.real_dist += wstats.real_dist;
            stats.axis_dist += wstats.axis_dist;
            stats.mainq_insertions += wstats.mainq_insertions;
            stats.distq_insertions += wstats.distq_insertions;
            stats.queue_page_reads += wstats.queue_page_reads;
            stats.queue_page_writes += wstats.queue_page_writes;
            queue_io += wio;
        }
        results.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then_with(|| a.r.cmp(&b.r))
                .then_with(|| a.s.cmp(&b.s))
        });
        results.truncate(k);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    JoinOutput { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{b_kdj, bruteforce};
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    fn trees(
        a: &[(Rect<2>, u64)],
        b: &[(Rect<2>, u64)],
    ) -> (amdj_rtree::RTree<2>, amdj_rtree::RTree<2>) {
        (
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
        )
    }

    #[test]
    fn matches_brute_force_across_thread_counts() {
        let a = grid(13, 0.0, 0.0);
        let b = grid(13, 0.27, 0.41);
        let (r, s) = trees(&a, &b);
        for threads in [1, 2, 3, 8] {
            for k in [1, 5, 64, 300] {
                let out = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), threads);
                let want = bruteforce::k_closest_pairs(&a, &b, k);
                assert_eq!(out.results.len(), want.len(), "threads={threads} k={k}");
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} k={k} rank {i}: got {} want {}",
                        got.dist,
                        exp.dist
                    );
                }
                assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
            }
        }
    }

    #[test]
    fn agrees_with_sequential_b_kdj() {
        // Irrational-ish offsets keep pair distances tie-free, so the
        // sequential order is already canonical and the comparison exact.
        let a: Vec<(Rect<2>, u64)> = (0..150)
            .map(|i| {
                let x = (i % 15) as f64 * 1.618 + (i as f64 * 0.0137).sin();
                let y = (i / 15) as f64 * 2.414 + (i as f64 * 0.0271).cos();
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        let b: Vec<(Rect<2>, u64)> = (0..150)
            .map(|i| {
                let x = (i % 15) as f64 * 1.732 + 0.37;
                let y = (i / 15) as f64 * 2.236 + 0.89;
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        let (r, s) = trees(&a, &b);
        for k in [1, 17, 80] {
            let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
            let par = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), 4);
            assert_eq!(seq.results.len(), par.results.len(), "k={k}");
            for (x, y) in seq.results.iter().zip(par.results.iter()) {
                assert_eq!((x.r, x.s), (y.r, y.s), "k={k}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let a = grid(6, 0.0, 0.0);
        let b = grid(6, 0.4, 0.2);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 10, &JoinConfig::unbounded(), 0);
        assert_eq!(out.results.len(), 10);
    }

    #[test]
    fn empty_inputs_and_zero_k() {
        let a = grid(4, 0.0, 0.0);
        let empty: Vec<(Rect<2>, u64)> = Vec::new();
        let (r, s) = trees(&a, &empty);
        assert!(par_b_kdj(&r, &s, 5, &JoinConfig::unbounded(), 2)
            .results
            .is_empty());
        let (r, s) = trees(&a, &a);
        assert!(par_b_kdj(&r, &s, 0, &JoinConfig::unbounded(), 2)
            .results
            .is_empty());
    }

    #[test]
    fn k_larger_than_pair_count() {
        let a = grid(3, 0.0, 0.0);
        let b = grid(3, 0.5, 0.5);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 1000, &JoinConfig::unbounded(), 4);
        assert_eq!(out.results.len(), 81);
    }

    #[test]
    fn works_with_tight_queue_memory() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.33, 0.15);
        let (r, s) = trees(&a, &b);
        let mut cfg = JoinConfig::with_queue_memory(4 * 1024);
        cfg.queue_cost.page_size = 1024;
        let out = par_b_kdj(&r, &s, 50, &JoinConfig::unbounded(), 3);
        let tight = par_b_kdj(&r, &s, 50, &cfg, 3);
        for (x, y) in out.results.iter().zip(tight.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.21, 0.37);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 25, &JoinConfig::unbounded(), 4);
        let st = out.stats;
        assert_eq!(st.results, 25);
        assert!(st.real_dist > 0);
        assert!(st.mainq_insertions > 0);
        assert!(st.node_requests >= st.node_disk_reads);
        assert!(st.cpu_seconds > 0.0);
    }

    #[test]
    fn independent_joins_share_trees_concurrently() {
        // The thread-safety smoke test: two unrelated joins run at the
        // same time against the same pair of trees, each through &RTree.
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.4, 0.4);
        let (r, s) = trees(&a, &b);
        let expected = b_kdj(&r, &s, 30, &JoinConfig::unbounded());
        let (out1, out2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| b_kdj(&r, &s, 30, &JoinConfig::unbounded()));
            let h2 = scope.spawn(|| crate::hs_kdj(&r, &s, 30, &JoinConfig::unbounded()));
            (
                h1.join().expect("join 1 panicked"),
                h2.join().expect("join 2 panicked"),
            )
        });
        assert_eq!(out1.results.len(), 30);
        assert_eq!(out2.results.len(), 30);
        for (x, y) in expected.results.iter().zip(out1.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
        for (x, y) in expected.results.iter().zip(out2.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }
}
