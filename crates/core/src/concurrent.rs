//! Concurrent distance joins over shared trees — the payoff of the
//! `&self` read path.
//!
//! Every query entry point borrows its trees immutably, and
//! `RTree<D>: Send + Sync`, so independent joins can already run
//! concurrently over the same indexes with no coordination at all (each
//! join owns its queues; the trees' page buffers synchronize internally).
//! Three drivers parallelize a *single* join:
//!
//! * [`par_b_kdj`] — B-KDJ, each worker running the ordinary Algorithm-1
//!   loop over one partition of the pair space;
//! * [`par_am_kdj`] — AM-KDJ, same partitioning, but all workers share one
//!   global pruning bound (a lock-free CAS-min cell, [`MinBound`]) and the
//!   compensation stage is itself parallel;
//! * [`par_am_idj`] — the incremental join, one [`crate::AmIdj`] cursor per
//!   partition clamped to the shared bound.
//!
//! # Exactness
//!
//! Bidirectional expansion replaces a node pair by the cross product of
//! its children pairs, so every object pair descends from *exactly one*
//! pair of any frontier cut through the expansion DAG. The frontier here
//! is built by expanding node pairs with an infinite pruning cutoff
//! (nothing is dropped) until there are enough pairs to feed every
//! worker; partitioning that frontier therefore partitions the object-pair
//! space. Each worker computes the exact k nearest pairs of its
//! partition, and the global k nearest pairs — each living in exactly one
//! partition, at local rank ≤ k — all survive into the merge, which sorts
//! by `(dist, r, s)` and truncates to `k`.
//!
//! In [`par_b_kdj`] workers prune only against their *local* `qDmax`,
//! which is never smaller than the global one would be, so parallelism
//! trades some pruning (more distance computations in aggregate) for
//! wall-clock time — the answer is unchanged.
//!
//! # The shared bound
//!
//! [`par_am_kdj`] recovers most of that lost pruning: every worker
//! publishes its `qDmax` into a shared [`MinBound`] whenever it tightens,
//! and every worker's axis and real cutoffs are clamped to the shared
//! value. The clamp is sound because each published value is the k-th
//! smallest of k *real pair distances* — any such value upper-bounds the
//! global `Dmax(k)`, so a pair beyond the shared bound can never be among
//! the global k nearest. The bound is monotone non-increasing by
//! construction (CAS-min), so a stale read is merely a *larger* bound:
//! reads can be `Relaxed` and correctness never depends on timing.
//!
//! Aggressive pruning against the estimated `eDmax` works exactly as in
//! the sequential algorithm, except each worker parks its skipped-pair
//! bookkeeping in a *per-worker* compensation queue (no contention). When
//! every worker has finished its aggressive stage, the leftovers — parked
//! compensation entries and unprocessed main-queue pairs — are pooled,
//! pruned against the now-tight shared bound (each entry's key lower
//! bounds every pair it can still produce), redistributed round-robin, and
//! replayed by a second parallel stage whose cutoffs are exact
//! (`min(qDmax, shared)`), preserving the no-false-dismissals guarantee.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bkdj::{to_result, KdjSink};
use crate::mainq::MainQueue;
use crate::stats::Baseline;
use crate::sweep::{CompEntry, MarkMode, SweepScratch, SweepSink};
use crate::{
    AmIdj, AmIdjOptions, AmKdjOptions, DistanceQueue, Estimator, ItemRef, JoinConfig, JoinOutput,
    JoinStats, Pair, ResultPair,
};
use amdj_rtree::RTree;

/// A lock-free monotone-decreasing `f64` cell: the global pruning bound
/// shared by the workers of one parallel adaptive join.
///
/// The value only ever moves down ([`tighten`](Self::tighten) is a CAS-min
/// loop), so readers may use relaxed loads: a stale value is simply a
/// larger bound, which prunes less but never prunes wrongly. `NaN` inputs
/// are ignored (a `NaN` never compares less than the current value).
pub struct MinBound {
    bits: AtomicU64,
}

impl MinBound {
    /// Creates a bound holding `v` (use `f64::INFINITY` for "no bound
    /// yet").
    pub fn new(v: f64) -> Self {
        MinBound {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// The current bound. Monotone: successive calls never increase.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Lowers the bound to `v` if `v` is smaller; returns whether this
    /// call tightened it.
    pub fn tighten(&self, v: f64) -> bool {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            // NaN compares `None` here and is rejected like any
            // non-smaller value.
            if v.partial_cmp(&f64::from_bits(cur)) != Some(std::cmp::Ordering::Less) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }
}

/// Collects every swept pair, pruning nothing — used to split frontier
/// pairs without losing any descendant.
struct CollectAll<const D: usize> {
    pairs: Vec<Pair<D>>,
}

impl<const D: usize> SweepSink<D> for CollectAll<D> {
    fn axis_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn real_cutoff(&self) -> f64 {
        f64::INFINITY
    }
    fn emit(&mut self, pair: Pair<D>) {
        self.pairs.push(pair);
    }
}

/// Expands the root pair breadth-first (coarsest node pairs first, no
/// pruning) until at least `target` pairs exist or only object pairs
/// remain.
fn seed_frontier<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    cfg: &JoinConfig,
    target: usize,
    stats: &mut JoinStats,
) -> Vec<Pair<D>> {
    let (Some(rb), Some(sb), Some(rp), Some(sp)) =
        (r.bounds(), s.bounds(), r.root_page(), s.root_page())
    else {
        return Vec::new();
    };
    let mut frontier = vec![Pair {
        dist: rb.min_dist(&sb),
        a: ItemRef::Node {
            page: rp.0,
            level: r.height() - 1,
        },
        b: ItemRef::Node {
            page: sp.0,
            level: s.height() - 1,
        },
        a_mbr: rb,
        b_mbr: sb,
    }];
    let mut scratch = SweepScratch::new();
    while frontier.len() < target {
        // Split the coarsest remaining node pair so the frontier stays
        // balanced; stop once only object pairs are left.
        let Some(idx) = frontier
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_result())
            .max_by_key(|(_, p)| pair_level(p))
            .map(|(i, _)| i)
        else {
            break;
        };
        let pair = frontier.swap_remove(idx);
        scratch.expand(r, s, &pair, f64::INFINITY, cfg);
        let mut sink = CollectAll { pairs: Vec::new() };
        scratch.sweep(&mut sink, stats, MarkMode::None);
        frontier.append(&mut sink.pairs);
    }
    frontier
}

fn pair_level<const D: usize>(p: &Pair<D>) -> u32 {
    let side = |i: ItemRef| match i {
        ItemRef::Node { level, .. } => level + 1,
        ItemRef::Object { .. } => 0,
    };
    side(p.a).max(side(p.b))
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Splits `items` (already sorted ascending by urgency) round-robin so
/// every worker gets a mix of near and far work.
fn round_robin<T>(items: Vec<T>, buckets: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % buckets].push(item);
    }
    out
}

/// Sorts results into the canonical `(dist, r, s)` order all parallel
/// drivers merge with.
fn sort_canonical(results: &mut [ResultPair]) {
    results.sort_unstable_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
}

/// Sums one worker's work counters into the driver's stats. Stages,
/// wall-clock and I/O time are the driver's own concern.
fn add_worker_stats(total: &mut JoinStats, w: &JoinStats) {
    total.real_dist += w.real_dist;
    total.axis_dist += w.axis_dist;
    total.mainq_insertions += w.mainq_insertions;
    total.distq_insertions += w.distq_insertions;
    total.compq_insertions += w.compq_insertions;
    total.comp_replays += w.comp_replays;
    total.bound_tightenings += w.bound_tightenings;
    total.stage1_expansions += w.stage1_expansions;
    total.stage2_expansions += w.stage2_expansions;
    total.queue_page_reads += w.queue_page_reads;
    total.queue_page_writes += w.queue_page_writes;
}

/// Runs the plain B-KDJ loop over one partition of the pair space.
fn worker_join<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    seed: Vec<Pair<D>>,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let mut stats = JoinStats::default();
    let mut mainq = MainQueue::new(cfg, est);
    let mut distq = DistanceQueue::new(k);
    let mut scratch = SweepScratch::new();
    let mut results = Vec::with_capacity(k.min(1 << 20));
    for pair in seed {
        let is_result = pair.is_result();
        let dist = pair.dist;
        mainq.push(pair);
        if is_result {
            distq.insert(dist);
        }
    }
    while results.len() < k {
        let Some(pair) = mainq.pop() else { break };
        if pair.is_result() {
            results.push(to_result(&pair));
            continue;
        }
        let cutoff = distq.qdmax();
        scratch.expand(r, s, &pair, cutoff, cfg);
        stats.stage1_expansions += 1;
        let mut sink = KdjSink {
            mainq: &mut mainq,
            distq: &mut distq,
        };
        scratch.sweep(&mut sink, &mut stats, MarkMode::None);
    }
    stats.distq_insertions = distq.insertions();
    let queue_io = mainq.account(&mut stats);
    (results, stats, queue_io)
}

/// Parallel B-KDJ: the exact k nearest pairs, computed by `threads`
/// workers sharing both trees through `&RTree`.
///
/// `threads == 0` uses [`std::thread::available_parallelism`]. Results are
/// returned in canonical `(dist, r, s)` order — ascending distance, ties
/// broken by object ids — which for tie-free inputs is the same order
/// [`crate::b_kdj`] produces. Aggregate work counters (distance
/// computations, queue insertions) are summed across workers; they exceed
/// the sequential join's because each worker prunes only against its own
/// `qDmax`.
pub fn par_b_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    threads: usize,
) -> JoinOutput {
    let threads = resolve_threads(threads);
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let est = Estimator::from_trees(r, s);
    let mut results = Vec::new();
    let mut queue_io = 0.0;
    if k > 0 {
        let mut frontier = seed_frontier(r, s, cfg, threads * 4, &mut stats);
        // Ascending by distance, then round-robin, so every worker gets a
        // mix of near and far pairs.
        frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
        let seeds = round_robin(frontier, threads);
        let est = est.as_ref();
        let worker_outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .into_iter()
                .filter(|seed| !seed.is_empty())
                .map(|seed| scope.spawn(move || worker_join(r, s, k, cfg, est, seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        for (mut part, wstats, wio) in worker_outputs {
            results.append(&mut part);
            add_worker_stats(&mut stats, &wstats);
            queue_io += wio;
        }
        sort_canonical(&mut results);
        results.truncate(k);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    JoinOutput { results, stats }
}

// ---------------------------------------------------------------------------
// Parallel AM-KDJ
// ---------------------------------------------------------------------------

/// Sink for the parallel aggressive stage: axis pruning against the
/// worker's current `eDmax` (already clamped to the shared bound when it
/// was refreshed), real-distance pruning against the *minimum* of the
/// worker's live `qDmax` and the shared bound, and every `qDmax`
/// improvement published.
struct SharedAggressiveSink<'x, const D: usize> {
    mainq: &'x mut MainQueue<D>,
    distq: &'x mut DistanceQueue,
    edmax: f64,
    shared: &'x MinBound,
    tightenings: &'x mut u64,
}

impl<const D: usize> SweepSink<D> for SharedAggressiveSink<'_, D> {
    fn axis_cutoff(&self) -> f64 {
        self.edmax
    }
    fn real_cutoff(&self) -> f64 {
        self.distq.qdmax().min(self.shared.get())
    }
    fn emit(&mut self, pair: Pair<D>) {
        let is_result = pair.is_result();
        let dist = pair.dist;
        self.mainq.push(pair);
        if is_result {
            self.distq.insert(dist);
            let q = self.distq.qdmax();
            if q.is_finite() && self.shared.tighten(q) {
                *self.tightenings += 1;
            }
        }
    }
}

/// Sink for the parallel compensation stage: both cutoffs are
/// `min(qDmax, shared)` — exact in the global sense, so nothing pruned
/// here needs further bookkeeping.
struct SharedKdjSink<'x, const D: usize> {
    mainq: &'x mut MainQueue<D>,
    distq: &'x mut DistanceQueue,
    shared: &'x MinBound,
    tightenings: &'x mut u64,
}

impl<const D: usize> SweepSink<D> for SharedKdjSink<'_, D> {
    fn axis_cutoff(&self) -> f64 {
        self.distq.qdmax().min(self.shared.get())
    }
    fn real_cutoff(&self) -> f64 {
        self.distq.qdmax().min(self.shared.get())
    }
    fn emit(&mut self, pair: Pair<D>) {
        let is_result = pair.is_result();
        let dist = pair.dist;
        self.mainq.push(pair);
        if is_result {
            self.distq.insert(dist);
            let q = self.distq.qdmax();
            if q.is_finite() && self.shared.tighten(q) {
                *self.tightenings += 1;
            }
        }
    }
}

/// Everything one aggressive-stage worker hands back: its emitted
/// results, the main-queue pairs it never processed, its parked
/// compensation entries, and its counters.
struct AggressiveOutcome<const D: usize> {
    results: Vec<ResultPair>,
    leftovers: Vec<Pair<D>>,
    comps: Vec<CompEntry<D>>,
    stats: JoinStats,
    queue_io: f64,
}

/// One worker's aggressive stage (Algorithm 2 over a partition, clamped
/// to the shared bound).
#[allow(clippy::too_many_arguments)]
fn am_aggressive_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    seed: Vec<Pair<D>>,
    edmax0: f64,
    shared: &MinBound,
) -> AggressiveOutcome<D> {
    let mut stats = JoinStats::default();
    let mut mainq = MainQueue::new(cfg, est);
    let mut distq = DistanceQueue::new(k);
    let mut compq = crate::sweep::CompQueue::new();
    let mut scratch = SweepScratch::new();
    let mut results = Vec::with_capacity(k.min(1 << 20));
    let mut edmax = edmax0;
    let mut tightenings = 0u64;
    for pair in seed {
        let is_result = pair.is_result();
        let dist = pair.dist;
        mainq.push(pair);
        if is_result {
            distq.insert(dist);
        }
    }
    while results.len() < k {
        let Some(pair) = mainq.pop() else { break };
        // An overestimated eDmax — locally (k results queued) or globally
        // (another worker's bound) — is detected and tightened here.
        let q = distq.qdmax().min(shared.get());
        if q <= edmax {
            edmax = q;
        }
        // Results beyond eDmax cannot be emitted safely: park the pair and
        // move to the compensation stage.
        if pair.dist > edmax {
            mainq.unpop(pair);
            break;
        }
        if pair.is_result() {
            results.push(to_result(&pair));
            continue;
        }
        scratch.expand(r, s, &pair, edmax, cfg);
        stats.stage1_expansions += 1;
        let mut sink = SharedAggressiveSink {
            mainq: &mut mainq,
            distq: &mut distq,
            edmax,
            shared,
            tightenings: &mut tightenings,
        };
        scratch.sweep(&mut sink, &mut stats, MarkMode::Suffix);
        if !scratch.marks_exhausted() {
            compq.push(scratch.park(pair.dist.max(edmax.next_up())), &mut stats);
        }
    }
    // Drain what's left for redistribution, dropping anything already
    // provably beyond the shared bound (keys lower-bound every pair an
    // entry can still produce).
    let bound = shared.get();
    let mut leftovers = Vec::new();
    while let Some(pair) = mainq.pop() {
        if pair.dist > bound {
            break;
        }
        leftovers.push(pair);
    }
    let mut comps: Vec<CompEntry<D>> = compq.drain_sorted();
    comps.retain(|e| e.key <= bound);
    stats.bound_tightenings = tightenings;
    stats.distq_insertions = distq.insertions();
    let queue_io = mainq.account(&mut stats);
    AggressiveOutcome {
        results,
        leftovers,
        comps,
        stats,
        queue_io,
    }
}

/// One worker's compensation stage: replays redistributed leftovers and
/// parked entries with exact (`min(qDmax, shared)`) cutoffs.
fn am_comp_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    est: Option<&Estimator<D>>,
    work: (Vec<Pair<D>>, Vec<CompEntry<D>>),
    shared: &MinBound,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let (seeds, comps) = work;
    let mut stats = JoinStats::default();
    let mut mainq = MainQueue::new(cfg, est);
    let mut distq = DistanceQueue::new(k);
    let mut compq = crate::sweep::CompQueue::new();
    let mut scratch = SweepScratch::new();
    let mut results = Vec::with_capacity(k.min(1 << 20));
    let mut tightenings = 0u64;
    for pair in seeds {
        let is_result = pair.is_result();
        let dist = pair.dist;
        mainq.push(pair);
        if is_result {
            distq.insert(dist);
        }
    }
    for entry in comps {
        compq.push(entry, &mut stats);
    }
    while results.len() < k {
        let main_key = mainq.peek_min();
        let comp_key = compq.peek_key();
        let (take_main, key) = match (main_key, comp_key) {
            (None, None) => break,
            (Some(m), None) => (true, m),
            (None, Some(c)) => (false, c),
            (Some(m), Some(c)) => (m <= c, m.min(c)),
        };
        // Every remaining local pair has distance ≥ key; once that
        // exceeds both bounds, none can be a global winner.
        if key > distq.qdmax().min(shared.get()) {
            break;
        }
        if take_main {
            let pair = mainq.pop().expect("peeked");
            if pair.is_result() {
                results.push(to_result(&pair));
                continue;
            }
            let cutoff = distq.qdmax().min(shared.get());
            scratch.expand(r, s, &pair, cutoff, cfg);
            stats.stage2_expansions += 1;
            let mut sink = SharedKdjSink {
                mainq: &mut mainq,
                distq: &mut distq,
                shared,
                tightenings: &mut tightenings,
            };
            scratch.sweep(&mut sink, &mut stats, MarkMode::None);
        } else {
            let mut entry = compq.pop().expect("peeked");
            let mut sink = SharedKdjSink {
                mainq: &mut mainq,
                distq: &mut distq,
                shared,
                tightenings: &mut tightenings,
            };
            scratch.compensate(&mut entry, &mut sink, &mut stats);
            // The cutoffs were exact: whatever remains beyond them can
            // never qualify, so the entry is done.
        }
    }
    stats.bound_tightenings += tightenings;
    stats.distq_insertions = distq.insertions();
    let queue_io = mainq.account(&mut stats);
    (results, stats, queue_io)
}

/// Parallel AM-KDJ: the exact k nearest pairs via aggressive `eDmax`
/// pruning, computed by `threads` workers that share one global pruning
/// bound ([`MinBound`]) — so any worker's progress immediately shrinks
/// every other worker's cutoffs — with a parallel compensation stage
/// replaying whatever the aggressive stage skipped.
///
/// `threads == 0` uses [`std::thread::available_parallelism`]. Results are
/// in canonical `(dist, r, s)` order; for tie-free inputs this equals
/// [`crate::am_kdj`]'s output exactly, for every thread count and every
/// `eDmax` estimate (under- or over-estimated). `stats.stages` is 2 iff
/// the compensation stage had work, and `stats.bound_tightenings` counts
/// successful CAS-min publications.
pub fn par_am_kdj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    k: usize,
    cfg: &JoinConfig,
    opts: &AmKdjOptions,
    threads: usize,
) -> JoinOutput {
    let threads = resolve_threads(threads);
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let est = Estimator::from_trees(r, s);
    let edmax0 = opts
        .edmax_override
        .or_else(|| est.map(|e| e.initial(k as u64)))
        .unwrap_or(f64::INFINITY);
    let shared = MinBound::new(f64::INFINITY);
    let mut results = Vec::new();
    let mut queue_io = 0.0;
    if k > 0 {
        let mut frontier = seed_frontier(r, s, cfg, threads * 4, &mut stats);
        frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
        let seeds = round_robin(frontier, threads);
        let est = est.as_ref();
        let shared = &shared;

        // ---- Stage one: aggressive pruning, in parallel ----
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .into_iter()
                .filter(|seed| !seed.is_empty())
                .map(|seed| {
                    scope.spawn(move || {
                        am_aggressive_worker(r, s, k, cfg, est, seed, edmax0, shared)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut leftovers = Vec::new();
        let mut comps = Vec::new();
        for outcome in outcomes {
            results.extend(outcome.results);
            leftovers.extend(outcome.leftovers);
            comps.extend(outcome.comps);
            add_worker_stats(&mut stats, &outcome.stats);
            queue_io += outcome.queue_io;
        }

        // The merged stage-one results tighten the bound once more: with k
        // real pairs in hand, the k-th smallest bounds the global Dmax(k).
        if results.len() >= k {
            let mut dists: Vec<f64> = results.iter().map(|p| p.dist).collect();
            dists.sort_unstable_by(f64::total_cmp);
            if shared.tighten(dists[k - 1]) {
                stats.bound_tightenings += 1;
            }
        }
        let bound = shared.get();
        leftovers.retain(|p| p.dist <= bound);
        comps.retain(|e| e.key <= bound);

        // ---- Stage two: compensation, in parallel ----
        if !leftovers.is_empty() || !comps.is_empty() {
            stats.stages = 2;
            leftovers.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
            comps.sort_unstable_by(|a, b| a.key.total_cmp(&b.key));
            let work: Vec<_> = round_robin(leftovers, threads)
                .into_iter()
                .zip(round_robin(comps, threads))
                .collect();
            let comp_outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .into_iter()
                    .filter(|(pairs, entries)| !pairs.is_empty() || !entries.is_empty())
                    .map(|w| scope.spawn(move || am_comp_worker(r, s, k, cfg, est, w, shared)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (mut part, wstats, wio) in comp_outputs {
                results.append(&mut part);
                add_worker_stats(&mut stats, &wstats);
                queue_io += wio;
            }
        }
        sort_canonical(&mut results);
        results.truncate(k);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    JoinOutput { results, stats }
}

// ---------------------------------------------------------------------------
// Parallel AM-IDJ
// ---------------------------------------------------------------------------

/// One worker of the parallel incremental join: an [`AmIdj`] cursor over a
/// partition, consuming until it has `take` pairs or its stream provably
/// passed the shared bound.
fn idj_worker<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: AmIdjOptions,
    seed: Vec<Pair<D>>,
    shared: &MinBound,
) -> (Vec<ResultPair>, JoinStats, f64) {
    let mut cursor = AmIdj::with_seeds(r, s, cfg, opts, seed, shared);
    // A worker's `take`-th smallest distance bounds the global one (its
    // emitted pairs are a candidate set), so it is publishable.
    let mut distq = DistanceQueue::new(take);
    let mut results = Vec::new();
    let mut tightenings = 0u64;
    while results.len() < take {
        // The cursor's minimum queue key lower-bounds every future
        // emission: stop before doing the work once it passes the bound.
        match cursor.peek_key() {
            Some(key) if key <= shared.get() => {}
            _ => break,
        }
        let Some(pair) = cursor.next() else { break };
        if pair.dist > shared.get() {
            // The stream is ascending; everything later is farther still.
            break;
        }
        distq.insert(pair.dist);
        let q = distq.qdmax();
        if q.is_finite() && shared.tighten(q) {
            tightenings += 1;
        }
        results.push(pair);
    }
    let (mut stats, queue_io) = cursor.finish_worker();
    stats.bound_tightenings += tightenings;
    stats.distq_insertions += distq.insertions();
    (results, stats, queue_io)
}

/// Parallel AM-IDJ driver: the first `take` pairs of the incremental
/// join, computed by `threads` cursor workers sharing one pruning bound.
///
/// Each worker streams its partition in ascending order, publishing its
/// local `take`-th distance into the shared [`MinBound`]; every cursor's
/// stage cutoffs are clamped to the bound, so one worker's progress
/// shrinks the others' sweeps. Results are merged in canonical
/// `(dist, r, s)` order and truncated to `take` — the same *set* of pairs
/// (identical distances) the sequential [`AmIdj`] cursor yields.
/// `threads == 0` uses [`std::thread::available_parallelism`];
/// `stats.stages` reports the deepest stage any worker reached.
pub fn par_am_idj<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    threads: usize,
) -> JoinOutput {
    let threads = resolve_threads(threads);
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let shared = MinBound::new(f64::INFINITY);
    let mut results = Vec::new();
    let mut queue_io = 0.0;
    if take > 0 {
        let mut frontier = seed_frontier(r, s, cfg, threads * 4, &mut stats);
        frontier.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist));
        let seeds = round_robin(frontier, threads);
        let shared = &shared;
        let worker_outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .into_iter()
                .filter(|seed| !seed.is_empty())
                .map(|seed| {
                    let opts = opts.clone();
                    scope.spawn(move || idj_worker(r, s, take, cfg, opts, seed, shared))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        for (mut part, wstats, wio) in worker_outputs {
            results.append(&mut part);
            stats.stages = stats.stages.max(wstats.stages);
            add_worker_stats(&mut stats, &wstats);
            queue_io += wio;
        }
        sort_canonical(&mut results);
        results.truncate(take);
    }
    stats.results = results.len() as u64;
    baseline.finish(r, s, &mut stats, queue_io);
    JoinOutput { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{b_kdj, bruteforce};
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    fn trees(
        a: &[(Rect<2>, u64)],
        b: &[(Rect<2>, u64)],
    ) -> (amdj_rtree::RTree<2>, amdj_rtree::RTree<2>) {
        (
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
        )
    }

    #[test]
    fn matches_brute_force_across_thread_counts() {
        let a = grid(13, 0.0, 0.0);
        let b = grid(13, 0.27, 0.41);
        let (r, s) = trees(&a, &b);
        for threads in [1, 2, 3, 8] {
            for k in [1, 5, 64, 300] {
                let out = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), threads);
                let want = bruteforce::k_closest_pairs(&a, &b, k);
                assert_eq!(out.results.len(), want.len(), "threads={threads} k={k}");
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} k={k} rank {i}: got {} want {}",
                        got.dist,
                        exp.dist
                    );
                }
                assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
            }
        }
    }

    #[test]
    fn agrees_with_sequential_b_kdj() {
        // Irrational-ish offsets keep pair distances tie-free, so the
        // sequential order is already canonical and the comparison exact.
        let a: Vec<(Rect<2>, u64)> = (0..150)
            .map(|i| {
                let x = (i % 15) as f64 * 1.618 + (i as f64 * 0.0137).sin();
                let y = (i / 15) as f64 * 2.414 + (i as f64 * 0.0271).cos();
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        let b: Vec<(Rect<2>, u64)> = (0..150)
            .map(|i| {
                let x = (i % 15) as f64 * 1.732 + 0.37;
                let y = (i / 15) as f64 * 2.236 + 0.89;
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        let (r, s) = trees(&a, &b);
        for k in [1, 17, 80] {
            let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
            let par = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), 4);
            assert_eq!(seq.results.len(), par.results.len(), "k={k}");
            for (x, y) in seq.results.iter().zip(par.results.iter()) {
                assert_eq!((x.r, x.s), (y.r, y.s), "k={k}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let a = grid(6, 0.0, 0.0);
        let b = grid(6, 0.4, 0.2);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 10, &JoinConfig::unbounded(), 0);
        assert_eq!(out.results.len(), 10);
    }

    #[test]
    fn empty_inputs_and_zero_k() {
        let a = grid(4, 0.0, 0.0);
        let empty: Vec<(Rect<2>, u64)> = Vec::new();
        let (r, s) = trees(&a, &empty);
        assert!(par_b_kdj(&r, &s, 5, &JoinConfig::unbounded(), 2)
            .results
            .is_empty());
        let (r, s) = trees(&a, &a);
        assert!(par_b_kdj(&r, &s, 0, &JoinConfig::unbounded(), 2)
            .results
            .is_empty());
    }

    #[test]
    fn k_larger_than_pair_count() {
        let a = grid(3, 0.0, 0.0);
        let b = grid(3, 0.5, 0.5);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 1000, &JoinConfig::unbounded(), 4);
        assert_eq!(out.results.len(), 81);
    }

    #[test]
    fn works_with_tight_queue_memory() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.33, 0.15);
        let (r, s) = trees(&a, &b);
        let mut cfg = JoinConfig::with_queue_memory(4 * 1024);
        cfg.queue_cost.page_size = 1024;
        let out = par_b_kdj(&r, &s, 50, &JoinConfig::unbounded(), 3);
        let tight = par_b_kdj(&r, &s, 50, &cfg, 3);
        for (x, y) in out.results.iter().zip(tight.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_aggregate_across_workers() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.21, 0.37);
        let (r, s) = trees(&a, &b);
        let out = par_b_kdj(&r, &s, 25, &JoinConfig::unbounded(), 4);
        let st = out.stats;
        assert_eq!(st.results, 25);
        assert!(st.real_dist > 0);
        assert!(st.mainq_insertions > 0);
        assert!(st.stage1_expansions > 0);
        assert!(st.node_requests >= st.node_disk_reads);
        assert!(st.cpu_seconds > 0.0);
    }

    #[test]
    fn independent_joins_share_trees_concurrently() {
        // The thread-safety smoke test: two unrelated joins run at the
        // same time against the same pair of trees, each through &RTree.
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.4, 0.4);
        let (r, s) = trees(&a, &b);
        let expected = b_kdj(&r, &s, 30, &JoinConfig::unbounded());
        let (out1, out2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| b_kdj(&r, &s, 30, &JoinConfig::unbounded()));
            let h2 = scope.spawn(|| crate::hs_kdj(&r, &s, 30, &JoinConfig::unbounded()));
            (
                h1.join().expect("join 1 panicked"),
                h2.join().expect("join 2 panicked"),
            )
        });
        assert_eq!(out1.results.len(), 30);
        assert_eq!(out2.results.len(), 30);
        for (x, y) in expected.results.iter().zip(out1.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
        for (x, y) in expected.results.iter().zip(out2.results.iter()) {
            assert!((x.dist - y.dist).abs() < 1e-12);
        }
    }

    #[test]
    fn min_bound_tightens_monotonically() {
        let b = MinBound::new(f64::INFINITY);
        assert!(b.tighten(10.0));
        assert_eq!(b.get(), 10.0);
        assert!(!b.tighten(10.0), "equal value is not a tightening");
        assert!(!b.tighten(11.0), "larger value must be rejected");
        assert_eq!(b.get(), 10.0);
        assert!(b.tighten(3.5));
        assert_eq!(b.get(), 3.5);
        assert!(!b.tighten(f64::NAN), "NaN is ignored");
        assert_eq!(b.get(), 3.5);
        assert!(b.tighten(0.0));
        assert_eq!(b.get(), 0.0);
    }

    #[test]
    fn par_am_kdj_matches_brute_force() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.31, 0.17);
        let (r, s) = trees(&a, &b);
        for threads in [1, 3, 8] {
            for k in [1, 20, 150] {
                let out = par_am_kdj(
                    &r,
                    &s,
                    k,
                    &JoinConfig::unbounded(),
                    &AmKdjOptions::default(),
                    threads,
                );
                let want = bruteforce::k_closest_pairs(&a, &b, k);
                assert_eq!(out.results.len(), want.len(), "threads={threads} k={k}");
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} k={k} rank {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn par_am_kdj_underestimated_edmax_compensates() {
        let a = grid(11, 0.0, 0.0);
        let b = grid(11, 0.31, 0.17);
        let (r, s) = trees(&a, &b);
        let k = 80;
        let true_dmax = bruteforce::dmax_for_k(&a, &b, k).unwrap();
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        for factor in [0.0, 0.05, 0.4, 0.9] {
            let out = par_am_kdj(
                &r,
                &s,
                k,
                &JoinConfig::unbounded(),
                &AmKdjOptions {
                    edmax_override: Some(true_dmax * factor),
                },
                4,
            );
            assert_eq!(out.results.len(), k, "factor={factor}");
            for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got.dist - exp.dist).abs() < 1e-9,
                    "factor={factor} rank {i}"
                );
            }
            assert_eq!(out.stats.stages, 2, "underestimate must compensate");
            assert!(out.stats.stage2_expansions + out.stats.comp_replays > 0);
        }
    }

    #[test]
    fn par_am_idj_matches_brute_force() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.33, 0.21);
        let (r, s) = trees(&a, &b);
        for threads in [1, 2, 4] {
            for take in [1, 25, 200] {
                let out = par_am_idj(
                    &r,
                    &s,
                    take,
                    &JoinConfig::unbounded(),
                    &AmIdjOptions::default(),
                    threads,
                );
                let want = bruteforce::k_closest_pairs(&a, &b, take);
                assert_eq!(
                    out.results.len(),
                    want.len(),
                    "threads={threads} take={take}"
                );
                for (i, (got, exp)) in out.results.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (got.dist - exp.dist).abs() < 1e-9,
                        "threads={threads} take={take} rank {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn par_am_idj_exhausts_small_product() {
        let a = grid(4, 0.0, 0.0);
        let b = grid(4, 0.3, 0.3);
        let (r, s) = trees(&a, &b);
        let out = par_am_idj(
            &r,
            &s,
            1000,
            &JoinConfig::unbounded(),
            &AmIdjOptions::default(),
            3,
        );
        assert_eq!(out.results.len(), 256, "all 16×16 pairs");
        assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
