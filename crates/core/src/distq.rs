use std::collections::BinaryHeap;

use amdj_geom::TotalF64;

/// The *distance queue* (§2.1): a max-heap holding the `k` smallest
/// object-pair distances seen so far. Its maximum is `qDmax`, the proven
/// cutoff — at least `k` candidate pairs lie within it, so anything
/// farther can be pruned.
///
/// Following the paper's footnote 1, only ⟨object, object⟩ distances are
/// inserted (option 2): non-object pairs would enter with their *maximum*
/// distance and almost never lower the cutoff.
#[derive(Debug)]
pub struct DistanceQueue {
    k: usize,
    heap: BinaryHeap<TotalF64>,
    insertions: u64,
}

impl DistanceQueue {
    /// A queue bounded to the `k` smallest distances.
    pub fn new(k: usize) -> Self {
        DistanceQueue {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 20) + 1),
            insertions: 0,
        }
    }

    /// Offers a candidate distance; kept only while it is among the `k`
    /// smallest.
    pub fn insert(&mut self, dist: f64) {
        if self.k == 0 {
            return;
        }
        self.insertions += 1;
        if self.heap.len() < self.k {
            self.heap.push(TotalF64::new(dist));
        } else if dist < self.qdmax() {
            self.heap.pop();
            self.heap.push(TotalF64::new(dist));
        }
    }

    /// Offers a candidate distance without counting it as new work: used
    /// when a parallel stage-two queue is pre-seeded with distances the
    /// stage-one workers already counted on first insertion.
    pub fn seed(&mut self, dist: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(TotalF64::new(dist));
        } else if dist < self.qdmax() {
            self.heap.pop();
            self.heap.push(TotalF64::new(dist));
        }
    }

    /// The distances currently retained (the `k` smallest seen so far),
    /// in no particular order.
    pub fn retained(&self) -> Vec<f64> {
        self.heap.iter().map(|d| d.get()).collect()
    }

    /// The current cutoff `qDmax`: the k-th smallest distance seen, or
    /// `+∞` until `k` distances have been collected.
    pub fn qdmax(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |d| d.get())
        }
    }

    /// Distances currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no distances are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total [`insert`](DistanceQueue::insert) calls (the paper's
    /// distance-queue insertion count).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdmax_infinite_until_full() {
        let mut q = DistanceQueue::new(3);
        q.insert(1.0);
        q.insert(2.0);
        assert_eq!(q.qdmax(), f64::INFINITY);
        q.insert(3.0);
        assert_eq!(q.qdmax(), 3.0);
    }

    #[test]
    fn keeps_k_smallest() {
        let mut q = DistanceQueue::new(3);
        for d in [5.0, 1.0, 4.0, 2.0, 3.0, 10.0] {
            q.insert(d);
        }
        assert_eq!(q.qdmax(), 3.0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn ignores_larger_when_full() {
        let mut q = DistanceQueue::new(2);
        q.insert(1.0);
        q.insert(2.0);
        q.insert(100.0);
        assert_eq!(q.qdmax(), 2.0);
    }

    #[test]
    fn counts_insertions() {
        let mut q = DistanceQueue::new(2);
        for d in [3.0, 2.0, 1.0] {
            q.insert(d);
        }
        assert_eq!(q.insertions(), 3);
    }

    #[test]
    fn zero_k_is_inert() {
        let mut q = DistanceQueue::new(0);
        q.insert(1.0);
        assert!(q.is_empty());
        assert_eq!(q.insertions(), 0);
        // With k = 0 every distance is "beyond the k-th": cutoff is the
        // smallest possible, but we report +∞ only when not full — k = 0
        // means the heap is always "full" of nothing.
        assert_eq!(q.qdmax(), f64::INFINITY);
    }

    #[test]
    fn duplicates_count_separately() {
        let mut q = DistanceQueue::new(3);
        for _ in 0..3 {
            q.insert(7.0);
        }
        assert_eq!(q.qdmax(), 7.0);
        q.insert(6.0);
        assert_eq!(q.qdmax(), 7.0, "one 7.0 replaced, another remains");
    }
}
