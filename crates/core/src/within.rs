//! The ε-distance join: every pair within a fixed distance — the `within`
//! predicate the paper's §1 contrasts with the k-distance join. Exposed as
//! a first-class operation so the library covers the whole
//! distance-join family, and because it is the building block a user
//! reaches for when a cutoff distance *is* known.

use amdj_rtree::RTree;

use crate::sjsort::visit;
use crate::stats::Baseline;
use crate::{JoinConfig, JoinOutput, JoinStats, ResultPair};

/// Returns every ⟨R, S⟩ pair with distance at most `dmax` (boundary
/// inclusive), ascending by distance, using the sync-traversal spatial
/// join with the optimized plane sweep.
///
/// ```
/// use amdj_core::{within_join, JoinConfig};
/// use amdj_geom::{Point, Rect};
/// use amdj_rtree::{RTree, RTreeParams};
///
/// let line = |y: f64| -> Vec<(Rect<2>, u64)> {
///     (0..20).map(|i| (Rect::from_point(Point::new([i as f64, y])), i)).collect()
/// };
/// let mut r = RTree::bulk_load(RTreeParams::for_tests(), line(0.0));
/// let mut s = RTree::bulk_load(RTreeParams::for_tests(), line(0.3));
/// let out = within_join(&r, &s, 0.3, &JoinConfig::unbounded());
/// assert_eq!(out.results.len(), 20, "each point pairs with its opposite");
/// ```
pub fn within_join<const D: usize>(
    r: &RTree<D>,
    s: &RTree<D>,
    dmax: f64,
    cfg: &JoinConfig,
) -> JoinOutput {
    assert!(
        dmax >= 0.0 && dmax.is_finite(),
        "within_join needs a finite cutoff"
    );
    let baseline = Baseline::capture(r, s);
    let mut stats = JoinStats {
        stages: 1,
        ..JoinStats::default()
    };
    let mut results: Vec<ResultPair> = Vec::new();
    if let (Some(rp), Some(sp)) = (r.root_page(), s.root_page()) {
        let mut out = |dist: f64, a: u64, b: u64| results.push(ResultPair { r: a, s: b, dist });
        let mut scratch = crate::engine::sweep::SweepScratch::new();
        visit(r, s, rp, sp, dmax, cfg, &mut out, &mut stats, &mut scratch);
    }
    results.sort_unstable_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    stats.results = results.len() as u64;
    stats.mainq_insertions = stats.results;
    baseline.finish(r, s, &mut stats, 0.0);
    JoinOutput { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(p), i as u64)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.35, 0.2);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        for d in [0.0, 0.41, 1.0, 2.5] {
            let got = within_join(&r, &s, d, &JoinConfig::unbounded());
            let mut want = bruteforce::pairs_within(&a, &b, d);
            want.sort_by(|x, y| {
                x.dist
                    .total_cmp(&y.dist)
                    .then_with(|| x.r.cmp(&y.r))
                    .then_with(|| x.s.cmp(&y.s))
            });
            assert_eq!(got.results.len(), want.len(), "d = {d}");
            for (g, w) in got.results.iter().zip(want.iter()) {
                assert_eq!((g.r, g.s), (w.r, w.s), "d = {d}");
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_distance_finds_touching_pairs() {
        let a = vec![(Rect::new([0.0, 0.0], [1.0, 1.0]), 0u64)];
        let b = vec![
            (Rect::new([1.0, 0.0], [2.0, 1.0]), 0u64), // touching
            (Rect::new([3.0, 0.0], [4.0, 1.0]), 1u64), // apart
            (Rect::new([0.5, 0.5], [0.7, 0.7]), 2u64), // contained
        ];
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a);
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b);
        let out = within_join(&r, &s, 0.0, &JoinConfig::unbounded());
        let ids: Vec<u64> = out.results.iter().map(|p| p.s).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&0) && ids.contains(&2));
    }

    #[test]
    fn empty_inputs_and_stats() {
        let r: amdj_rtree::RTree<2> = amdj_rtree::RTree::new(RTreeParams::for_tests());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), grid(3, 0.0, 0.0));
        let out = within_join(&r, &s, 5.0, &JoinConfig::unbounded());
        assert!(out.results.is_empty());
        assert_eq!(out.stats.results, 0);
    }

    #[test]
    fn agrees_with_kdj_prefix() {
        // The within-join at the k-th distance must contain the k-distance
        // join's results as a prefix (ties aside, counts must cover k).
        let a = grid(9, 0.0, 0.0);
        let b = grid(9, 0.45, 0.3);
        let r = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.clone());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.clone());
        let k = 60;
        let kdj = crate::b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let dmax = kdj.results.last().unwrap().dist;
        let wj = within_join(&r, &s, dmax, &JoinConfig::unbounded());
        assert!(wj.results.len() >= k);
        for (g, w) in wj.results.iter().zip(kdj.results.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
    }
}
