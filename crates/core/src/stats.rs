use amdj_rtree::{thread_buffer_stats, AccessStats, RTree};

/// Worker slots tracked by the per-worker buffer counters in
/// [`JoinStats`]. Joins running more workers fold the excess into the
/// last slot (the struct stays `Copy`, so the arrays are fixed-size).
pub const MAX_TRACKED_WORKERS: usize = 16;

/// One k-distance-join result: an object from R, an object from S, and the
/// distance between them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResultPair {
    /// Object id from the outer (R) data set.
    pub r: u64,
    /// Object id from the inner (S) data set.
    pub s: u64,
    /// Distance between the objects' MBRs.
    pub dist: f64,
}

/// The counters the paper's evaluation plots, accumulated over one join.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JoinStats {
    /// Real (Euclidean) distance computations (Figures 10a/12a/14a).
    pub real_dist: u64,
    /// Axis-distance computations made by the plane sweep (Figure 11).
    pub axis_dist: u64,
    /// Candidates the quantized integer prefilter rejected: their integer
    /// lower bound already exceeded the live real cutoff, so the exact
    /// distance was provably above it too. Zero when
    /// `JoinConfig::quantized_prefilter` is off or the sweep records
    /// rejected distances (AM-IDJ's full marks need them).
    pub quantized_rejects: u64,
    /// Exact `f64` distance + sqrt computations the prefilter made
    /// unnecessary. On every workload this equals [`Self::quantized_rejects`]
    /// (one skipped computation per rejected candidate) and the invariant
    /// `real_dist(prefilter on) + exact_dist_skipped == real_dist(off)`
    /// holds; kept as its own counter so `real_dist` keeps meaning
    /// "distances actually computed" in every figure.
    pub exact_dist_skipped: u64,
    /// Main-queue insertions (Figures 10b/12b/14b). For SJ-SORT this
    /// counts sorter insertions, its analogous unit of queue work.
    pub mainq_insertions: u64,
    /// Distance-queue insertions.
    pub distq_insertions: u64,
    /// Compensation-queue insertions (AM algorithms only).
    pub compq_insertions: u64,
    /// Compensation sweeps replayed (AM algorithms only): how often a
    /// parked expansion's skipped pairs were re-examined.
    pub comp_replays: u64,
    /// Successful tightenings of the shared pruning bound (parallel
    /// adaptive joins only): how often one worker's progress shrank every
    /// other worker's cutoffs.
    pub bound_tightenings: u64,
    /// Work items (frontier pairs, stage-two pairs, compensation entries)
    /// a parallel worker took from a peer's deque instead of idling
    /// (work-stealing backend only; zero when `JoinConfig::steal` is off
    /// or a single worker runs).
    pub pairs_stolen: u64,
    /// Steal probes: how often a drained worker locked a peer's deque
    /// looking for work, successful or not.
    pub steal_attempts: u64,
    /// Total nanoseconds workers spent finished-but-waiting at a stage
    /// barrier (the sum over workers of `last_finish − own_finish` per
    /// stage). The load-balance figure work stealing exists to shrink.
    pub barrier_idle_ns: u64,
    /// Node-pair expansions performed during the aggressive stage (stage
    /// 1); with [`Self::stage2_expansions`] this attributes traversal work
    /// per stage even when tree-level access counters are shared across
    /// concurrent workers.
    pub stage1_expansions: u64,
    /// Node-pair expansions performed during the compensation stage
    /// (stage 2).
    pub stage2_expansions: u64,
    /// Logical R-tree node accesses, both trees (Table 2's parenthesized
    /// "no buffer" figure).
    pub node_requests: u64,
    /// R-tree nodes actually fetched from disk (Table 2's main figure).
    pub node_disk_reads: u64,
    /// R-tree buffer hits observed by this join's own threads (workers
    /// plus the coordinating thread). Like `node_disk_reads`, this
    /// depends on buffer state carried across runs, so it is excluded
    /// from cross-run parity comparisons.
    pub buffer_hits: u64,
    /// R-tree buffer misses observed by this join's own threads.
    pub buffer_misses: u64,
    /// Pages this join's own threads evicted from the shared node
    /// buffer to make room for their fetches — the per-query share of
    /// the buffer's eviction pressure. Like the hit/miss counters this
    /// depends on buffer state carried across runs, so it is excluded
    /// from cross-run parity comparisons.
    pub buffer_evictions: u64,
    /// Per-worker buffer hits: slot `w` belongs to parallel worker `w`
    /// (workers past [`MAX_TRACKED_WORKERS`] fold into the last slot).
    /// The cache-residency figure locality partitioning exists to
    /// improve. Sequential joins leave the array zero — their fetches
    /// appear only in [`Self::buffer_hits`].
    pub buffer_hits_by_worker: [u64; MAX_TRACKED_WORKERS],
    /// Per-worker buffer misses, laid out like
    /// [`Self::buffer_hits_by_worker`].
    pub buffer_misses_by_worker: [u64; MAX_TRACKED_WORKERS],
    /// Partition pairs the plan layer enumerated (partitioned execution
    /// only: `JoinConfig::partitions` ≥ 2). Zero for monolithic joins.
    pub partition_pairs_total: u64,
    /// Partition pairs the bounds-only pre-filter discarded because their
    /// MBR mindist exceeded the global `eDmax` estimate. Each pruned pair
    /// is remembered as a partition-level compensation entry; the ledger
    /// `partition_pairs_pruned == partition_pairs_replayed +
    /// partition_pairs_never_needed` always balances.
    pub partition_pairs_pruned: u64,
    /// Pruned partition pairs the plan had to replay after all: the final
    /// proven qDmax turned out larger than their MBR mindist, so the
    /// bounds-only test alone could not exclude them (the estimate was
    /// too tight).
    pub partition_pairs_replayed: u64,
    /// Pruned partition pairs whose MBR mindist exceeded even the final
    /// proven qDmax — the bounds-only discard was conclusively sound and
    /// those partitions' point data was never touched.
    pub partition_pairs_never_needed: u64,
    /// Pages read by queue/sort spill traffic.
    pub queue_page_reads: u64,
    /// Pages written by queue/sort spill traffic.
    pub queue_page_writes: u64,
    /// Results produced.
    pub results: u64,
    /// Number of processing stages executed (1 for single-stage
    /// algorithms; ≥ 1 for AM-KDJ/AM-IDJ).
    pub stages: u32,
    /// Measured compute wall time, seconds.
    pub cpu_seconds: f64,
    /// Modeled I/O time, seconds (tree disks + queue disks, per the cost
    /// model).
    pub io_seconds: f64,
}

impl JoinStats {
    /// The paper's "response time": compute time plus modeled I/O time.
    pub fn response_time(&self) -> f64 {
        self.cpu_seconds + self.io_seconds
    }

    /// A period-faithful response time: modeled I/O plus a *modeled* CPU
    /// cost calibrated to the paper's 1999 testbed (a ~300 MHz
    /// UltraSPARC-II), where each distance computation and queue operation
    /// cost microseconds rather than nanoseconds. On modern hardware the
    /// measured CPU component all but vanishes, compressing the response
    /// time ratios the paper reports; this model reconstructs the regime
    /// in which CPU work and I/O both mattered. The constants are
    /// order-of-magnitude calibrations, not measurements.
    pub fn response_time_1999(&self) -> f64 {
        const AXIS_DIST: f64 = 0.2e-6;
        const REAL_DIST: f64 = 0.8e-6;
        const QUEUE_INSERT: f64 = 4.0e-6;
        const DISTQ_INSERT: f64 = 2.0e-6;
        const NODE_VISIT: f64 = 10.0e-6;
        self.io_seconds
            + self.axis_dist as f64 * AXIS_DIST
            + self.real_dist as f64 * REAL_DIST
            + self.mainq_insertions as f64 * QUEUE_INSERT
            + self.distq_insertions as f64 * DISTQ_INSERT
            + self.node_requests as f64 * NODE_VISIT
    }

    /// All distance computations (axis + real), the quantity of Figure 11.
    pub fn total_dist_computations(&self) -> u64 {
        self.real_dist + self.axis_dist
    }

    /// Folds one parallel worker's counters into an aggregate. Work
    /// counters *sum*: every unit of work — a distance computation, a
    /// queue insertion (counted once, when a pair first enters a queue),
    /// an expansion, a compensation replay — happens in exactly one
    /// worker, so on one thread the totals equal the sequential join's.
    /// Driver-owned fields (`results`, `stages`, node access deltas,
    /// `barrier_idle_ns` — measured by the backend across a whole stage —
    /// wall-clock and I/O time) are left to the driver.
    pub fn absorb_worker(&mut self, w: &JoinStats) {
        self.real_dist += w.real_dist;
        self.axis_dist += w.axis_dist;
        self.quantized_rejects += w.quantized_rejects;
        self.exact_dist_skipped += w.exact_dist_skipped;
        self.mainq_insertions += w.mainq_insertions;
        self.distq_insertions += w.distq_insertions;
        self.compq_insertions += w.compq_insertions;
        self.comp_replays += w.comp_replays;
        self.bound_tightenings += w.bound_tightenings;
        self.pairs_stolen += w.pairs_stolen;
        self.steal_attempts += w.steal_attempts;
        self.stage1_expansions += w.stage1_expansions;
        self.stage2_expansions += w.stage2_expansions;
        self.partition_pairs_total += w.partition_pairs_total;
        self.partition_pairs_pruned += w.partition_pairs_pruned;
        self.partition_pairs_replayed += w.partition_pairs_replayed;
        self.partition_pairs_never_needed += w.partition_pairs_never_needed;
        self.queue_page_reads += w.queue_page_reads;
        self.queue_page_writes += w.queue_page_writes;
        self.buffer_hits += w.buffer_hits;
        self.buffer_misses += w.buffer_misses;
        self.buffer_evictions += w.buffer_evictions;
        for (a, b) in self
            .buffer_hits_by_worker
            .iter_mut()
            .zip(&w.buffer_hits_by_worker)
        {
            *a += b;
        }
        for (a, b) in self
            .buffer_misses_by_worker
            .iter_mut()
            .zip(&w.buffer_misses_by_worker)
        {
            *a += b;
        }
    }
}

/// Attributes the calling thread's buffer hits and misses over one
/// worker's run to that worker's [`JoinStats`] slot: capture at worker
/// start, [`record`](WorkerBufferSpan::record) at worker end. Works
/// because each parallel worker owns its spawned thread for its whole
/// run, so the thread-local delta is exactly the worker's traffic.
pub(crate) struct WorkerBufferSpan {
    worker: usize,
    hits0: u64,
    misses0: u64,
    evictions0: u64,
}

impl WorkerBufferSpan {
    pub(crate) fn begin(worker: usize) -> Self {
        let (hits0, misses0, evictions0) = thread_buffer_stats();
        WorkerBufferSpan {
            worker,
            hits0,
            misses0,
            evictions0,
        }
    }

    pub(crate) fn record(self, stats: &mut JoinStats) {
        let (h, m, e) = thread_buffer_stats();
        let (dh, dm) = (h - self.hits0, m - self.misses0);
        let slot = self.worker.min(MAX_TRACKED_WORKERS - 1);
        stats.buffer_hits += dh;
        stats.buffer_misses += dm;
        stats.buffer_evictions += e - self.evictions0;
        stats.buffer_hits_by_worker[slot] += dh;
        stats.buffer_misses_by_worker[slot] += dm;
    }
}

/// Results plus statistics of one join execution.
#[derive(Clone, Debug)]
pub struct JoinOutput {
    /// The k nearest pairs, ascending by distance.
    pub results: Vec<ResultPair>,
    /// Work counters.
    pub stats: JoinStats,
}

/// Captures tree counters at join start so a join can report deltas even
/// when the caller reuses trees across runs.
pub(crate) struct Baseline {
    r_acc: AccessStats,
    s_acc: AccessStats,
    r_io: f64,
    s_io: f64,
    buf_hits: u64,
    buf_misses: u64,
    buf_evictions: u64,
    started: std::time::Instant,
}

impl Baseline {
    pub(crate) fn capture<const D: usize>(r: &RTree<D>, s: &RTree<D>) -> Self {
        let (buf_hits, buf_misses, buf_evictions) = thread_buffer_stats();
        Baseline {
            r_acc: r.access_stats(),
            s_acc: s.access_stats(),
            r_io: r.disk_stats().io_seconds,
            s_io: s.disk_stats().io_seconds,
            buf_hits,
            buf_misses,
            buf_evictions,
            started: std::time::Instant::now(),
        }
    }

    /// Folds tree deltas and elapsed time into `stats`. `queue_io_seconds`
    /// is the total modeled I/O of any queues/sorters the join owned.
    pub(crate) fn finish<const D: usize>(
        self,
        r: &RTree<D>,
        s: &RTree<D>,
        stats: &mut JoinStats,
        queue_io_seconds: f64,
    ) {
        let ra = r.access_stats();
        let sa = s.access_stats();
        stats.node_requests +=
            (ra.requests - self.r_acc.requests) + (sa.requests - self.s_acc.requests);
        stats.node_disk_reads +=
            (ra.disk_reads - self.r_acc.disk_reads) + (sa.disk_reads - self.s_acc.disk_reads);
        let tree_io =
            (r.disk_stats().io_seconds - self.r_io) + (s.disk_stats().io_seconds - self.s_io);
        stats.io_seconds += tree_io + queue_io_seconds;
        // The coordinating thread's own buffer traffic (sequential joins:
        // all of it; parallel joins: frontier seeding) — workers report
        // their per-thread deltas separately via `WorkerBufferSpan`.
        let (h, m, e) = thread_buffer_stats();
        stats.buffer_hits += h - self.buf_hits;
        stats.buffer_misses += m - self.buf_misses;
        stats.buffer_evictions += e - self.buf_evictions;
        stats.cpu_seconds += self.started.elapsed().as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_sums_components() {
        let s = JoinStats {
            cpu_seconds: 1.5,
            io_seconds: 2.5,
            ..JoinStats::default()
        };
        assert_eq!(s.response_time(), 4.0);
    }

    #[test]
    fn total_dist_sums_axis_and_real() {
        let s = JoinStats {
            real_dist: 10,
            axis_dist: 32,
            ..JoinStats::default()
        };
        assert_eq!(s.total_dist_computations(), 42);
    }
}
