//! AM-IDJ (§4.2): the adaptive multi-stage *incremental* distance join.
//!
//! Adapter over the unified engine: the cursor wraps the engine's
//! [`StageDriver`], which owns the stage loop (`k₁ < k₂ < …`, the §4.3.2
//! eDmax corrections, and per-stage compensation) and is shared with the
//! parallel incremental backend.

use amdj_rtree::RTree;

use crate::engine::StageDriver;
use crate::{AmIdjOptions, JoinConfig, JoinStats, ResultPair};

/// The AM-IDJ cursor: call [`next`](AmIdj::next) repeatedly; stages are
/// managed internally.
///
/// ```
/// use amdj_core::{AmIdj, AmIdjOptions, JoinConfig};
/// use amdj_geom::{Point, Rect};
/// use amdj_rtree::{RTree, RTreeParams};
///
/// let pts = |off: f64| -> Vec<(Rect<2>, u64)> {
///     (0..49).map(|i| {
///         let p = Point::new([(i % 7) as f64 + off, (i / 7) as f64]);
///         (Rect::from_point(p), i)
///     }).collect()
/// };
/// let mut r = RTree::bulk_load(RTreeParams::for_tests(), pts(0.0));
/// let mut s = RTree::bulk_load(RTreeParams::for_tests(), pts(0.4));
/// let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
/// let mut prev = 0.0;
/// for _ in 0..20 {
///     let pair = cursor.next().expect("plenty of pairs");
///     assert!(pair.dist >= prev);     // ascending stream
///     prev = pair.dist;
/// }
/// ```
pub struct AmIdj<'a, const D: usize> {
    driver: StageDriver<'a, D>,
}

impl<'a, const D: usize> AmIdj<'a, D> {
    /// Starts an incremental join over two indexes.
    pub fn new(r: &'a RTree<D>, s: &'a RTree<D>, cfg: &JoinConfig, opts: AmIdjOptions) -> Self {
        AmIdj {
            driver: StageDriver::new(r, s, cfg, opts),
        }
    }

    /// The stage currently executing (1-based).
    pub fn stage(&self) -> u32 {
        self.driver.stage()
    }

    /// The cutoff currently in force.
    pub fn current_edmax(&self) -> f64 {
        self.driver.current_edmax()
    }

    /// Produces the next nearest pair, advancing stages as needed;
    /// `None` when every pair has been produced.
    #[allow(clippy::should_implement_trait)] // deliberate cursor API; &mut borrows preclude Iterator
    pub fn next(&mut self) -> Option<ResultPair> {
        self.driver.next()
    }

    /// A snapshot of the work done so far.
    pub fn stats(&self) -> JoinStats {
        self.driver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::{Correction, EdmaxPolicy};
    use amdj_geom::{Point, Rect};
    use amdj_rtree::RTreeParams;

    fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                let p = Point::new([(i % n) as f64 + dx, (i / n) as f64 + dy]);
                (Rect::from_point(Point::new([p[0], p[1]])), i as u64)
            })
            .collect()
    }

    fn trees(
        a: &[(Rect<2>, u64)],
        b: &[(Rect<2>, u64)],
    ) -> (amdj_rtree::RTree<2>, amdj_rtree::RTree<2>) {
        (
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
            amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
        )
    }

    fn check_stream(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)], take: usize, opts: AmIdjOptions) {
        let (r, s) = trees(a, b);
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), opts);
        let want = bruteforce::k_closest_pairs(a, b, take);
        let mut got = Vec::new();
        for _ in 0..take {
            match cursor.next() {
                Some(p) => got.push(p),
                None => break,
            }
        }
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g.dist - w.dist).abs() < 1e-9,
                "rank {i}: got {} want {}",
                g.dist,
                w.dist
            );
        }
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn streams_match_brute_force() {
        let a = grid(12, 0.0, 0.0);
        let b = grid(12, 0.29, 0.41);
        check_stream(&a, &b, 300, AmIdjOptions::default());
    }

    #[test]
    fn tiny_initial_k_forces_many_stages() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.33, 0.21);
        let opts = AmIdjOptions {
            initial_k: 1,
            growth: 1.5,
            ..AmIdjOptions::default()
        };
        let (r, s) = trees(&a, &b);
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), opts);
        let want = bruteforce::k_closest_pairs(&a, &b, 200);
        for (i, w) in want.iter().enumerate() {
            let g = cursor.next().unwrap_or_else(|| panic!("exhausted at {i}"));
            assert!((g.dist - w.dist).abs() < 1e-9, "rank {i}");
        }
        assert!(cursor.stage() > 1, "must have advanced stages");
    }

    #[test]
    fn schedule_policy_with_real_dmax() {
        let a = grid(10, 0.0, 0.0);
        let b = grid(10, 0.4, 0.3);
        let d30 = bruteforce::dmax_for_k(&a, &b, 30).unwrap();
        let d60 = bruteforce::dmax_for_k(&a, &b, 60).unwrap();
        let d90 = bruteforce::dmax_for_k(&a, &b, 90).unwrap();
        let opts = AmIdjOptions {
            initial_k: 30,
            growth: 2.0,
            edmax: EdmaxPolicy::Schedule(vec![d30, d60, d90]),
        };
        check_stream(&a, &b, 90, opts);
    }

    #[test]
    fn exhausts_the_full_cartesian_product() {
        let a = grid(4, 0.0, 0.0);
        let b = grid(4, 0.3, 0.3);
        let (r, s) = trees(&a, &b);
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
        let mut n = 0;
        let mut prev = -1.0;
        while let Some(p) = cursor.next() {
            assert!(p.dist >= prev);
            prev = p.dist;
            n += 1;
        }
        assert_eq!(n, 256, "all 16×16 pairs stream out");
        assert!(cursor.next().is_none());
    }

    #[test]
    fn underestimating_schedule_still_exact() {
        // Schedule far below the real distances: every stage compensates.
        let a = grid(9, 0.0, 0.0);
        let b = grid(9, 0.37, 0.19);
        let opts = AmIdjOptions {
            initial_k: 8,
            growth: 2.0,
            edmax: EdmaxPolicy::Schedule(vec![1e-6, 2e-6, 4e-6]),
        };
        check_stream(&a, &b, 120, opts);
    }

    #[test]
    fn stats_accumulate() {
        let a = grid(8, 0.0, 0.0);
        let b = grid(8, 0.5, 0.5);
        let (r, s) = trees(&a, &b);
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
        for _ in 0..40 {
            cursor.next().unwrap();
        }
        let st = cursor.stats();
        assert_eq!(st.results, 40);
        assert!(st.real_dist > 0);
        assert!(st.node_requests > 0);
        assert!(st.cpu_seconds > 0.0);
    }

    #[test]
    fn empty_side_yields_nothing() {
        let r: amdj_rtree::RTree<2> = amdj_rtree::RTree::new(RTreeParams::for_tests());
        let s = amdj_rtree::RTree::bulk_load(RTreeParams::for_tests(), grid(3, 0.0, 0.0));
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
        assert!(cursor.next().is_none());
    }

    #[test]
    fn min_of_both_correction_still_exact() {
        let a = grid(9, 0.0, 0.0);
        let b = grid(9, 0.21, 0.43);
        let opts = AmIdjOptions {
            initial_k: 4,
            growth: 2.0,
            edmax: EdmaxPolicy::Estimated(Correction::MinOfBoth),
        };
        check_stream(&a, &b, 150, opts);
    }
}
