//! Experiment harness for reproducing the paper's evaluation (§5).
//!
//! Each binary in `src/bin/` regenerates one table or figure; this library
//! carries the shared pieces: the TIGER-like workload, tree construction
//! at the paper's configuration, per-run state reset, the `Dmax` oracle,
//! and plain-text table rendering.
//!
//! Environment knobs (all optional):
//!
//! * `AMDJ_SCALE` — workload scale relative to the paper's cardinalities
//!   (default 0.19 ⇒ ~120k streets / ~36k hydro objects);
//! * `AMDJ_SEED` — workload seed (default 2000);
//! * `AMDJ_KMAX` — cap on the largest k the sweeps use (default 100000).

#![deny(unsafe_code)]

pub mod experiments;

use amdj_core::{b_kdj, JoinConfig};
use amdj_datagen::tiger;
use amdj_datagen::Dataset;
use amdj_rtree::{RTree, RTreeParams};

/// A generated workload: the two data sets to join.
pub struct Workload {
    /// The outer (R) set — street segments.
    pub streets: Dataset,
    /// The inner (S) set — hydrographic objects.
    pub hydro: Dataset,
}

/// Reads an `f64` env knob.
fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` env knob.
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The workload scale (`AMDJ_SCALE`, default 0.19).
pub fn scale() -> f64 {
    env_f64("AMDJ_SCALE", 0.19)
}

/// The workload seed (`AMDJ_SEED`, default 2000).
pub fn seed() -> u64 {
    env_u64("AMDJ_SEED", 2000)
}

/// The largest k used by sweeps (`AMDJ_KMAX`, default 100,000).
pub fn k_max() -> usize {
    env_u64("AMDJ_KMAX", 100_000) as usize
}

/// The standard k sweep of §5.2/§5.4, clipped to [`k_max`].
pub fn k_sweep() -> Vec<usize> {
    [10usize, 100, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&k| k <= k_max())
        .collect()
}

/// Generates the Arizona-like workload at the configured scale.
pub fn arizona() -> Workload {
    let (streets, hydro) = tiger::arizona_workload(scale(), seed());
    Workload { streets, hydro }
}

/// Builds the two R*-trees at the paper's configuration with the given
/// node-buffer budget.
pub fn build_trees(w: &Workload, buffer_bytes: usize) -> (RTree<2>, RTree<2>) {
    let params = RTreeParams {
        buffer_bytes,
        ..RTreeParams::paper_defaults()
    };
    let r = RTree::bulk_load(params.clone(), w.streets.clone());
    let s = RTree::bulk_load(params, w.hydro.clone());
    (r, s)
}

/// Cold-starts both trees for a measured run: clears buffers, resets
/// counters.
pub fn reset(r: &RTree<2>, s: &RTree<2>) {
    r.clear_buffer();
    s.clear_buffer();
    r.reset_stats();
    s.reset_stats();
}

/// The true `Dmax` for `k` — the paper's favorable SJ-SORT input —
/// obtained by running B-KDJ with unbounded memory.
pub fn oracle_dmax(r: &RTree<2>, s: &RTree<2>, k: usize) -> f64 {
    let out = b_kdj(r, s, k, &JoinConfig::unbounded());
    out.results.last().map_or(0.0, |p| p.dist)
}

/// A plain-text table with right-aligned columns.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table row arity");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}s")
    } else if v >= 1.0 {
        format!("{v:.1}s")
    } else {
        format!("{:.0}ms", v * 1000.0)
    }
}

/// Prints the standard experiment banner (workload sizes, configuration).
pub fn banner(name: &str, w: &Workload) {
    println!(
        "[{name}] workload: {} streets × {} hydro (scale {}, seed {})",
        fmt_count(w.streets.len() as u64),
        fmt_count(w.hydro.len() as u64),
        scale(),
        seed()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["k", "value"]);
        t.row(vec!["10".into(), "1,234".into()]);
        t.row(vec!["100000".into(), "5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("100000"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.0123), "12ms");
        assert_eq!(fmt_secs(2.34), "2.3s");
        assert_eq!(fmt_secs(123.4), "123s");
    }

    #[test]
    fn k_sweep_respects_cap() {
        // Default cap includes everything.
        assert!(k_sweep().contains(&100_000) || k_max() < 100_000);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
