//! Regenerates the paper's Figure 13 (see DESIGN.md for the experiment index).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::figure13(&w);
}
