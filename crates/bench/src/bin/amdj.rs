//! `amdj` — a small command-line front end for the library: generate
//! workloads, build persistent indexes, and run every join operation
//! against them.
//!
//! ```text
//! amdj generate --kind tiger-streets|tiger-hydro|uniform|clustered --n N [--seed S] --out data.csv
//! amdj build    --input data.csv --out index.amdj
//! amdj kdj      --r a.amdj --s b.amdj --k K [--algo am|b|hs|par|par-am] [--threads T]
//! amdj idj      --r a.amdj --s b.amdj --take N [--batch B] [--algo am|par-am] [--threads T]
//! amdj within   --r a.amdj --s b.amdj --dist D
//! amdj knn      --r a.amdj --s b.amdj --k K
//! amdj bench    [--n N] [--k K] [--seed S] [--json [FILE]]
//! ```
//!
//! CSV rows are `lo_x,lo_y,hi_x,hi_y,id`. Index files are the persistent
//! R*-tree format of `amdj-rtree` (4 KB pages, paper configuration).

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;

use amdj_core::{
    am_kdj, b_kdj, hs_kdj, knn_join, par_am_idj, par_am_kdj, par_b_kdj, sj_sort, within_join,
    AmIdj, AmIdjOptions, AmKdjOptions, HsIdj, JoinConfig, JoinOutput, Partition,
};
use amdj_datagen::{clustered_points, tiger::Geography, uniform_points, unit_universe, Dataset};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  amdj generate --kind tiger-streets|tiger-hydro|uniform|clustered --n N [--seed S] --out data.csv\n  amdj build    --input data.csv --out index.amdj\n  amdj kdj      --r a.amdj --s b.amdj --k K [--algo am|b|hs|par|par-am] [--threads T]\n  amdj idj      --r a.amdj --s b.amdj --take N [--batch B] [--algo am|par-am] [--threads T]\n  amdj within   --r a.amdj --s b.amdj --dist D\n  amdj knn      --r a.amdj --s b.amdj --k K\n  amdj bench    [--n N] [--k K] [--seed S] [--json [FILE]]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        // A flag followed by another flag (or nothing) is boolean-valued.
        let value = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        map.insert(key.to_string(), value);
    }
    Some(map)
}

fn load_csv(path: &str) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("{path}:{}: expected 5 fields", lineno + 1));
        }
        let num = |i: usize| -> Result<f64, String> {
            fields[i]
                .trim()
                .parse()
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))
        };
        let (lx, ly, hx, hy) = (num(0)?, num(1)?, num(2)?, num(3)?);
        let id: u64 = fields[4]
            .trim()
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push((Rect::new([lx, ly], [hx, hy]), id));
    }
    Ok(out)
}

fn save_csv(path: &str, data: &Dataset) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = BufWriter::new(file);
    for (r, id) in data {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.lo()[0],
            r.lo()[1],
            r.hi()[0],
            r.hi()[1],
            id
        )
        .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

fn open_tree(path: &str) -> Result<RTree<2>, String> {
    RTree::load_from_path(path, RTreeParams::paper_defaults()).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    let get = |k: &str| {
        flags
            .get(k)
            .cloned()
            .ok_or_else(|| format!("missing --{k}"))
    };
    let cfg = JoinConfig::default();

    match cmd.as_str() {
        "generate" => {
            let kind = get("kind")?;
            let n: usize = get("n")?.parse().map_err(|e| format!("--n: {e}"))?;
            let seed: u64 = flags
                .get("seed")
                .map_or(Ok(1), |s| s.parse())
                .map_err(|e| format!("--seed: {e}"))?;
            let out = get("out")?;
            let data = match kind.as_str() {
                "tiger-streets" => Geography::arizona_like(seed).streets(n),
                "tiger-hydro" => Geography::arizona_like(seed).hydro(n),
                "uniform" => uniform_points(n, unit_universe(), seed),
                "clustered" => clustered_points(n, 16, 0.02, unit_universe(), seed),
                other => return Err(format!("unknown kind '{other}'")),
            };
            save_csv(&out, &data)?;
            println!("wrote {} objects to {out}", data.len());
        }
        "build" => {
            let input = get("input")?;
            let out = get("out")?;
            let data = load_csv(&input)?;
            let tree = RTree::bulk_load(RTreeParams::paper_defaults(), data);
            tree.save_to_path(&out).map_err(|e| format!("{out}: {e}"))?;
            println!(
                "indexed {} objects ({} pages, height {}) into {out}",
                tree.len(),
                tree.page_count(),
                tree.height()
            );
        }
        "kdj" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let k: usize = get("k")?.parse().map_err(|e| format!("--k: {e}"))?;
            let algo = flags.get("algo").map_or("am", String::as_str);
            let threads: usize = flags
                .get("threads")
                .map_or(Ok(0), |t| t.parse())
                .map_err(|e| format!("--threads: {e}"))?;
            if threads != 0 && algo != "par" && algo != "par-am" {
                return Err("--threads only applies to --algo par or par-am".to_string());
            }
            let out = match algo {
                "am" => am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default()),
                "b" => b_kdj(&r, &s, k, &cfg),
                "hs" => hs_kdj(&r, &s, k, &cfg),
                "par" => par_b_kdj(&r, &s, k, &cfg, threads),
                "par-am" => par_am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default(), threads),
                other => return Err(format!("unknown algo '{other}'")),
            };
            for p in &out.results {
                println!("{},{},{}", p.r, p.s, p.dist);
            }
            eprintln!(
                "# {} results, {} distance computations, {:.3}s modeled response",
                out.results.len(),
                out.stats.real_dist,
                out.stats.response_time()
            );
        }
        "idj" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let take: usize = get("take")?.parse().map_err(|e| format!("--take: {e}"))?;
            let batch: usize = flags
                .get("batch")
                .map_or(Ok(take), |b| b.parse())
                .map_err(|e| format!("--batch: {e}"))?;
            let algo = flags.get("algo").map_or("am", String::as_str);
            let threads: usize = flags
                .get("threads")
                .map_or(Ok(0), |t| t.parse())
                .map_err(|e| format!("--threads: {e}"))?;
            if threads != 0 && algo != "par-am" {
                return Err("--threads only applies to --algo par-am".to_string());
            }
            if algo == "par-am" {
                let out = par_am_idj(&r, &s, take, &cfg, &AmIdjOptions::default(), threads);
                for p in &out.results {
                    println!("{},{},{}", p.r, p.s, p.dist);
                }
                eprintln!(
                    "# {} pairs ({} stages, {} bound tightenings)",
                    out.results.len(),
                    out.stats.stages,
                    out.stats.bound_tightenings
                );
                return Ok(());
            }
            if algo != "am" {
                return Err(format!("unknown algo '{algo}'"));
            }
            let mut cursor = AmIdj::new(&r, &s, &cfg, AmIdjOptions::default());
            let mut produced = 0;
            while produced < take {
                let chunk = batch.min(take - produced);
                for _ in 0..chunk {
                    match cursor.next() {
                        Some(p) => {
                            println!("{},{},{}", p.r, p.s, p.dist);
                            produced += 1;
                        }
                        None => {
                            eprintln!("# exhausted after {produced} pairs");
                            return Ok(());
                        }
                    }
                }
                eprintln!(
                    "# {produced} pairs (stage {}, eDmax {:.6})",
                    cursor.stage(),
                    cursor.current_edmax()
                );
            }
        }
        "within" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let dist: f64 = get("dist")?.parse().map_err(|e| format!("--dist: {e}"))?;
            let out = within_join(&r, &s, dist, &cfg);
            for p in &out.results {
                println!("{},{},{}", p.r, p.s, p.dist);
            }
            eprintln!("# {} pairs within {dist}", out.results.len());
        }
        "knn" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let k: usize = get("k")?.parse().map_err(|e| format!("--k: {e}"))?;
            let out = knn_join(&r, &s, k);
            for (rid, nn) in &out.groups {
                for p in nn {
                    println!("{rid},{},{}", p.s, p.dist);
                }
            }
            eprintln!("# {} R-objects × {k} neighbours", out.groups.len());
        }
        "bench" => {
            let n: usize = flags
                .get("n")
                .map_or(Ok(2000), |v| v.parse())
                .map_err(|e| format!("--n: {e}"))?;
            let k: usize = flags
                .get("k")
                .map_or(Ok(100), |v| v.parse())
                .map_err(|e| format!("--k: {e}"))?;
            let seed: u64 = flags
                .get("seed")
                .map_or(Ok(1), |v| v.parse())
                .map_err(|e| format!("--seed: {e}"))?;
            let json_out = flags.get("json").map(|v| {
                if v == "true" {
                    "BENCH_kdj.json".to_string()
                } else {
                    v.clone()
                }
            });
            let rows = run_bench_matrix(n, k, seed, &cfg);
            for row in &rows {
                eprintln!(
                    "# {:<4} {:<7} threads={} steal={} part={} k={} wall={:.4}s nodes={} dists={} results={} stolen={} idle={}ns buf={}h/{}m",
                    row.op,
                    row.algo,
                    row.threads,
                    row.steal,
                    row.partition,
                    row.k,
                    row.wall_time_s,
                    row.node_accesses,
                    row.pairs_computed,
                    row.results,
                    row.pairs_stolen,
                    row.barrier_idle_ns,
                    row.buffer_hits,
                    row.buffer_misses
                );
            }
            if let Some(path) = json_out {
                let json = bench_rows_json(n, k, seed, &rows);
                std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {} bench rows to {path}", rows.len());
            }
        }
        _ => return Err(format!("unknown command '{cmd}'")),
    }
    Ok(())
}

/// One measured cell of the benchmark matrix.
struct BenchRow {
    op: &'static str,
    algo: &'static str,
    threads: usize,
    steal: bool,
    /// `"locality"` or `"rr"` — the seed/work partitioner of the
    /// parallel rows (sequential rows report the default, which they
    /// never consult).
    partition: &'static str,
    k: usize,
    wall_time_s: f64,
    node_accesses: u64,
    pairs_computed: u64,
    results: usize,
    pairs_stolen: u64,
    steal_attempts: u64,
    barrier_idle_ns: u64,
    buffer_hits: u64,
    buffer_misses: u64,
    /// Per-worker buffer hits, trimmed to the row's thread count — the
    /// cache-residency split the locality partitioner exists to improve.
    hits_by_worker: Vec<u64>,
    misses_by_worker: Vec<u64>,
}

/// Runs every kdj/idj algorithm (sequential and parallel at several thread
/// counts) over a deterministic generated workload and reports wall time
/// plus the paper's work counters.
fn run_bench_matrix(n: usize, k: usize, seed: u64, cfg: &JoinConfig) -> Vec<BenchRow> {
    let a = uniform_points(n, unit_universe(), seed);
    let b = clustered_points(n, 16, 0.02, unit_universe(), seed + 1);
    let r = RTree::bulk_load(RTreeParams::paper_defaults(), a);
    let s = RTree::bulk_load(RTreeParams::paper_defaults(), b);
    let thread_counts = [1usize, 2, 4, 8];
    // The parallel rows run twice per thread count — work-stealing (the
    // default) against the static split, so the JSON carries the
    // barrier-idle comparison the scheduler exists to win — and, at the
    // widest thread count, once more per partitioner (locality vs
    // round-robin), so it also carries the per-worker buffer-hit
    // comparison the locality partitioner exists to win.
    let sched_cells = |t: usize| -> Vec<(bool, &'static str, JoinConfig)> {
        let mut cells = Vec::new();
        for steal in [true, false] {
            for part in [Partition::Locality, Partition::RoundRobin] {
                if part == Partition::RoundRobin && t != 8 {
                    continue;
                }
                let mut c = cfg.clone();
                c.steal = steal;
                c.partition = part;
                let name = match part {
                    Partition::Locality => "locality",
                    Partition::RoundRobin => "rr",
                };
                cells.push((steal, name, c));
            }
        }
        cells
    };
    let mut rows = Vec::new();
    let mut record =
        |op, algo, threads: usize, steal, partition, run: &mut dyn FnMut() -> JoinOutput| {
            let start = std::time::Instant::now();
            let out = run();
            let wall = start.elapsed().as_secs_f64();
            let trim = threads.min(out.stats.buffer_hits_by_worker.len());
            rows.push(BenchRow {
                op,
                algo,
                threads,
                steal,
                partition,
                k,
                wall_time_s: wall,
                node_accesses: out.stats.node_requests,
                pairs_computed: out.stats.real_dist,
                results: out.results.len(),
                pairs_stolen: out.stats.pairs_stolen,
                steal_attempts: out.stats.steal_attempts,
                barrier_idle_ns: out.stats.barrier_idle_ns,
                buffer_hits: out.stats.buffer_hits,
                buffer_misses: out.stats.buffer_misses,
                hits_by_worker: out.stats.buffer_hits_by_worker[..trim].to_vec(),
                misses_by_worker: out.stats.buffer_misses_by_worker[..trim].to_vec(),
            });
        };
    record("kdj", "hs", 1, false, "locality", &mut || {
        hs_kdj(&r, &s, k, cfg)
    });
    record("kdj", "b", 1, false, "locality", &mut || {
        b_kdj(&r, &s, k, cfg)
    });
    record("kdj", "am", 1, false, "locality", &mut || {
        am_kdj(&r, &s, k, cfg, &AmKdjOptions::default())
    });
    // SJ-SORT gets the paper's favorable oracle: the true k-th distance
    // (taken from an uncounted B-KDJ run before the measured one starts).
    let oracle_dmax = b_kdj(&r, &s, k, cfg).results.last().map_or(0.0, |p| p.dist);
    record("kdj", "sjsort", 1, false, "locality", &mut || {
        sj_sort(&r, &s, k, oracle_dmax, cfg)
    });
    for t in thread_counts {
        for (steal, part, c) in sched_cells(t) {
            record("kdj", "par", t, steal, part, &mut || {
                par_b_kdj(&r, &s, k, &c, t)
            });
        }
    }
    for t in thread_counts {
        for (steal, part, c) in sched_cells(t) {
            record("kdj", "par-am", t, steal, part, &mut || {
                par_am_kdj(&r, &s, k, &c, &AmKdjOptions::default(), t)
            });
        }
    }
    record("idj", "hs", 1, false, "locality", &mut || {
        let mut cursor = HsIdj::new(&r, &s, cfg);
        let mut results = Vec::with_capacity(k);
        while results.len() < k {
            match cursor.next() {
                Some(p) => results.push(p),
                None => break,
            }
        }
        JoinOutput {
            results,
            stats: cursor.stats(),
        }
    });
    record("idj", "am", 1, false, "locality", &mut || {
        let mut cursor = AmIdj::new(&r, &s, cfg, AmIdjOptions::default());
        let mut results = Vec::with_capacity(k);
        while results.len() < k {
            match cursor.next() {
                Some(p) => results.push(p),
                None => break,
            }
        }
        JoinOutput {
            results,
            stats: cursor.stats(),
        }
    });
    for t in thread_counts {
        for (steal, part, c) in sched_cells(t) {
            record("idj", "par-am", t, steal, part, &mut || {
                par_am_idj(&r, &s, k, &c, &AmIdjOptions::default(), t)
            });
        }
    }
    rows
}

/// `[a, b, c]` — no JSON dependency, numbers only.
fn json_u64_array(vals: &[u64]) -> String {
    let inner: Vec<String> = vals.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

/// Serializes the matrix without a JSON dependency: every value is a
/// number or a fixed-vocabulary string, so manual escaping is not needed.
fn bench_rows_json(n: usize, k: usize, seed: u64, rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    // Bumped whenever rows/fields change shape: 2 added the sjsort kdj row
    // and the hs idj row; 3 added the steal column, the scheduler
    // counters (pairs_stolen / steal_attempts / barrier_idle_ns), and the
    // 8-thread steal-on vs steal-off rows; 4 added the partition column,
    // the buffer hit/miss totals with their per-worker breakdowns, and
    // the 8-thread locality vs round-robin rows.
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(&format!(
        "  \"workload\": {{ \"n\": {n}, \"k\": {k}, \"seed\": {seed}, \"r\": \"uniform\", \"s\": \"clustered\" }},\n"
    ));
    out.push_str("  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"op\": \"{}\", \"algo\": \"{}\", \"threads\": {}, \"steal\": {}, \"partition\": \"{}\", \"k\": {}, \"wall_time_s\": {:.6}, \"node_accesses\": {}, \"pairs_computed\": {}, \"results\": {}, \"pairs_stolen\": {}, \"steal_attempts\": {}, \"barrier_idle_ns\": {}, \"buffer_hits\": {}, \"buffer_misses\": {}, \"buffer_hits_by_worker\": {}, \"buffer_misses_by_worker\": {} }}{}\n",
            row.op,
            row.algo,
            row.threads,
            row.steal,
            row.partition,
            row.k,
            row.wall_time_s,
            row.node_accesses,
            row.pairs_computed,
            row.results,
            row.pairs_stolen,
            row.steal_attempts,
            row.barrier_idle_ns,
            row.buffer_hits,
            row.buffer_misses,
            json_u64_array(&row.hits_by_worker),
            json_u64_array(&row.misses_by_worker),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
