//! `amdj` — a small command-line front end for the library: generate
//! workloads, build persistent indexes, and run every join operation
//! against them.
//!
//! ```text
//! amdj generate --kind tiger-streets|tiger-hydro|uniform|clustered --n N [--seed S] --out data.csv
//! amdj build    --input data.csv --out index.amdj
//! amdj kdj      --r a.amdj --s b.amdj --k K [--algo am|b|hs|par|par-am] [--threads T]
//!               [--partitions P] [--checkpoint-path P] [--checkpoint-every N] [--resume P]
//! amdj idj      --r a.amdj --s b.amdj --take N [--batch B] [--algo am|par-am] [--threads T]
//!               [--checkpoint-path P] [--checkpoint-every N] [--resume P]
//! amdj within   --r a.amdj --s b.amdj --dist D
//! amdj knn      --r a.amdj --s b.amdj --k K
//! amdj bench    [--n N] [--k K] [--seed S] [--json [FILE]]
//! amdj serve    --r a.amdj --s b.amdj [--mem-budget BYTES] [--max-waiting N]
//!               [--episode-expansions N] [--max-request-bytes N] [--state-dir DIR]
//!               [--max-threads N] [--max-partitions N]
//!               [--listen ADDR] [--max-conns N] [--idle-timeout-ms N]
//! ```
//!
//! CSV rows are `lo_x,lo_y,hi_x,hi_y,id`. Index files are the persistent
//! R*-tree format of `amdj-rtree` (4 KB pages, paper configuration).
//!
//! With `--checkpoint-path`, a `kdj`/`idj` run becomes resumable: every
//! `--checkpoint-every` expansions (and on SIGINT) the engine's complete
//! state is written atomically to the given path, and a later run with
//! `--resume <path>` continues from it — at any thread count — producing
//! the exact result stream the uninterrupted run would have. An
//! interrupted run exits with code 75 after writing its final
//! checkpoint. `AMDJ_INTERRUPT_AFTER=<n>` simulates an interrupt after
//! `n` expansions of the current episode (used by `ci.sh`'s resume
//! smoke test).
//!
//! `serve` loads both trees once and then answers any number of
//! concurrent KDJ/IDJ queries over them through the line-delimited JSON
//! protocol of [`amdj_core::serve`] (one request per line, one response
//! line per request; see DESIGN.md §12–§13). By default requests arrive
//! on stdin and responses leave on stdout; with `--listen ADDR` the same
//! protocol is served over TCP instead, one handler per connection, with
//! `--max-conns` bounding concurrent connections (excess ones get a
//! structured error line and are closed) and `--idle-timeout-ms`
//! disconnecting clients that go silent. Executing queries are
//! admission-controlled against `--mem-budget` in units of the engine's
//! own queue memory budget, and per-query `threads`/`partitions` are
//! bounded by `--max-threads`/`--max-partitions` (out-of-range values
//! are structured error responses). On SIGINT the server stops accepting
//! requests, drains the in-flight ones across all connections,
//! checkpoints every open IDJ cursor into `--state-dir`, and exits 75; a
//! restart with the same `--state-dir` resumes those cursors at their
//! recorded delivery positions.

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use amdj_core::serve::{
    codec::QuerySpec,
    transport::{serve_listener, TransportOptions},
    ServeOptions, Server,
};
use amdj_core::{
    am_kdj, b_kdj, hs_kdj, idj_resumable, kdj_resumable, knn_join, par_am_idj, par_am_kdj,
    par_b_kdj, read_checkpoint, sj_sort, within_join, write_checkpoint, AmIdj, AmIdjOptions,
    AmKdjOptions, Checkpointed, EngineSnapshot, HsIdj, JoinConfig, JoinOutput, Partition, PauseCtl,
    ResultPair, SnapshotError,
};
use amdj_datagen::{
    clustered_points,
    tiger::{self, Geography},
    uniform_points, unit_universe, Dataset,
};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  amdj generate --kind tiger-streets|tiger-hydro|uniform|clustered --n N [--seed S] --out data.csv\n  amdj build    --input data.csv --out index.amdj\n  amdj kdj      --r a.amdj --s b.amdj --k K [--algo am|b|hs|par|par-am] [--threads T]\n                [--partitions P] [--checkpoint-path P] [--checkpoint-every N] [--resume P]\n  amdj idj      --r a.amdj --s b.amdj --take N [--batch B] [--algo am|par-am] [--threads T]\n                [--checkpoint-path P] [--checkpoint-every N] [--resume P]\n  amdj within   --r a.amdj --s b.amdj --dist D\n  amdj knn      --r a.amdj --s b.amdj --k K\n  amdj bench    [--n N] [--k K] [--seed S] [--json [FILE]]\n  amdj serve    --r a.amdj --s b.amdj [--mem-budget BYTES] [--max-waiting N]\n                [--episode-expansions N] [--max-request-bytes N] [--state-dir DIR]\n                [--listen ADDR] [--max-conns N] [--idle-timeout-ms N]\n  (any join command also accepts --no-prefilter to disable the quantized MBR prefilter)"
    );
    ExitCode::from(2)
}

/// Set by the SIGINT handler; the watcher thread translates it into a
/// pause request so the running join suspends at a consistent cut.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Exit code of an interrupted run that wrote its final checkpoint
/// (EX_TEMPFAIL: rerunning with `--resume` finishes the job).
const EXIT_INTERRUPTED: u8 = 75;

extern "C" fn on_sigint(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs `on_sigint` for SIGINT through the C `signal` entry point,
/// declared directly — the binary links libc anyway and the library
/// crates stay free of signal handling (and of `unsafe`).
fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// The checkpoint/resume flags shared by `kdj` and `idj`.
struct CkptCli {
    path: Option<String>,
    every: u64,
    resume: Option<String>,
}

/// Returns `None` when no checkpoint flag is present (the command runs
/// its ordinary non-resumable path).
fn parse_ckpt(flags: &HashMap<String, String>) -> Result<Option<CkptCli>, String> {
    let path = flags.get("checkpoint-path").cloned();
    let resume = flags.get("resume").cloned();
    let every: u64 = flags
        .get("checkpoint-every")
        .map_or(Ok(0), |v| v.parse())
        .map_err(|e| format!("--checkpoint-every: {e}"))?;
    if path.is_none() && resume.is_none() && every == 0 {
        return Ok(None);
    }
    if every > 0 && path.is_none() {
        return Err("--checkpoint-every requires --checkpoint-path".to_string());
    }
    Ok(Some(CkptCli {
        path,
        every,
        resume,
    }))
}

/// Loads and validates a `--resume` snapshot; corruption surfaces as a
/// clean error naming the file, byte offset, and expected field.
fn load_resume(resume: &Option<String>) -> Result<Option<EngineSnapshot<2>>, String> {
    let Some(p) = resume else { return Ok(None) };
    let snap = read_checkpoint::<2>(p)
        .map_err(|e| format!("{p}: {e}"))?
        .map_err(|e| format!("{p}: {e}"))?;
    eprintln!(
        "# resuming from {p}: stage {}, {} results, {} frontier pairs, {} compensation entries",
        snap.stage(),
        snap.results_len(),
        snap.frontier_len(),
        snap.comps_len()
    );
    Ok(Some(snap))
}

/// Runs a resumable join as a sequence of episodes: run until the pause
/// control fires, write a checkpoint, then either continue in-process
/// (a periodic `--checkpoint-every` pause) or stop (SIGINT or the
/// `AMDJ_INTERRUPT_AFTER` hook). Returns `None` when interrupted — the
/// final checkpoint is on disk and the caller exits with
/// [`EXIT_INTERRUPTED`].
#[allow(clippy::type_complexity)]
fn run_episodes(
    ckpt: &CkptCli,
    mut resume: Option<EngineSnapshot<2>>,
    run: &dyn Fn(Option<EngineSnapshot<2>>, &PauseCtl) -> Result<Checkpointed<2>, SnapshotError>,
) -> Result<Option<JoinOutput>, String> {
    install_sigint_handler();
    let interrupt_after: Option<u64> = match std::env::var("AMDJ_INTERRUPT_AFTER") {
        Ok(v) => Some(
            v.parse()
                .map_err(|e| format!("AMDJ_INTERRUPT_AFTER: {e}"))?,
        ),
        Err(_) => None,
    };
    // The hook counts expansions across the whole run; each episode gets
    // a fresh pause control, so carry the completed episodes' total.
    let mut prior_expansions = 0u64;
    loop {
        let ctl = Arc::new(PauseCtl::every(ckpt.every));
        let episode_done = Arc::new(AtomicBool::new(false));
        // The join's workers only observe the pause control; this
        // watcher turns external signals into pause requests.
        let watcher = std::thread::spawn({
            let ctl = Arc::clone(&ctl);
            let episode_done = Arc::clone(&episode_done);
            move || {
                while !episode_done.load(Ordering::SeqCst) {
                    if interrupt_after.is_some_and(|n| prior_expansions + ctl.expansions() >= n) {
                        INTERRUPTED.store(true, Ordering::SeqCst);
                    }
                    if INTERRUPTED.load(Ordering::SeqCst) {
                        ctl.request_stop();
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        });
        let outcome = run(resume.take(), &ctl);
        episode_done.store(true, Ordering::SeqCst);
        let _ = watcher.join();
        prior_expansions += ctl.expansions();
        match outcome.map_err(|e| e.to_string())? {
            Checkpointed::Done(out) => return Ok(Some(out)),
            Checkpointed::Suspended(snap, _) => {
                let path = ckpt.path.as_deref().ok_or(
                    "join paused without --checkpoint-path; set it to make interrupts resumable",
                )?;
                write_checkpoint(path, snap.as_ref()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!(
                    "# checkpoint: {path} (stage {}, {} results, {} frontier pairs)",
                    snap.stage(),
                    snap.results_len(),
                    snap.frontier_len()
                );
                if INTERRUPTED.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                resume = Some(*snap);
            }
        }
    }
}

/// Resolves `--threads` the way the parallel entry points do: 0 means
/// one worker per available core.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        // A flag followed by another flag (or nothing) is boolean-valued.
        let value = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        map.insert(key.to_string(), value);
    }
    Some(map)
}

fn load_csv(path: &str) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("{path}:{}: expected 5 fields", lineno + 1));
        }
        let num = |i: usize| -> Result<f64, String> {
            fields[i]
                .trim()
                .parse()
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))
        };
        let (lx, ly, hx, hy) = (num(0)?, num(1)?, num(2)?, num(3)?);
        let id: u64 = fields[4]
            .trim()
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push((Rect::new([lx, ly], [hx, hy]), id));
    }
    Ok(out)
}

fn save_csv(path: &str, data: &Dataset) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = BufWriter::new(file);
    for (r, id) in data {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.lo()[0],
            r.lo()[1],
            r.hi()[0],
            r.hi()[1],
            id
        )
        .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

fn open_tree(path: &str) -> Result<RTree<2>, String> {
    RTree::load_from_path(path, RTreeParams::paper_defaults()).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    let get = |k: &str| {
        flags
            .get(k)
            .cloned()
            .ok_or_else(|| format!("missing --{k}"))
    };
    let mut cfg = JoinConfig::default();
    // `--no-prefilter` disables the quantized integer MBR prefilter in
    // every join this invocation runs — the CI kernel-ablation smoke
    // diffs a join against itself with the screen on and off.
    if flags.contains_key("no-prefilter") {
        cfg.quantized_prefilter = false;
    }

    match cmd.as_str() {
        "generate" => {
            let kind = get("kind")?;
            let n: usize = get("n")?.parse().map_err(|e| format!("--n: {e}"))?;
            let seed: u64 = flags
                .get("seed")
                .map_or(Ok(1), |s| s.parse())
                .map_err(|e| format!("--seed: {e}"))?;
            let out = get("out")?;
            let data = match kind.as_str() {
                "tiger-streets" => Geography::arizona_like(seed).streets(n),
                "tiger-hydro" => Geography::arizona_like(seed).hydro(n),
                "uniform" => uniform_points(n, unit_universe(), seed),
                "clustered" => clustered_points(n, 16, 0.02, unit_universe(), seed),
                other => return Err(format!("unknown kind '{other}'")),
            };
            save_csv(&out, &data)?;
            println!("wrote {} objects to {out}", data.len());
        }
        "build" => {
            let input = get("input")?;
            let out = get("out")?;
            let data = load_csv(&input)?;
            let tree = RTree::bulk_load(RTreeParams::paper_defaults(), data);
            tree.save_to_path(&out).map_err(|e| format!("{out}: {e}"))?;
            println!(
                "indexed {} objects ({} pages, height {}) into {out}",
                tree.len(),
                tree.page_count(),
                tree.height()
            );
        }
        "kdj" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let k: usize = get("k")?.parse().map_err(|e| format!("--k: {e}"))?;
            let algo = flags.get("algo").map_or("am", String::as_str);
            let threads: usize = flags
                .get("threads")
                .map_or(Ok(0), |t| t.parse())
                .map_err(|e| format!("--threads: {e}"))?;
            if threads != 0 && algo != "par" && algo != "par-am" {
                return Err("--threads only applies to --algo par or par-am".to_string());
            }
            // `--partitions P` (P ≥ 2) runs the join as a partitioned
            // plan: STR tiling, bounds-only partition-pair pruning, one
            // engine invocation per surviving pair. Engine algorithms
            // only — `hs` has its own driver — and not combinable with
            // checkpointing (the plan is not resumable).
            let partitions: usize = flags
                .get("partitions")
                .map_or(Ok(0), |v| v.parse())
                .map_err(|e| format!("--partitions: {e}"))?;
            if partitions > 1 {
                if algo == "hs" {
                    return Err("--partitions does not apply to --algo hs".to_string());
                }
                cfg.partitions = Some(partitions);
            }
            if let Some(ckpt) = parse_ckpt(&flags)? {
                if cfg.partitions.is_some() {
                    return Err(
                        "--partitions cannot be combined with checkpoint flags: the \
                         partitioned plan is not resumable"
                            .to_string(),
                    );
                }
                let aggressive = match algo {
                    "am" | "par-am" => true,
                    "b" | "par" => false,
                    other => {
                        return Err(format!("--algo {other} does not support checkpointing"));
                    }
                };
                let threads = match algo {
                    "par" | "par-am" => resolve_threads(threads),
                    _ => 1,
                };
                let resume = load_resume(&ckpt.resume)?;
                let Some(out) = run_episodes(&ckpt, resume, &|resume, ctl| {
                    kdj_resumable(
                        &r,
                        &s,
                        k,
                        &cfg,
                        aggressive,
                        threads,
                        None,
                        resume,
                        Some(ctl),
                    )
                })?
                else {
                    eprintln!("# interrupted; rerun with --resume to finish");
                    return Ok(ExitCode::from(EXIT_INTERRUPTED));
                };
                for p in &out.results {
                    println!("{},{},{}", p.r, p.s, p.dist);
                }
                eprintln!(
                    "# {} results, {} distance computations, {:.3}s modeled response",
                    out.results.len(),
                    out.stats.real_dist,
                    out.stats.response_time()
                );
                return Ok(ExitCode::SUCCESS);
            }
            let out = match algo {
                "am" => am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default()),
                "b" => b_kdj(&r, &s, k, &cfg),
                "hs" => hs_kdj(&r, &s, k, &cfg),
                "par" => par_b_kdj(&r, &s, k, &cfg, threads),
                "par-am" => par_am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default(), threads),
                other => return Err(format!("unknown algo '{other}'")),
            };
            for p in &out.results {
                println!("{},{},{}", p.r, p.s, p.dist);
            }
            eprintln!(
                "# {} results, {} distance computations, {:.3}s modeled response",
                out.results.len(),
                out.stats.real_dist,
                out.stats.response_time()
            );
        }
        "idj" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let take: usize = get("take")?.parse().map_err(|e| format!("--take: {e}"))?;
            let batch: usize = flags
                .get("batch")
                .map_or(Ok(take), |b| b.parse())
                .map_err(|e| format!("--batch: {e}"))?;
            let algo = flags.get("algo").map_or("am", String::as_str);
            let threads: usize = flags
                .get("threads")
                .map_or(Ok(0), |t| t.parse())
                .map_err(|e| format!("--threads: {e}"))?;
            if threads != 0 && algo != "par-am" {
                return Err("--threads only applies to --algo par-am".to_string());
            }
            if let Some(ckpt) = parse_ckpt(&flags)? {
                let threads = match algo {
                    "am" => 1,
                    "par-am" => resolve_threads(threads),
                    other => {
                        return Err(format!("--algo {other} does not support checkpointing"));
                    }
                };
                let opts = AmIdjOptions::default();
                let resume = load_resume(&ckpt.resume)?;
                let Some(out) = run_episodes(&ckpt, resume, &|resume, ctl| {
                    idj_resumable(&r, &s, take, &cfg, &opts, threads, None, resume, Some(ctl))
                })?
                else {
                    eprintln!("# interrupted; rerun with --resume to finish");
                    return Ok(ExitCode::from(EXIT_INTERRUPTED));
                };
                for p in &out.results {
                    println!("{},{},{}", p.r, p.s, p.dist);
                }
                eprintln!(
                    "# {} pairs ({} stages, {} bound tightenings)",
                    out.results.len(),
                    out.stats.stages,
                    out.stats.bound_tightenings
                );
                return Ok(ExitCode::SUCCESS);
            }
            if algo == "par-am" {
                let out = par_am_idj(&r, &s, take, &cfg, &AmIdjOptions::default(), threads);
                for p in &out.results {
                    println!("{},{},{}", p.r, p.s, p.dist);
                }
                eprintln!(
                    "# {} pairs ({} stages, {} bound tightenings)",
                    out.results.len(),
                    out.stats.stages,
                    out.stats.bound_tightenings
                );
                return Ok(ExitCode::SUCCESS);
            }
            if algo != "am" {
                return Err(format!("unknown algo '{algo}'"));
            }
            let mut cursor = AmIdj::new(&r, &s, &cfg, AmIdjOptions::default());
            let mut produced = 0;
            while produced < take {
                let chunk = batch.min(take - produced);
                for _ in 0..chunk {
                    match cursor.next() {
                        Some(p) => {
                            println!("{},{},{}", p.r, p.s, p.dist);
                            produced += 1;
                        }
                        None => {
                            eprintln!("# exhausted after {produced} pairs");
                            return Ok(ExitCode::SUCCESS);
                        }
                    }
                }
                eprintln!(
                    "# {produced} pairs (stage {}, eDmax {:.6})",
                    cursor.stage(),
                    cursor.current_edmax()
                );
            }
        }
        "within" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let dist: f64 = get("dist")?.parse().map_err(|e| format!("--dist: {e}"))?;
            let out = within_join(&r, &s, dist, &cfg);
            for p in &out.results {
                println!("{},{},{}", p.r, p.s, p.dist);
            }
            eprintln!("# {} pairs within {dist}", out.results.len());
        }
        "knn" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let k: usize = get("k")?.parse().map_err(|e| format!("--k: {e}"))?;
            let out = knn_join(&r, &s, k);
            for (rid, nn) in &out.groups {
                for p in nn {
                    println!("{rid},{},{}", p.s, p.dist);
                }
            }
            eprintln!("# {} R-objects × {k} neighbours", out.groups.len());
        }
        "serve" => {
            let r = open_tree(&get("r")?)?;
            let s = open_tree(&get("s")?)?;
            let mut sopts = ServeOptions {
                base_config: cfg.clone(),
                ..ServeOptions::default()
            };
            if let Some(v) = flags.get("mem-budget") {
                sopts.mem_budget_bytes = v.parse().map_err(|e| format!("--mem-budget: {e}"))?;
            }
            if let Some(v) = flags.get("max-waiting") {
                sopts.max_waiting = v.parse().map_err(|e| format!("--max-waiting: {e}"))?;
            }
            if let Some(v) = flags.get("episode-expansions") {
                sopts.episode_expansions = v
                    .parse()
                    .map_err(|e| format!("--episode-expansions: {e}"))?;
            }
            if let Some(v) = flags.get("max-request-bytes") {
                sopts.max_request_bytes =
                    v.parse().map_err(|e| format!("--max-request-bytes: {e}"))?;
            }
            if let Some(v) = flags.get("max-threads") {
                sopts.max_threads = v.parse().map_err(|e| format!("--max-threads: {e}"))?;
            }
            if let Some(v) = flags.get("max-partitions") {
                sopts.max_partitions = v.parse().map_err(|e| format!("--max-partitions: {e}"))?;
            }
            let state_dir = flags.get("state-dir").map(std::path::PathBuf::from);
            let listen = match flags.get("listen") {
                None => None,
                Some(addr) => {
                    let mut topts = TransportOptions::default();
                    if let Some(v) = flags.get("max-conns") {
                        topts.max_conns = v.parse().map_err(|e| format!("--max-conns: {e}"))?;
                    }
                    if let Some(v) = flags.get("idle-timeout-ms") {
                        let ms: u64 = v.parse().map_err(|e| format!("--idle-timeout-ms: {e}"))?;
                        topts.idle_timeout = std::time::Duration::from_millis(ms);
                    }
                    Some((addr.clone(), topts))
                }
            };
            return serve_loop(&r, &s, sopts, state_dir, listen);
        }
        "bench" => {
            let n: usize = flags
                .get("n")
                .map_or(Ok(2000), |v| v.parse())
                .map_err(|e| format!("--n: {e}"))?;
            let k: usize = flags
                .get("k")
                .map_or(Ok(100), |v| v.parse())
                .map_err(|e| format!("--k: {e}"))?;
            let seed: u64 = flags
                .get("seed")
                .map_or(Ok(1), |v| v.parse())
                .map_err(|e| format!("--seed: {e}"))?;
            let json_out = flags.get("json").map(|v| {
                if v == "true" {
                    "BENCH_kdj.json".to_string()
                } else {
                    v.clone()
                }
            });
            let rows = run_bench_matrix(n, k, seed, &cfg);
            for row in &rows {
                eprintln!(
                    "# {:<4} {:<7} ds={} parts={} threads={} steal={} part={} q={} k={} wall={:.4}s nodes={} dists={} qrej={} results={} stolen={} idle={}ns buf={}h/{}m/{}e ppruned={}",
                    row.op,
                    row.algo,
                    row.dataset,
                    row.partitions,
                    row.threads,
                    row.steal,
                    row.partition,
                    row.prefilter,
                    row.k,
                    row.wall_time_s,
                    row.node_accesses,
                    row.pairs_computed,
                    row.quantized_rejects,
                    row.results,
                    row.pairs_stolen,
                    row.barrier_idle_ns,
                    row.buffer_hits,
                    row.buffer_misses,
                    row.buffer_evictions,
                    row.partition_pairs_pruned
                );
            }
            if let Some(path) = json_out {
                let json = bench_rows_json(n, k, seed, &rows);
                std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {} bench rows to {path}", rows.len());
            }
        }
        _ => return Err(format!("unknown command '{cmd}'")),
    }
    Ok(ExitCode::SUCCESS)
}

/// The `serve` command: one shared [`Server`] over the two trees,
/// driven either by stdin (the default) or, with `--listen`, by the TCP
/// transport of [`amdj_core::serve::transport`]. Both paths share the
/// resume-on-start and checkpoint-on-exit bracket around `--state-dir`.
///
/// On the stdin path, glibc installs SIGINT handlers with `SA_RESTART`,
/// so a blocked stdin read would never observe Ctrl-C — reading happens
/// on a detached thread and the loop polls the channel, so an interrupt
/// always gets its chance to drain, checkpoint, and exit 75. The TCP
/// path polls its sockets on short timeouts for the same reason.
fn serve_loop(
    r: &RTree<2>,
    s: &RTree<2>,
    opts: ServeOptions,
    state_dir: Option<std::path::PathBuf>,
    listen: Option<(String, TransportOptions)>,
) -> Result<ExitCode, String> {
    install_sigint_handler();
    let server = Server::new(r, s, opts);
    if let Some(dir) = &state_dir {
        let ids = server
            .resume_cursors_from(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        for id in &ids {
            eprintln!("# resumed cursor `{id}`");
        }
    }
    if let Some((addr, topts)) = listen {
        serve_tcp(&server, r, s, &addr, &topts)?;
    } else {
        serve_stdin(&server, r, s);
    }
    if let Some(dir) = &state_dir {
        let ids = server
            .checkpoint_open_cursors(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        if !ids.is_empty() {
            eprintln!(
                "# checkpointed {} open cursor(s) into {}",
                ids.len(),
                dir.display()
            );
        }
    }
    if INTERRUPTED.load(Ordering::SeqCst) {
        eprintln!("# interrupted; restart with the same --state-dir to resume open cursors");
        return Ok(ExitCode::from(EXIT_INTERRUPTED));
    }
    Ok(ExitCode::SUCCESS)
}

/// The stdin transport: a reader thread feeds a channel, the loop polls
/// it, and each request line gets its own handler thread writing the
/// response line under a stdout lock.
fn serve_stdin(server: &Server<'_, 2>, r: &RTree<2>, s: &RTree<2>) {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { return };
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    let stdout = Mutex::new(std::io::stdout());
    let shutdown = AtomicBool::new(false);
    eprintln!(
        "# serving {} x {} objects; one JSON request per line on stdin",
        r.len(),
        s.len()
    );
    std::thread::scope(|scope| {
        loop {
            if INTERRUPTED.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) {
                break;
            }
            let line = match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                Ok(line) => line,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                // stdin reached EOF: no more requests can arrive.
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let (server, stdout, shutdown) = (server, &stdout, &shutdown);
            scope.spawn(move || {
                let (resp, stop) = server.handle_line(line.as_bytes());
                if stop {
                    shutdown.store(true, Ordering::SeqCst);
                }
                let mut out = stdout.lock().expect("stdout poisoned");
                let _ = writeln!(out, "{}", resp.encode());
                let _ = out.flush();
            });
        }
        // Leaving the scope joins every in-flight handler: the drain.
    });
}

/// The TCP transport: bind, announce the bound address on stderr (port
/// 0 requests an ephemeral port, so scripts parse it from here), and
/// hand the listener to the core transport until SIGINT or a client's
/// `shutdown` op stops it.
fn serve_tcp(
    server: &Server<'_, 2>,
    r: &RTree<2>,
    s: &RTree<2>,
    addr: &str,
    topts: &TransportOptions,
) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "# serving {} x {} objects; one JSON request per line per connection",
        r.len(),
        s.len()
    );
    eprintln!("# listening on {bound}");
    let stats = serve_listener(server, listener, topts, &INTERRUPTED)
        .map_err(|e| format!("{addr}: {e}"))?;
    eprintln!(
        "# served {} request(s) over {} connection(s); rejected {} over the {}-connection cap, dropped {} idle and {} oversized",
        stats.requests,
        stats.accepted,
        stats.rejected,
        topts.max_conns,
        stats.idle_disconnects,
        stats.oversize_disconnects,
    );
    Ok(())
}

/// One measured cell of the benchmark matrix.
struct BenchRow {
    op: &'static str,
    algo: &'static str,
    /// Which workload the row ran on: the default `uniform-clustered`
    /// pairing, or one of the partition-ablation distributions
    /// (`clustered`, `arizona`).
    dataset: &'static str,
    threads: usize,
    steal: bool,
    /// `"locality"` or `"rr"` — the seed/work partitioner of the
    /// parallel rows (sequential rows report the default, which they
    /// never consult).
    partition: &'static str,
    /// Whether the quantized integer MBR prefilter was armed for this
    /// row (it is on by default; the "am" ablation row turns it off).
    prefilter: bool,
    k: usize,
    wall_time_s: f64,
    node_accesses: u64,
    pairs_computed: u64,
    quantized_rejects: u64,
    exact_dist_skipped: u64,
    results: usize,
    pairs_stolen: u64,
    steal_attempts: u64,
    barrier_idle_ns: u64,
    buffer_hits: u64,
    buffer_misses: u64,
    /// Shared-buffer evictions this row's inserts caused — the
    /// cross-query thrashing pressure signal of the serve rows, and the
    /// buffer-budget pressure of the one-shot rows.
    buffer_evictions: u64,
    /// `hits / (hits + misses)`, 0 when the row touched no pages.
    buffer_hit_rate: f64,
    /// Snapshots written during the run (non-zero only for the
    /// checkpoint-overhead rows).
    checkpoints: u64,
    /// Per-side STR tile target of the partitioned plan (0 = monolithic).
    partitions: usize,
    /// The partitioned plan's ledger: pairs enumerated, pruned by the
    /// bounds-only pre-filter, replayed when the proven bound demanded
    /// it, and conclusively discarded. All zero on monolithic rows;
    /// `pruned == replayed + never_needed` always.
    partition_pairs_total: u64,
    partition_pairs_pruned: u64,
    partition_pairs_replayed: u64,
    partition_pairs_never_needed: u64,
    /// Per-worker buffer hits, trimmed to the row's thread count — the
    /// cache-residency split the locality partitioner exists to improve.
    hits_by_worker: Vec<u64>,
    misses_by_worker: Vec<u64>,
    /// Admission queue wait of a serve-mode query (0 off serve rows).
    queue_wait_ns: u64,
    /// Serve-wide admission rejections observed by the row's server
    /// (0 off serve rows).
    admission_rejections: u64,
    /// The serve-mode query id this row attributes (empty off serve
    /// rows).
    query_id: String,
    /// How the serve row's query reached the server (`"tcp"`; empty
    /// off serve rows).
    transport: &'static str,
    /// Concurrent client connections of the serve section (0 off serve
    /// rows).
    connections: usize,
}

/// `hits / (hits + misses)`, 0 when nothing was fetched.
fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Runs every kdj/idj algorithm (sequential and parallel at several thread
/// counts) over a deterministic generated workload and reports wall time
/// plus the paper's work counters.
fn run_bench_matrix(n: usize, k: usize, seed: u64, cfg: &JoinConfig) -> Vec<BenchRow> {
    let a = uniform_points(n, unit_universe(), seed);
    let b = clustered_points(n, 16, 0.02, unit_universe(), seed + 1);
    let r = RTree::bulk_load(RTreeParams::paper_defaults(), a);
    let s = RTree::bulk_load(RTreeParams::paper_defaults(), b);
    let thread_counts = [1usize, 2, 4, 8];
    // The parallel rows run twice per thread count — work-stealing (the
    // default) against the static split, so the JSON carries the
    // barrier-idle comparison the scheduler exists to win — and, at the
    // widest thread count, once more per partitioner (locality vs
    // round-robin), so it also carries the per-worker buffer-hit
    // comparison the locality partitioner exists to win.
    let sched_cells = |t: usize| -> Vec<(bool, &'static str, JoinConfig)> {
        let mut cells = Vec::new();
        for steal in [true, false] {
            for part in [Partition::Locality, Partition::RoundRobin] {
                if part == Partition::RoundRobin && t != 8 {
                    continue;
                }
                let mut c = cfg.clone();
                c.steal = steal;
                c.partition = part;
                let name = match part {
                    Partition::Locality => "locality",
                    Partition::RoundRobin => "rr",
                };
                cells.push((steal, name, c));
            }
        }
        cells
    };
    let mut rows = Vec::new();
    // Set by the checkpoint-overhead runs, harvested (and reset) per row.
    let ckpt_written = std::cell::Cell::new(0u64);
    // Row provenance for the partition-ablation section: every `record`
    // call stamps the current dataset label and partition count. The
    // defaults cover the whole classic matrix above it.
    let cur_dataset = std::cell::Cell::new("uniform-clustered");
    let cur_partitions = std::cell::Cell::new(0usize);
    let mut record = |op,
                      algo,
                      threads: usize,
                      steal,
                      partition,
                      prefilter: bool,
                      run: &mut dyn FnMut() -> JoinOutput| {
        let start = std::time::Instant::now();
        let out = run();
        let wall = start.elapsed().as_secs_f64();
        let trim = threads.min(out.stats.buffer_hits_by_worker.len());
        rows.push(BenchRow {
            op,
            algo,
            dataset: cur_dataset.get(),
            threads,
            steal,
            partition,
            prefilter,
            k,
            wall_time_s: wall,
            node_accesses: out.stats.node_requests,
            pairs_computed: out.stats.real_dist,
            quantized_rejects: out.stats.quantized_rejects,
            exact_dist_skipped: out.stats.exact_dist_skipped,
            results: out.results.len(),
            pairs_stolen: out.stats.pairs_stolen,
            steal_attempts: out.stats.steal_attempts,
            barrier_idle_ns: out.stats.barrier_idle_ns,
            buffer_hits: out.stats.buffer_hits,
            buffer_misses: out.stats.buffer_misses,
            buffer_evictions: out.stats.buffer_evictions,
            buffer_hit_rate: hit_rate(out.stats.buffer_hits, out.stats.buffer_misses),
            checkpoints: ckpt_written.take(),
            partitions: cur_partitions.get(),
            partition_pairs_total: out.stats.partition_pairs_total,
            partition_pairs_pruned: out.stats.partition_pairs_pruned,
            partition_pairs_replayed: out.stats.partition_pairs_replayed,
            partition_pairs_never_needed: out.stats.partition_pairs_never_needed,
            hits_by_worker: out.stats.buffer_hits_by_worker[..trim].to_vec(),
            misses_by_worker: out.stats.buffer_misses_by_worker[..trim].to_vec(),
            queue_wait_ns: 0,
            admission_rejections: 0,
            query_id: String::new(),
            transport: "",
            connections: 0,
        });
    };
    record(
        "kdj",
        "hs",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || hs_kdj(&r, &s, k, cfg),
    );
    record(
        "kdj",
        "b",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || b_kdj(&r, &s, k, cfg),
    );
    record(
        "kdj",
        "am",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || am_kdj(&r, &s, k, cfg, &AmKdjOptions::default()),
    );
    // The prefilter ablation: the same aggressive kdj as "am" with the
    // quantized screen forced off. Diffing the two rows' wall time and
    // the on-row's quantized_rejects prices the prefilter on this
    // workload.
    let cfg_noq = JoinConfig {
        quantized_prefilter: false,
        ..cfg.clone()
    };
    record("kdj", "am", 1, false, "locality", false, &mut || {
        am_kdj(&r, &s, k, &cfg_noq, &AmKdjOptions::default())
    });
    // SJ-SORT gets the paper's favorable oracle: the true k-th distance
    // (taken from an uncounted B-KDJ run before the measured one starts).
    let oracle_dmax = b_kdj(&r, &s, k, cfg).results.last().map_or(0.0, |p| p.dist);
    record(
        "kdj",
        "sjsort",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || sj_sort(&r, &s, k, oracle_dmax, cfg),
    );
    for t in thread_counts {
        for (steal, part, c) in sched_cells(t) {
            record(
                "kdj",
                "par",
                t,
                steal,
                part,
                c.quantized_prefilter,
                &mut || par_b_kdj(&r, &s, k, &c, t),
            );
        }
    }
    for t in thread_counts {
        for (steal, part, c) in sched_cells(t) {
            record(
                "kdj",
                "par-am",
                t,
                steal,
                part,
                c.quantized_prefilter,
                &mut || par_am_kdj(&r, &s, k, &c, &AmKdjOptions::default(), t),
            );
        }
    }
    // The checkpoint-overhead row: the same aggressive kdj as the "am"
    // row above, but run through the resumable episode loop, pausing
    // every few thousand expansions to serialize and write a snapshot.
    // Comparing its wall time against "am" prices checkpointing.
    let ckpt_path =
        std::env::temp_dir().join(format!("amdj-bench-ckpt-{}.snap", std::process::id()));
    record(
        "kdj",
        "am-ckpt",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || {
            let mut resume = None;
            let mut written = 0u64;
            loop {
                let ctl = PauseCtl::every(5_000);
                match kdj_resumable(&r, &s, k, cfg, true, 1, None, resume.take(), Some(&ctl))
                    .expect("fresh or self-produced snapshot is always valid")
                {
                    Checkpointed::Done(out) => {
                        ckpt_written.set(written);
                        return out;
                    }
                    Checkpointed::Suspended(snap, _) => {
                        write_checkpoint(&ckpt_path, snap.as_ref()).expect("checkpoint write");
                        written += 1;
                        resume = Some(*snap);
                    }
                }
            }
        },
    );
    let _ = std::fs::remove_file(&ckpt_path);
    record(
        "idj",
        "hs",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || {
            let mut cursor = HsIdj::new(&r, &s, cfg);
            let mut results = Vec::with_capacity(k);
            while results.len() < k {
                match cursor.next() {
                    Some(p) => results.push(p),
                    None => break,
                }
            }
            JoinOutput {
                results,
                stats: cursor.stats(),
            }
        },
    );
    record(
        "idj",
        "am",
        1,
        false,
        "locality",
        cfg.quantized_prefilter,
        &mut || {
            let mut cursor = AmIdj::new(&r, &s, cfg, AmIdjOptions::default());
            let mut results = Vec::with_capacity(k);
            while results.len() < k {
                match cursor.next() {
                    Some(p) => results.push(p),
                    None => break,
                }
            }
            JoinOutput {
                results,
                stats: cursor.stats(),
            }
        },
    );
    for t in thread_counts {
        for (steal, part, c) in sched_cells(t) {
            record(
                "idj",
                "par-am",
                t,
                steal,
                part,
                c.quantized_prefilter,
                &mut || par_am_idj(&r, &s, k, &c, &AmIdjOptions::default(), t),
            );
        }
    }
    // Partitioned-vs-monolithic ablation, on distributions where the
    // bounds-only partition-pair pre-filter actually fires: two
    // independent clustered sets, and the TIGER-like Arizona streets ×
    // hydrography workload (scaled so streets ≈ n). Each dataset gets
    // the aggressive kdj monolithically and again as an 8-partition
    // plan — diffing the row pair prices STR tiling plus pruning, and
    // because the plan is bit-identical their `results` must agree.
    let (az_streets, az_hydro) = tiger::arizona_workload(n as f64 / 633_461.0, seed + 2);
    let part_workloads: [(&'static str, Dataset, Dataset); 2] = [
        (
            "clustered",
            clustered_points(n, 16, 0.02, unit_universe(), seed + 3),
            clustered_points(n, 16, 0.02, unit_universe(), seed + 4),
        ),
        ("arizona", az_streets, az_hydro),
    ];
    for (label, ra, sb) in part_workloads {
        let rp = RTree::bulk_load(RTreeParams::paper_defaults(), ra);
        let sp = RTree::bulk_load(RTreeParams::paper_defaults(), sb);
        cur_dataset.set(label);
        for parts in [0usize, 8] {
            cur_partitions.set(parts);
            let c = JoinConfig {
                partitions: (parts > 1).then_some(parts),
                ..cfg.clone()
            };
            record(
                "kdj",
                "am",
                1,
                false,
                "locality",
                c.quantized_prefilter,
                &mut || am_kdj(&rp, &sp, k, &c, &AmKdjOptions::default()),
            );
        }
    }
    // The serve section: 144 concurrent mixed queries — one-shot KDJ
    // at several knob settings plus pull-driven IDJ cursors — driven
    // over a real TCP listener in front of one `serve::Server`, 16
    // client connections each carrying its share of the queries
    // serially. Every query's result stream is re-parsed off the wire
    // (the protocol prints distances in shortest round-trip form) and
    // asserted bit-identical to its serial one-shot equivalent before
    // its row is recorded; the row then carries the per-query
    // attribution (buffer hits/misses/evictions, admission queue wait)
    // and the transport provenance.
    enum ServeKind {
        Kdj { k: usize, spec: QuerySpec },
        Idj { take: usize, batch: usize },
    }
    const SERVE_QUERIES: usize = 144;
    const SERVE_CONNS: usize = 16;
    let mut cells = Vec::new();
    for i in 0..SERVE_QUERIES {
        let kind = match i % 4 {
            0 => ServeKind::Kdj {
                k: (k / (1 + i % 3)).max(1),
                spec: QuerySpec::default(),
            },
            1 => ServeKind::Kdj {
                k: (k / 2).max(1),
                spec: QuerySpec {
                    aggressive: false,
                    threads: 2,
                    ..QuerySpec::default()
                },
            },
            2 => ServeKind::Idj {
                take: k.max(3),
                batch: (k / 3).max(1),
            },
            _ => ServeKind::Kdj {
                k: (k / 4).max(1),
                spec: QuerySpec {
                    threads: 2,
                    ..QuerySpec::default()
                },
            },
        };
        cells.push((format!("q{i:03}"), kind));
    }
    // Serial expectations through the ordinary one-shot entry points.
    let expected: Vec<Vec<ResultPair>> = cells
        .iter()
        .map(|(_, kind)| match kind {
            ServeKind::Kdj { k, spec } => {
                let mut c = cfg.clone();
                if let Some(steal) = spec.steal {
                    c.steal = steal;
                }
                // Mirror the server's `config_for`: 0 keeps the base
                // config's partitioning, nonzero overrides it.
                if spec.partitions > 0 {
                    c.partitions = (spec.partitions > 1).then_some(spec.partitions as usize);
                }
                let t = (spec.threads as usize).max(1);
                match (spec.aggressive, t > 1) {
                    (true, false) => am_kdj(&r, &s, *k, &c, &AmKdjOptions::default()).results,
                    (true, true) => par_am_kdj(&r, &s, *k, &c, &AmKdjOptions::default(), t).results,
                    (false, false) => b_kdj(&r, &s, *k, &c).results,
                    (false, true) => par_b_kdj(&r, &s, *k, &c, t).results,
                }
            }
            ServeKind::Idj { take, .. } => {
                let mut cursor = AmIdj::new(&r, &s, cfg, AmIdjOptions::default());
                let mut out = Vec::with_capacity(*take);
                while out.len() < *take {
                    match cursor.next() {
                        Some(p) => out.push(p),
                        None => break,
                    }
                }
                out
            }
        })
        .collect();
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            base_config: cfg.clone(),
            ..ServeOptions::default()
        },
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bench serve bind");
    let addr = listener.local_addr().expect("bench serve local addr");
    let topts = TransportOptions::default();
    let stop = AtomicBool::new(false);
    type QuerySlot = Option<(f64, Vec<ResultPair>)>;
    let slots: Mutex<Vec<QuerySlot>> = Mutex::new((0..cells.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        let lh = scope.spawn(|| serve_listener(&server, listener, &topts, &stop));
        let clients: Vec<_> = (0..SERVE_CONNS)
            .map(|c| {
                let (cells, slots) = (&cells, &slots);
                scope.spawn(move || {
                    let stream = std::net::TcpStream::connect(addr).expect("bench serve connect");
                    stream.set_nodelay(true).expect("bench serve nodelay");
                    let mut reader =
                        std::io::BufReader::new(stream.try_clone().expect("bench serve clone"));
                    let mut stream = stream;
                    let mut request = |line: String| -> String {
                        stream
                            .write_all(line.as_bytes())
                            .and_then(|()| stream.write_all(b"\n"))
                            .expect("bench serve write");
                        let mut resp = String::new();
                        reader.read_line(&mut resp).expect("bench serve read");
                        assert!(
                            resp.contains("\"ok\":true"),
                            "bench serve request failed: {resp}"
                        );
                        resp
                    };
                    for (i, (id, kind)) in cells.iter().enumerate() {
                        if i % SERVE_CONNS != c {
                            continue;
                        }
                        let start = std::time::Instant::now();
                        let results = match kind {
                            ServeKind::Kdj { k, spec } => {
                                parse_wire_results(&request(kdj_request_line(id, *k, spec)))
                            }
                            ServeKind::Idj { take, batch } => {
                                request(format!(
                                    "{{\"op\":\"idj_open\",\"id\":\"{id}\",\"take\":{take}}}"
                                ));
                                let mut out = Vec::with_capacity(*take);
                                loop {
                                    let resp = request(format!(
                                        "{{\"op\":\"idj_pull\",\"id\":\"{id}\",\"n\":{batch}}}"
                                    ));
                                    let done = resp.contains("\"done\":true");
                                    out.extend(parse_wire_results(&resp));
                                    if done || out.len() >= *take {
                                        break;
                                    }
                                }
                                request(format!("{{\"op\":\"idj_close\",\"id\":\"{id}\"}}"));
                                out
                            }
                        };
                        slots.lock().expect("bench serve slots")[i] =
                            Some((start.elapsed().as_secs_f64(), results));
                    }
                })
            })
            .collect();
        for h in clients {
            h.join().expect("bench serve client panicked");
        }
        stop.store(true, Ordering::SeqCst);
        lh.join()
            .expect("bench serve listener panicked")
            .expect("bench serve transport");
    });
    let measured: Vec<(f64, Vec<ResultPair>)> = slots
        .into_inner()
        .expect("bench serve slots")
        .into_iter()
        .map(|slot| slot.expect("every serve query measured"))
        .collect();
    for (((id, _), (_, got)), want) in cells.iter().zip(&measured).zip(&expected) {
        assert_eq!(
            got.len(),
            want.len(),
            "serve query {id}: result count diverged from the serial equivalent"
        );
        for (a, b) in got.iter().zip(want) {
            assert!(
                a.r == b.r && a.s == b.s && a.dist.to_bits() == b.dist.to_bits(),
                "serve query {id} diverged from its serial equivalent over the wire"
            );
        }
    }
    let reports = server.query_reports();
    let rejections = server.admission_rejections();
    for (((id, kind), (wall, _)), want) in cells.iter().zip(&measured).zip(&expected) {
        let (algo, rep_op, kq, threads): (&'static str, &'static str, usize, usize) = match kind {
            ServeKind::Kdj { k, spec } => ("kdj", "kdj", *k, (spec.threads as usize).max(1)),
            ServeKind::Idj { take, .. } => ("idj", "idj", *take, 1),
        };
        let rep = reports
            .iter()
            .find(|r| r.id == *id && r.op == rep_op)
            .expect("every serve query leaves a report");
        rows.push(BenchRow {
            op: "serve",
            algo,
            dataset: "uniform-clustered",
            threads,
            steal: cfg.steal,
            partition: "locality",
            prefilter: cfg.quantized_prefilter,
            k: kq,
            wall_time_s: *wall,
            node_accesses: 0,
            pairs_computed: 0,
            quantized_rejects: 0,
            exact_dist_skipped: 0,
            results: want.len(),
            pairs_stolen: 0,
            steal_attempts: 0,
            barrier_idle_ns: 0,
            buffer_hits: rep.buffer_hits,
            buffer_misses: rep.buffer_misses,
            buffer_evictions: rep.buffer_evictions,
            buffer_hit_rate: hit_rate(rep.buffer_hits, rep.buffer_misses),
            checkpoints: 0,
            partitions: 0,
            partition_pairs_total: 0,
            partition_pairs_pruned: 0,
            partition_pairs_replayed: 0,
            partition_pairs_never_needed: 0,
            hits_by_worker: Vec::new(),
            misses_by_worker: Vec::new(),
            queue_wait_ns: rep.queue_wait_ns,
            admission_rejections: rejections,
            query_id: id.clone(),
            transport: "tcp",
            connections: SERVE_CONNS,
        });
    }
    rows
}

/// Formats a serve-protocol kdj request line from a bench cell's spec;
/// default knobs stay off the wire, exactly like a real client.
fn kdj_request_line(id: &str, k: usize, spec: &QuerySpec) -> String {
    let mut line = format!("{{\"op\":\"kdj\",\"id\":\"{id}\",\"k\":{k}");
    if !spec.aggressive {
        line.push_str(",\"aggressive\":false");
    }
    if spec.threads != 1 {
        line.push_str(&format!(",\"threads\":{}", spec.threads));
    }
    if spec.partitions != 0 {
        line.push_str(&format!(",\"partitions\":{}", spec.partitions));
    }
    if let Some(steal) = spec.steal {
        line.push_str(&format!(",\"steal\":{steal}"));
    }
    line.push('}');
    line
}

/// Scans the `results` array off a serve Results response line. The
/// protocol prints distances in shortest round-trip form, so the f64s
/// recovered here are bit-identical to the server's.
fn parse_wire_results(line: &str) -> Vec<ResultPair> {
    let Some(arr) = line.split("\"results\":[").nth(1) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = arr;
    while let Some(idx) = rest.find("\"r\":") {
        rest = &rest[idx + 4..];
        let comma = rest.find(',').expect("wire pair: r unterminated");
        let r: u64 = rest[..comma].parse().expect("wire pair: r");
        let idx = rest.find("\"s\":").expect("wire pair: no s");
        rest = &rest[idx + 4..];
        let comma = rest.find(',').expect("wire pair: s unterminated");
        let s: u64 = rest[..comma].parse().expect("wire pair: s");
        let idx = rest.find("\"dist\":").expect("wire pair: no dist");
        rest = &rest[idx + 7..];
        let end = rest.find('}').expect("wire pair: dist unterminated");
        let dist: f64 = rest[..end].parse().expect("wire pair: dist");
        out.push(ResultPair { r, s, dist });
        rest = &rest[end..];
    }
    out
}

/// `[a, b, c]` — no JSON dependency, numbers only.
fn json_u64_array(vals: &[u64]) -> String {
    let inner: Vec<String> = vals.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

/// Serializes the matrix without a JSON dependency: every value is a
/// number or a fixed-vocabulary string, so manual escaping is not needed.
fn bench_rows_json(n: usize, k: usize, seed: u64, rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    // Bumped whenever rows/fields change shape: 2 added the sjsort kdj row
    // and the hs idj row; 3 added the steal column, the scheduler
    // counters (pairs_stolen / steal_attempts / barrier_idle_ns), and the
    // 8-thread steal-on vs steal-off rows; 4 added the partition column,
    // the buffer hit/miss totals with their per-worker breakdowns, and
    // the 8-thread locality vs round-robin rows; 5 added the am-ckpt
    // checkpoint-overhead row and the checkpoints_written column; 6 added
    // the prefilter column, the quantized_rejects / exact_dist_skipped
    // counters, and the kdj "am" prefilter-off ablation row; 7 added the
    // dataset and partitions columns, the partition_pairs_* ledger
    // counters, and the partitioned-vs-monolithic ablation rows on the
    // clustered and arizona workloads; 8 added the serve section (32
    // concurrent mixed queries through the in-process join server, one
    // op="serve" row per query, bit-identity asserted against serial
    // equivalents) and the query_id / queue_wait_ns /
    // admission_rejections columns; 9 moved the serve section onto the
    // TCP transport (144 queries over 16 concurrent connections,
    // bit-identity re-parsed off the wire) and added the transport /
    // connections / buffer_evictions / buffer_hit_rate columns.
    out.push_str("  \"schema_version\": 9,\n");
    out.push_str(&format!(
        "  \"workload\": {{ \"n\": {n}, \"k\": {k}, \"seed\": {seed}, \"r\": \"uniform\", \"s\": \"clustered\" }},\n"
    ));
    out.push_str("  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"op\": \"{}\", \"algo\": \"{}\", \"dataset\": \"{}\", \"query_id\": \"{}\", \"transport\": \"{}\", \"connections\": {}, \"threads\": {}, \"steal\": {}, \"partition\": \"{}\", \"prefilter\": {}, \"k\": {}, \"partitions\": {}, \"wall_time_s\": {:.6}, \"node_accesses\": {}, \"pairs_computed\": {}, \"quantized_rejects\": {}, \"exact_dist_skipped\": {}, \"results\": {}, \"pairs_stolen\": {}, \"steal_attempts\": {}, \"barrier_idle_ns\": {}, \"buffer_hits\": {}, \"buffer_misses\": {}, \"buffer_evictions\": {}, \"buffer_hit_rate\": {:.6}, \"queue_wait_ns\": {}, \"admission_rejections\": {}, \"checkpoints_written\": {}, \"partition_pairs_total\": {}, \"partition_pairs_pruned\": {}, \"partition_pairs_replayed\": {}, \"partition_pairs_never_needed\": {}, \"buffer_hits_by_worker\": {}, \"buffer_misses_by_worker\": {} }}{}\n",
            row.op,
            row.algo,
            row.dataset,
            row.query_id,
            row.transport,
            row.connections,
            row.threads,
            row.steal,
            row.partition,
            row.prefilter,
            row.k,
            row.partitions,
            row.wall_time_s,
            row.node_accesses,
            row.pairs_computed,
            row.quantized_rejects,
            row.exact_dist_skipped,
            row.results,
            row.pairs_stolen,
            row.steal_attempts,
            row.barrier_idle_ns,
            row.buffer_hits,
            row.buffer_misses,
            row.buffer_evictions,
            row.buffer_hit_rate,
            row.queue_wait_ns,
            row.admission_rejections,
            row.checkpoints,
            row.partition_pairs_total,
            row.partition_pairs_pruned,
            row.partition_pairs_replayed,
            row.partition_pairs_never_needed,
            json_u64_array(&row.hits_by_worker),
            json_u64_array(&row.misses_by_worker),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
