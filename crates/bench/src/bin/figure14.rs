//! Regenerates the paper's Figure 14 (see DESIGN.md for the experiment index).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::figure14(&w);
}
