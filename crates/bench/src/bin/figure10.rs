//! Regenerates the paper's Figure 10(a–c) (see DESIGN.md for the experiment index).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::figure10(&w);
}
