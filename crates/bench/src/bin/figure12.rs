//! Regenerates the paper's Figure 12(a–c) (see DESIGN.md for the experiment index).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::figure12(&w);
}
