//! Ablation: Equation (3) vs the histogram eDmax estimator (DESIGN.md §
//! "Extensions beyond the paper").
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::ablation_estimators(&w);
}
