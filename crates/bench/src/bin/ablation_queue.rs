//! Ablation: Equation-3 queue segment boundaries vs median splits (§4.4).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::ablation_queue(&w);
}
