//! Runs every experiment of the paper's §5 in sequence — the input from
//! which EXPERIMENTS.md is compiled.
use amdj_bench::experiments as e;
fn main() {
    let w = amdj_bench::arizona();
    e::figure10(&w);
    e::table2(&w);
    e::figure11(&w);
    e::figure12(&w);
    e::figure13(&w);
    e::figure14(&w);
    e::figure15(&w);
    e::ablation_estimators(&w);
    e::ablation_queue(&w);
}
