//! Regenerates the paper's Table 2 (see DESIGN.md for the experiment index).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::table2(&w);
}
