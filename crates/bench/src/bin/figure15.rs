//! Regenerates the paper's Figure 15 (see DESIGN.md for the experiment index).
fn main() {
    let w = amdj_bench::arizona();
    amdj_bench::experiments::figure15(&w);
}
