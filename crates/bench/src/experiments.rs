//! One function per table/figure of the paper's §5. Binaries in
//! `src/bin/` are thin wrappers; `run_all` executes everything.

use amdj_core::{
    am_kdj, b_kdj, hs_kdj, sj_sort, AmIdj, AmIdjOptions, AmKdjOptions, EdmaxPolicy,
    HistogramEstimator, HsIdj, JoinConfig, JoinOutput, JoinStats,
};
use amdj_rtree::RTree;

use crate::{banner, build_trees, fmt_count, fmt_secs, k_max, k_sweep, reset, Table, Workload};

/// Paper default: 512 KB for the queue memory and the R-tree buffer.
const MEM_512K: usize = 512 * 1024;

fn kdj_suite(
    r: &RTree<2>,
    s: &RTree<2>,
    k: usize,
    cfg: &JoinConfig,
) -> [(&'static str, JoinOutput); 4] {
    reset(r, s);
    let hs = hs_kdj(r, s, k, cfg);
    reset(r, s);
    let bk = b_kdj(r, s, k, cfg);
    reset(r, s);
    let am = am_kdj(r, s, k, cfg, &AmKdjOptions::default());
    let dmax = bk.results.last().map_or(0.0, |p| p.dist);
    reset(r, s);
    let sj = sj_sort(r, s, k, dmax, cfg);
    [
        ("HS-KDJ", hs),
        ("B-KDJ", bk),
        ("AM-KDJ", am),
        ("SJ-SORT", sj),
    ]
}

/// Figure 10: k-distance joins — distance computations, queue insertions,
/// and response time vs k for HS-KDJ, B-KDJ, AM-KDJ, SJ-SORT.
pub fn figure10(w: &Workload) {
    banner("Figure 10", w);
    let (r, s) = build_trees(w, MEM_512K);
    let cfg = JoinConfig::with_queue_memory(MEM_512K);
    let header = ["k", "HS-KDJ", "B-KDJ", "AM-KDJ", "SJ-SORT"];
    let mut dist = Table::new("Figure 10(a): real distance computations", &header);
    let mut ins = Table::new("Figure 10(b): queue insertions", &header);
    let mut time = Table::new("Figure 10(c): response time (model)", &header);
    let mut time99 = Table::new("Figure 10(c'): response time (1999-CPU model)", &header);
    for k in k_sweep() {
        let outs = kdj_suite(&r, &s, k, &cfg);
        dist.row(
            std::iter::once(fmt_count(k as u64))
                .chain(outs.iter().map(|(_, o)| fmt_count(o.stats.real_dist)))
                .collect(),
        );
        ins.row(
            std::iter::once(fmt_count(k as u64))
                .chain(
                    outs.iter()
                        .map(|(_, o)| fmt_count(o.stats.mainq_insertions)),
                )
                .collect(),
        );
        time.row(
            std::iter::once(fmt_count(k as u64))
                .chain(outs.iter().map(|(_, o)| fmt_secs(o.stats.response_time())))
                .collect(),
        );
        time99.row(
            std::iter::once(fmt_count(k as u64))
                .chain(
                    outs.iter()
                        .map(|(_, o)| fmt_secs(o.stats.response_time_1999())),
                )
                .collect(),
        );
    }
    dist.print();
    ins.print();
    time.print();
    time99.print();
}

/// Table 2: R-tree node accesses — disk fetches with a 512 KB buffer, and
/// (parenthesized) total node requests, i.e. the no-buffer figure.
pub fn table2(w: &Workload) {
    banner("Table 2", w);
    let (r, s) = build_trees(w, MEM_512K);
    let cfg = JoinConfig::with_queue_memory(MEM_512K);
    let ks: Vec<usize> = [100usize, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&k| k <= k_max())
        .collect();
    let mut header = vec!["algorithm".to_string()];
    header.extend(ks.iter().map(|k| format!("k={}", fmt_count(*k as u64))));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table 2: R-tree node accesses, buffered (unbuffered in parens)",
        &header_refs,
    );
    let mut rows: Vec<Vec<String>> = vec![
        vec!["HS-KDJ".into()],
        vec!["B-KDJ".into()],
        vec!["AM-KDJ".into()],
        vec!["SJ-SORT".into()],
    ];
    for &k in &ks {
        let outs = kdj_suite(&r, &s, k, &cfg);
        for (i, (_, o)) in outs.iter().enumerate() {
            rows[i].push(format!(
                "{} ({})",
                fmt_count(o.stats.node_disk_reads),
                fmt_count(o.stats.node_requests)
            ));
        }
    }
    for row in rows {
        t.row(row);
    }
    t.print();
}

/// Figure 11: the optimized plane sweep (axis + direction selection) on
/// vs off, measured in axis + real distance computations for B-KDJ.
pub fn figure11(w: &Workload) {
    banner("Figure 11", w);
    let (r, s) = build_trees(w, MEM_512K);
    let on = JoinConfig::with_queue_memory(MEM_512K);
    let off = JoinConfig {
        optimize_axis: false,
        optimize_direction: false,
        ..on.clone()
    };
    let mut t = Table::new(
        "Figure 11: distance computations (axis + real), optimized plane sweep",
        &["k", "optimized", "fixed x/fwd", "saved"],
    );
    for k in k_sweep() {
        reset(&r, &s);
        let opt = b_kdj(&r, &s, k, &on);
        reset(&r, &s);
        let fixed = b_kdj(&r, &s, k, &off);
        let a = opt.stats.total_dist_computations();
        let b = fixed.stats.total_dist_computations();
        let saved = if b > 0 {
            100.0 * (b as f64 - a as f64) / b as f64
        } else {
            0.0
        };
        t.row(vec![
            fmt_count(k as u64),
            fmt_count(a),
            fmt_count(b),
            format!("{saved:.1}%"),
        ]);
    }
    t.print();
}

/// Figure 12: incremental distance joins — HS-IDJ vs AM-IDJ driven to k
/// results (SJ-SORT as the non-incremental reference).
pub fn figure12(w: &Workload) {
    banner("Figure 12", w);
    let (r, s) = build_trees(w, MEM_512K);
    let cfg = JoinConfig::with_queue_memory(MEM_512K);
    let header = ["k", "HS-IDJ", "AM-IDJ", "SJ-SORT"];
    let mut dist = Table::new("Figure 12(a): real distance computations", &header);
    let mut ins = Table::new("Figure 12(b): queue insertions", &header);
    let mut time = Table::new("Figure 12(c): response time (model)", &header);
    let mut time99 = Table::new("Figure 12(c'): response time (1999-CPU model)", &header);
    for k in k_sweep() {
        reset(&r, &s);
        let hs = drive_idj_hs(&r, &s, k, &cfg);
        reset(&r, &s);
        let (am, last_dist) = drive_idj_am(&r, &s, k, &cfg);
        reset(&r, &s);
        let sj = sj_sort(&r, &s, k, last_dist, &cfg).stats;
        dist.row(vec![
            fmt_count(k as u64),
            fmt_count(hs.real_dist),
            fmt_count(am.real_dist),
            fmt_count(sj.real_dist),
        ]);
        ins.row(vec![
            fmt_count(k as u64),
            fmt_count(hs.mainq_insertions),
            fmt_count(am.mainq_insertions),
            fmt_count(sj.mainq_insertions),
        ]);
        time.row(vec![
            fmt_count(k as u64),
            fmt_secs(hs.response_time()),
            fmt_secs(am.response_time()),
            fmt_secs(sj.response_time()),
        ]);
        time99.row(vec![
            fmt_count(k as u64),
            fmt_secs(hs.response_time_1999()),
            fmt_secs(am.response_time_1999()),
            fmt_secs(sj.response_time_1999()),
        ]);
    }
    dist.print();
    ins.print();
    time.print();
    time99.print();
}

fn drive_idj_hs(r: &RTree<2>, s: &RTree<2>, k: usize, cfg: &JoinConfig) -> JoinStats {
    let mut cursor = HsIdj::new(r, s, cfg);
    for _ in 0..k {
        if cursor.next().is_none() {
            break;
        }
    }
    cursor.stats()
}

fn drive_idj_am(r: &RTree<2>, s: &RTree<2>, k: usize, cfg: &JoinConfig) -> (JoinStats, f64) {
    let mut cursor = AmIdj::new(r, s, cfg, AmIdjOptions::default());
    let mut last = 0.0;
    for _ in 0..k {
        match cursor.next() {
            Some(p) => last = p.dist,
            None => break,
        }
    }
    (cursor.stats(), last)
}

/// Figure 13: response time vs memory (queue memory = R-tree buffer,
/// 64 KB – 1024 KB) at the largest k.
pub fn figure13(w: &Workload) {
    banner("Figure 13", w);
    let k = k_max();
    let mut t = Table::new(
        &format!(
            "Figure 13: response time vs memory size (k = {})",
            fmt_count(k as u64)
        ),
        &["memory", "HS-KDJ", "B-KDJ", "AM-KDJ", "SJ-SORT"],
    );
    for mem_kb in [64usize, 128, 256, 512, 1024] {
        let mem = mem_kb * 1024;
        let (r, s) = build_trees(w, mem);
        let cfg = JoinConfig::with_queue_memory(mem);
        let outs = kdj_suite(&r, &s, k, &cfg);
        t.row(
            std::iter::once(format!("{mem_kb} KB"))
                .chain(outs.iter().map(|(_, o)| fmt_secs(o.stats.response_time())))
                .collect(),
        );
    }
    t.print();
}

/// Figure 14: AM-KDJ sensitivity to the accuracy of `eDmax`
/// (0.1×Dmax … 10×Dmax) at the largest k, with B-KDJ as the reference.
pub fn figure14(w: &Workload) {
    banner("Figure 14", w);
    let k = k_max();
    let (r, s) = build_trees(w, MEM_512K);
    let cfg = JoinConfig::with_queue_memory(MEM_512K);
    reset(&r, &s);
    let bk = b_kdj(&r, &s, k, &cfg);
    let dmax = bk.results.last().map_or(0.0, |p| p.dist);
    let mut t = Table::new(
        &format!(
            "Figure 14: AM-KDJ vs eDmax accuracy (k = {}, Dmax = {dmax:.6})",
            fmt_count(k as u64)
        ),
        &[
            "eDmax/Dmax",
            "real dists",
            "queue ins",
            "resp. time",
            "stages",
        ],
    );
    for factor in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
        reset(&r, &s);
        let out = am_kdj(
            &r,
            &s,
            k,
            &cfg,
            &AmKdjOptions {
                edmax_override: Some(dmax * factor),
            },
        );
        t.row(vec![
            format!("{factor:.1}"),
            fmt_count(out.stats.real_dist),
            fmt_count(out.stats.mainq_insertions),
            fmt_secs(out.stats.response_time()),
            out.stats.stages.to_string(),
        ]);
    }
    t.row(vec![
        "B-KDJ ref".into(),
        fmt_count(bk.stats.real_dist),
        fmt_count(bk.stats.mainq_insertions),
        fmt_secs(bk.stats.response_time()),
        "1".into(),
    ]);
    t.print();
}

/// Figure 15: stepwise incremental execution — batches of k/10 results up
/// to k, comparing HS-IDJ, AM-IDJ (estimated eDmax), AM-IDJ (real Dmax
/// schedule), and SJ-SORT restarted per batch (cumulative).
pub fn figure15(w: &Workload) {
    banner("Figure 15", w);
    let total = k_max();
    let step = (total / 10).max(1);
    let (r, s) = build_trees(w, MEM_512K);
    let cfg = JoinConfig::with_queue_memory(MEM_512K);

    // One exact run provides the real Dmax at every batch boundary.
    reset(&r, &s);
    let exact = b_kdj(&r, &s, total, &JoinConfig::unbounded());
    let dmax_at = |i: usize| -> f64 {
        exact
            .results
            .get((i * step).min(exact.results.len()) - 1)
            .map_or(0.0, |p| p.dist)
    };
    let schedule: Vec<f64> = (1..=10).map(dmax_at).collect();

    let mut t = Table::new(
        &format!(
            "Figure 15: stepwise incremental response time (batches of {})",
            fmt_count(step as u64)
        ),
        &[
            "pairs",
            "HS-IDJ",
            "AM-IDJ est.",
            "AM-IDJ real",
            "SJ-SORT cum.",
        ],
    );

    reset(&r, &s);
    let mut hs_rows = Vec::new();
    {
        let mut hs = HsIdj::new(&r, &s, &cfg);
        for _ in 0..10 {
            for _ in 0..step {
                if hs.next().is_none() {
                    break;
                }
            }
            hs_rows.push(hs.stats().response_time());
        }
    }

    reset(&r, &s);
    let mut am_est_rows = Vec::new();
    {
        let opts = AmIdjOptions {
            initial_k: step as u64,
            ..AmIdjOptions::default()
        };
        let mut am = AmIdj::new(&r, &s, &cfg, opts);
        for _ in 0..10 {
            for _ in 0..step {
                if am.next().is_none() {
                    break;
                }
            }
            am_est_rows.push(am.stats().response_time());
        }
    }

    reset(&r, &s);
    let mut am_real_rows = Vec::new();
    {
        let opts = AmIdjOptions {
            initial_k: step as u64,
            growth: 2.0,
            edmax: EdmaxPolicy::Schedule(schedule),
        };
        let mut am = AmIdj::new(&r, &s, &cfg, opts);
        for _ in 0..10 {
            for _ in 0..step {
                if am.next().is_none() {
                    break;
                }
            }
            am_real_rows.push(am.stats().response_time());
        }
    }

    let mut sj_cum = 0.0;
    let mut sj_rows = Vec::new();
    for i in 1..=10 {
        reset(&r, &s);
        let out = sj_sort(&r, &s, i * step, dmax_at(i), &cfg);
        sj_cum += out.stats.response_time();
        sj_rows.push(sj_cum);
    }

    for i in 0..10 {
        t.row(vec![
            fmt_count(((i + 1) * step) as u64),
            fmt_secs(hs_rows[i]),
            fmt_secs(am_est_rows[i]),
            fmt_secs(am_real_rows[i]),
            fmt_secs(sj_rows[i]),
        ]);
    }
    t.print();
}

/// Ablation (beyond the paper; its §6 future work): Equation (3)'s
/// uniformity assumption vs the histogram estimator on the skewed
/// TIGER-like workload — how close each initial `eDmax` lands to the true
/// `Dmax`, and what that does to AM-KDJ's work.
pub fn ablation_estimators(w: &Workload) {
    banner("Ablation: eDmax estimators", w);
    let (r, s) = build_trees(w, MEM_512K);
    let cfg = JoinConfig::with_queue_memory(MEM_512K);
    let hist = HistogramEstimator::from_items(&w.streets, &w.hydro, 64);
    let mut t = Table::new(
        "eDmax estimate quality and AM-KDJ work (Eq. 3 vs histogram)",
        &[
            "k",
            "Eq3/Dmax",
            "hist/Dmax",
            "ins Eq3",
            "ins hist",
            "time Eq3",
            "time hist",
        ],
    );
    for k in k_sweep() {
        reset(&r, &s);
        let exact = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let dmax = exact.results.last().map_or(0.0, |p| p.dist);
        reset(&r, &s);
        let eq3 = am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default());
        let h_edmax = hist.edmax(k as u64);
        reset(&r, &s);
        let hg = am_kdj(
            &r,
            &s,
            k,
            &cfg,
            &AmKdjOptions {
                edmax_override: Some(h_edmax),
            },
        );
        let est = amdj_core::Estimator::<2>::from_trees(&r, &s).expect("non-empty");
        let ratio = |e: f64| {
            if dmax > 0.0 {
                format!("{:.2}", e / dmax)
            } else {
                "inf".into()
            }
        };
        t.row(vec![
            fmt_count(k as u64),
            ratio(est.initial(k as u64)),
            ratio(h_edmax),
            fmt_count(eq3.stats.mainq_insertions),
            fmt_count(hg.stats.mainq_insertions),
            fmt_secs(eq3.stats.response_time()),
            fmt_secs(hg.stats.response_time()),
        ]);
    }
    t.print();
}

/// Ablation: the Equation-3 main-queue segment boundaries of §4.4 vs
/// plain median splits, across memory budgets at the largest k.
pub fn ablation_queue(w: &Workload) {
    banner("Ablation: queue boundaries", w);
    let k = k_max();
    let mut t = Table::new(
        &format!(
            "B-KDJ queue spill traffic (k = {}): Eq. 3 boundaries vs median splits",
            fmt_count(k as u64)
        ),
        &[
            "memory",
            "pages Eq3",
            "pages median",
            "time Eq3",
            "time median",
        ],
    );
    for mem_kb in [128usize, 512] {
        let mem = mem_kb * 1024;
        let (r, s) = build_trees(w, mem);
        let eq3_cfg = JoinConfig::with_queue_memory(mem);
        let med_cfg = JoinConfig {
            eq3_queue_boundaries: false,
            ..eq3_cfg.clone()
        };
        reset(&r, &s);
        let eq3 = b_kdj(&r, &s, k, &eq3_cfg);
        reset(&r, &s);
        let med = b_kdj(&r, &s, k, &med_cfg);
        t.row(vec![
            format!("{mem_kb} KB"),
            fmt_count(eq3.stats.queue_page_reads + eq3.stats.queue_page_writes),
            fmt_count(med.stats.queue_page_reads + med.stats.queue_page_writes),
            fmt_secs(eq3.stats.response_time()),
            fmt_secs(med.stats.response_time()),
        ]);
    }
    t.print();
}
