//! Index construction micro-benchmarks: STR bulk loading vs full R*
//! insertion, across data set sizes and distributions.

use amdj_datagen::tiger::Geography;
use amdj_datagen::{uniform_points, unit_universe};
use amdj_rtree::{RTree, RTreeParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_bulk_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree/bulk_load");
    for &n in &[1_000usize, 10_000, 50_000] {
        let data = uniform_points(n, unit_universe(), 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| RTree::bulk_load(RTreeParams::paper_defaults(), data.clone()));
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree/insert");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let data = uniform_points(n, unit_universe(), 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut t = RTree::new(RTreeParams::paper_defaults());
                for &(mbr, id) in data {
                    t.insert(mbr, id);
                }
                t
            });
        });
    }
    g.finish();
}

fn bench_bulk_load_skewed(c: &mut Criterion) {
    let geo = Geography::arizona_like(3);
    let data = geo.streets(50_000);
    c.bench_function("rtree/bulk_load/tiger_50k", |b| {
        b.iter(|| RTree::bulk_load(RTreeParams::paper_defaults(), data.clone()));
    });
}

criterion_group!(
    benches,
    bench_bulk_load,
    bench_insert,
    bench_bulk_load_skewed
);
criterion_main!(benches);
