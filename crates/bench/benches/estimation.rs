//! eDmax estimation micro-benchmarks and an accuracy probe: how far the
//! Equation (3) estimate sits from the true Dmax on uniform vs skewed
//! data (the paper §4.3 predicts overestimation under skew).

use amdj_core::{bruteforce, Correction, Estimator};
use amdj_datagen::tiger::Geography;
use amdj_datagen::{uniform_points, unit_universe};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_formulae(c: &mut Criterion) {
    let est: Estimator<2> = Estimator::new(1.0, 100_000, 30_000);
    c.bench_function("estimate/initial", |b| b.iter(|| est.initial(10_000)));
    c.bench_function("estimate/corrected_max", |b| {
        b.iter(|| est.corrected(10_000, 1_000, 0.001, Correction::MaxOfBoth))
    });
    c.bench_function("estimate/boundaries_64", |b| {
        b.iter(|| est.queue_boundaries(4096, 64))
    });
}

fn accuracy_probe(c: &mut Criterion) {
    // Not a timing benchmark per se: quantifies estimate quality once and
    // prints it, then times the probe body.
    let uni_a = uniform_points(2_000, unit_universe(), 1);
    let uni_b = uniform_points(2_000, unit_universe(), 2);
    let geo = Geography::arizona_like(9);
    let skew_a = geo.streets(2_000);
    let skew_b = geo.hydro(2_000);
    let k = 500;
    let est_uni: Estimator<2> = Estimator::new(1.0, 2_000, 2_000);
    let true_uni = bruteforce::dmax_for_k(&uni_a, &uni_b, k).unwrap();
    let true_skew = bruteforce::dmax_for_k(&skew_a, &skew_b, k).unwrap();
    println!(
        "eDmax/Dmax ratio — uniform: {:.2}, tiger-skewed: {:.2} (paper: ≈1 uniform, >1 skewed)",
        est_uni.initial(k as u64) / true_uni,
        est_uni.initial(k as u64) / true_skew,
    );
    c.bench_function("estimate/initial_vs_bruteforce_probe", |b| {
        b.iter(|| est_uni.initial(k as u64));
    });
}

criterion_group!(benches, bench_formulae, accuracy_probe);
criterion_main!(benches);
