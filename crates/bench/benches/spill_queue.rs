//! Hybrid memory/disk queue micro-benchmarks: push/pop throughput under
//! various memory budgets, and the value of Equation-3 boundaries.

use amdj_storage::codec::{put_f64, put_u64, Reader};
use amdj_storage::{SpillItem, SpillQueue, SpillQueueConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

#[derive(Clone, Copy)]
struct Item {
    key: f64,
    id: u64,
}

impl SpillItem for Item {
    fn key(&self) -> f64 {
        self.key
    }
    fn encoded_len(&self) -> usize {
        16
    }
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.key);
        put_u64(out, self.id);
    }
    fn try_decode(r: &mut Reader<'_>) -> Result<Self, amdj_storage::codec::CodecError> {
        Ok(Item {
            key: r.try_f64("item key")?,
            id: r.try_u64("item id")?,
        })
    }
}

fn keys(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 1_000_000) as f64)
        .collect()
}

fn bench_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("spill_queue/push_pop_100k");
    let ks = keys(100_000);
    g.throughput(Throughput::Elements(ks.len() as u64));
    for &budget in &[16 * 1024usize, 512 * 1024, usize::MAX] {
        let label = if budget == usize::MAX {
            "unbounded".to_string()
        } else {
            format!("{}k", budget / 1024)
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &budget, |b, &budget| {
            b.iter(|| {
                let mut q = SpillQueue::new(SpillQueueConfig {
                    mem_budget: budget,
                    boundaries: vec![],
                    cost: amdj_storage::CostModel::free(),
                });
                for (i, &k) in ks.iter().enumerate() {
                    q.push(Item {
                        key: k,
                        id: i as u64,
                    });
                }
                let mut n = 0u64;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            });
        });
    }
    g.finish();
}

fn bench_boundary_guidance(c: &mut Criterion) {
    // Equation-3 boundaries vs median splits for a uniform key stream.
    let ks = keys(100_000);
    let mut g = c.benchmark_group("spill_queue/boundaries");
    for with in [false, true] {
        let name = if with { "eq3" } else { "median" };
        g.bench_function(name, |b| {
            b.iter(|| {
                let boundaries = if with {
                    (1..=64).map(|i| (i * 4000) as f64).collect()
                } else {
                    vec![]
                };
                let mut q = SpillQueue::new(SpillQueueConfig {
                    mem_budget: 64 * 1024,
                    boundaries,
                    cost: amdj_storage::CostModel::free(),
                });
                for (i, &k) in ks.iter().enumerate() {
                    q.push(Item {
                        key: k,
                        id: i as u64,
                    });
                }
                let mut n = 0u64;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push_pop, bench_boundary_guidance);
criterion_main!(benches);
