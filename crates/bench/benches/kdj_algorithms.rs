//! End-to-end k-distance-join timings: HS-KDJ vs B-KDJ vs AM-KDJ vs
//! SJ-SORT on the TIGER-like workload (the timing view of Figure 10),
//! plus the parallel drivers at several thread counts.

use amdj_bench::{build_trees, reset, Workload};
use amdj_core::{am_kdj, b_kdj, hs_kdj, par_am_kdj, par_b_kdj, sj_sort, AmKdjOptions, JoinConfig};
use amdj_datagen::tiger;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn workload() -> Workload {
    let (streets, hydro) = tiger::arizona_workload(0.01, 2000);
    Workload { streets, hydro }
}

fn bench_kdj(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    let cfg = JoinConfig::unbounded();
    let mut g = c.benchmark_group("kdj");
    g.sample_size(10);
    for &k in &[10usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("hs_kdj", k), &k, |b, &k| {
            b.iter(|| {
                reset(&r, &s);
                hs_kdj(&r, &s, k, &cfg).results.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("b_kdj", k), &k, |b, &k| {
            b.iter(|| {
                reset(&r, &s);
                b_kdj(&r, &s, k, &cfg).results.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("am_kdj", k), &k, |b, &k| {
            b.iter(|| {
                reset(&r, &s);
                am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default())
                    .results
                    .len()
            });
        });
        let dmax = {
            reset(&r, &s);
            b_kdj(&r, &s, k, &cfg)
                .results
                .last()
                .map_or(0.0, |p| p.dist)
        };
        g.bench_with_input(BenchmarkId::new("sj_sort", k), &k, |b, &k| {
            b.iter(|| {
                reset(&r, &s);
                sj_sort(&r, &s, k, dmax, &cfg).results.len()
            });
        });
        for threads in [2usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("par_b_kdj/t{threads}"), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        reset(&r, &s);
                        par_b_kdj(&r, &s, k, &cfg, threads).results.len()
                    });
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("par_am_kdj/t{threads}"), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        reset(&r, &s);
                        par_am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default(), threads)
                            .results
                            .len()
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_kdj);
criterion_main!(benches);
