//! Ablation bench for §3's optimizations: B-KDJ with sweeping-axis and
//! direction selection on vs off (the timing view of Figure 11), plus the
//! leaf-kernel ladder — per-pair scalar sweep, explicit lane kernel, lane
//! kernel with the quantized integer prefilter — on leaf-heavy workloads,
//! with the prefilter's measured rejection rate printed alongside.

use amdj_bench::{build_trees, Workload};
use amdj_core::{am_kdj, b_kdj, within_join, AmKdjOptions, JoinConfig};
use amdj_datagen::tiger;
use criterion::{criterion_group, criterion_main, Criterion};

fn workload() -> Workload {
    let (streets, hydro) = tiger::arizona_workload(0.01, 2000);
    Workload { streets, hydro }
}

fn bench_sweep_optimizations(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    let mut g = c.benchmark_group("plane_sweep/bkdj_k1000");
    g.sample_size(10);
    let variants = [
        ("optimized", true, true),
        ("axis_only", true, false),
        ("direction_only", false, true),
        ("fixed", false, false),
    ];
    for (name, axis, dir) in variants {
        let cfg = JoinConfig {
            optimize_axis: axis,
            optimize_direction: dir,
            ..JoinConfig::unbounded()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                b_kdj(&r, &s, 1_000, &cfg).results.len()
            });
        });
    }
    g.finish();
}

/// The kernel ladder — scalar per-pair `min_dist` calls, the explicit
/// unroll-by-8 lane kernel, and the lane kernel behind the quantized
/// integer prefilter — on the two leaf-heaviest shapes we have: a
/// `within` join at the k-th oracle distance (every qualifying leaf pair
/// is swept with a frozen cutoff) and AM-KDJ stage one under a
/// deliberate under-estimate (frozen `eDmax` axis cutoff plus a
/// compensation stage). All rungs are bit-identical — the
/// `engine_matrix` suite pins that — so this group measures pure kernel
/// throughput; the prefilter's rejection rate per shape is printed so
/// the win is attributable, not assumed.
fn bench_leaf_kernel(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    amdj_bench::reset(&r, &s);
    let oracle = b_kdj(&r, &s, 1_000, &JoinConfig::unbounded());
    let dmax = oracle.results.last().map_or(0.01, |p| p.dist);
    let opts = AmKdjOptions {
        edmax_override: Some(dmax * 0.5),
    };
    let mut g = c.benchmark_group("plane_sweep/leaf_kernel");
    g.sample_size(10);
    let rungs = [
        ("scalar", false, false),
        ("lanes", true, false),
        ("lanes+quantized", true, true),
    ];
    for (name, batched, prefilter) in rungs {
        let cfg = JoinConfig {
            batched_leaf_sweep: batched,
            quantized_prefilter: prefilter,
            ..JoinConfig::unbounded()
        };
        g.bench_function(format!("within/{name}"), |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                within_join(&r, &s, dmax, &cfg).results.len()
            });
        });
        g.bench_function(format!("amkdj_underest/{name}"), |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                am_kdj(&r, &s, 1_000, &cfg, &opts).results.len()
            });
        });
    }
    g.finish();
    // Rejection rates under the full kernel, per shape: skipped exact
    // distances over the scalar path's distance count.
    let cfg = JoinConfig::unbounded();
    amdj_bench::reset(&r, &s);
    let w_stats = within_join(&r, &s, dmax, &cfg).stats;
    amdj_bench::reset(&r, &s);
    let am_stats = am_kdj(&r, &s, 1_000, &cfg, &opts).stats;
    for (shape, st) in [("within", w_stats), ("amkdj_underest", am_stats)] {
        let total = st.real_dist + st.exact_dist_skipped;
        eprintln!(
            "leaf_kernel/{shape}: prefilter rejected {} of {} candidates ({:.1}%)",
            st.quantized_rejects,
            total,
            100.0 * st.quantized_rejects as f64 / total.max(1) as f64,
        );
    }
}

criterion_group!(benches, bench_sweep_optimizations, bench_leaf_kernel);
criterion_main!(benches);
