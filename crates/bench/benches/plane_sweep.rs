//! Ablation bench for §3's optimizations: B-KDJ with sweeping-axis and
//! direction selection on vs off (the timing view of Figure 11), plus the
//! batched SoA leaf kernel against the per-pair scalar sweep on
//! leaf-heavy workloads.

use amdj_bench::{build_trees, Workload};
use amdj_core::{am_kdj, b_kdj, within_join, AmKdjOptions, JoinConfig};
use amdj_datagen::tiger;
use criterion::{criterion_group, criterion_main, Criterion};

fn workload() -> Workload {
    let (streets, hydro) = tiger::arizona_workload(0.01, 2000);
    Workload { streets, hydro }
}

fn bench_sweep_optimizations(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    let mut g = c.benchmark_group("plane_sweep/bkdj_k1000");
    g.sample_size(10);
    let variants = [
        ("optimized", true, true),
        ("axis_only", true, false),
        ("direction_only", false, true),
        ("fixed", false, false),
    ];
    for (name, axis, dir) in variants {
        let cfg = JoinConfig {
            optimize_axis: axis,
            optimize_direction: dir,
            ..JoinConfig::unbounded()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                b_kdj(&r, &s, 1_000, &cfg).results.len()
            });
        });
    }
    g.finish();
}

/// Per-pair `min_dist` calls vs the batched one-pass SoA kernel, on the
/// two leaf-heaviest shapes we have: a `within` join at the k-th oracle
/// distance (every qualifying leaf pair is swept with a frozen cutoff)
/// and AM-KDJ stage one under a deliberate under-estimate (frozen `eDmax`
/// axis cutoff plus a compensation stage). Both paths are bit-identical —
/// the `engine_matrix` suite pins that — so this group measures pure
/// kernel throughput.
fn bench_leaf_kernel(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    amdj_bench::reset(&r, &s);
    let oracle = b_kdj(&r, &s, 1_000, &JoinConfig::unbounded());
    let dmax = oracle.results.last().map_or(0.01, |p| p.dist);
    let mut g = c.benchmark_group("plane_sweep/leaf_kernel");
    g.sample_size(10);
    for (name, batched) in [("batched", true), ("per_pair", false)] {
        let cfg = JoinConfig {
            batched_leaf_sweep: batched,
            ..JoinConfig::unbounded()
        };
        g.bench_function(format!("within/{name}"), |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                within_join(&r, &s, dmax, &cfg).results.len()
            });
        });
        let opts = AmKdjOptions {
            edmax_override: Some(dmax * 0.5),
        };
        g.bench_function(format!("amkdj_underest/{name}"), |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                am_kdj(&r, &s, 1_000, &cfg, &opts).results.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_optimizations, bench_leaf_kernel);
criterion_main!(benches);
