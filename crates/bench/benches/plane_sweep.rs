//! Ablation bench for §3's optimizations: B-KDJ with sweeping-axis and
//! direction selection on vs off (the timing view of Figure 11).

use amdj_bench::{build_trees, Workload};
use amdj_core::{b_kdj, JoinConfig};
use amdj_datagen::tiger;
use criterion::{criterion_group, criterion_main, Criterion};

fn workload() -> Workload {
    let (streets, hydro) = tiger::arizona_workload(0.01, 2000);
    Workload { streets, hydro }
}

fn bench_sweep_optimizations(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    let mut g = c.benchmark_group("plane_sweep/bkdj_k1000");
    g.sample_size(10);
    let variants = [
        ("optimized", true, true),
        ("axis_only", true, false),
        ("direction_only", false, true),
        ("fixed", false, false),
    ];
    for (name, axis, dir) in variants {
        let cfg = JoinConfig {
            optimize_axis: axis,
            optimize_direction: dir,
            ..JoinConfig::unbounded()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                amdj_bench::reset(&r, &s);
                b_kdj(&r, &s, 1_000, &cfg).results.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_optimizations);
criterion_main!(benches);
