//! Cost of the closed-form sweeping index (§3.2) — the paper argues it is
//! trivial next to expanding hundreds of child pairs; verify.

use amdj_geom::{sweep_index, Rect};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_index(c: &mut Criterion) {
    let r: Rect<2> = Rect::new([0.0, 0.0], [3.0, 7.0]);
    let s: Rect<2> = Rect::new([2.0, 5.0], [9.0, 9.0]);
    c.bench_function("sweep_index/one_dim", |b| {
        b.iter(|| sweep_index::sweeping_index(&r, &s, 0.8, 0));
    });
    c.bench_function("sweep_index/choose_axis_2d", |b| {
        b.iter(|| sweep_index::choose_sweep_axis(&r, &s, 0.8));
    });
    c.bench_function("sweep_index/choose_direction", |b| {
        b.iter(|| sweep_index::choose_sweep_direction(&r, &s, 0));
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
