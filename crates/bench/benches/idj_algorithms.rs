//! Incremental-join timings: HS-IDJ vs AM-IDJ streaming k results (the
//! timing view of Figure 12), plus the parallel AM-IDJ driver.

use amdj_bench::{build_trees, reset, Workload};
use amdj_core::{par_am_idj, AmIdj, AmIdjOptions, HsIdj, JoinConfig};
use amdj_datagen::tiger;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn workload() -> Workload {
    let (streets, hydro) = tiger::arizona_workload(0.01, 2000);
    Workload { streets, hydro }
}

fn bench_idj(c: &mut Criterion) {
    let w = workload();
    let (r, s) = build_trees(&w, 512 * 1024);
    let cfg = JoinConfig::unbounded();
    let mut g = c.benchmark_group("idj");
    g.sample_size(10);
    for &k in &[100usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("hs_idj", k), &k, |b, &k| {
            b.iter(|| {
                reset(&r, &s);
                let mut cur = HsIdj::new(&r, &s, &cfg);
                let mut n = 0;
                while n < k && cur.next().is_some() {
                    n += 1;
                }
                n
            });
        });
        g.bench_with_input(BenchmarkId::new("am_idj", k), &k, |b, &k| {
            b.iter(|| {
                reset(&r, &s);
                let mut cur = AmIdj::new(&r, &s, &cfg, AmIdjOptions::default());
                let mut n = 0;
                while n < k && cur.next().is_some() {
                    n += 1;
                }
                n
            });
        });
        for threads in [2usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("par_am_idj/t{threads}"), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        reset(&r, &s);
                        par_am_idj(&r, &s, k, &cfg, &AmIdjOptions::default(), threads)
                            .results
                            .len()
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_idj);
criterion_main!(benches);
