//! Single-index query micro-benchmarks: range, within-distance, k-NN.

use amdj_datagen::{uniform_points, unit_universe};
use amdj_geom::{Point, Rect};
use amdj_rtree::{RTree, RTreeParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn tree(n: usize) -> RTree<2> {
    RTree::bulk_load(
        RTreeParams::paper_defaults(),
        uniform_points(n, unit_universe(), 5),
    )
}

fn bench_range(c: &mut Criterion) {
    let t = tree(100_000);
    let mut g = c.benchmark_group("rtree/range_query");
    for &side in &[0.01f64, 0.05, 0.2] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let q = Rect::new([0.4, 0.4], [0.4 + side, 0.4 + side]);
            b.iter(|| t.range_query(&q).len());
        });
    }
    g.finish();
}

fn bench_knn(c: &mut Criterion) {
    let t = tree(100_000);
    let mut g = c.benchmark_group("rtree/knn");
    for &k in &[1usize, 10, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let q = Point::new([0.5, 0.5]);
            b.iter(|| t.nearest_neighbors(&q, k).len());
        });
    }
    g.finish();
}

fn bench_within(c: &mut Criterion) {
    let t = tree(100_000);
    c.bench_function("rtree/within_distance/0.02", |b| {
        let q = Rect::from_point(Point::new([0.5, 0.5]));
        b.iter(|| t.within_distance(&q, 0.02).len());
    });
}

criterion_group!(benches, bench_range, bench_knn, bench_within);
criterion_main!(benches);
