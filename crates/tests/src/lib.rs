//! Shared helpers for the repository-root integration test suite (the
//! tests themselves live in `/tests`; see this package's `Cargo.toml`).

#![deny(unsafe_code)]

use amdj_datagen::Dataset;
use amdj_rtree::{RTree, RTreeParams};

/// Number of cases a property test should run: `AMDJ_PROPTEST_CASES`
/// when set — the CI stress tier (`STRESS=1 ./ci.sh`) raises it — else
/// the test's own `default`.
pub fn proptest_cases(default: u32) -> u32 {
    std::env::var("AMDJ_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds two small-page test trees from two data sets.
pub fn build_trees(a: &Dataset, b: &Dataset) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.clone()),
        RTree::bulk_load(RTreeParams::for_tests(), b.clone()),
    )
}

/// Builds two paper-configuration trees (4 KB pages, 512 KB buffer).
pub fn build_paper_trees(a: &Dataset, b: &Dataset) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::paper_defaults(), a.clone()),
        RTree::bulk_load(RTreeParams::paper_defaults(), b.clone()),
    )
}

/// Asserts two result streams carry the same distance sequence (object id
/// ties may legitimately differ between algorithms).
pub fn assert_same_distances(
    got: &[amdj_core::ResultPair],
    want: &[amdj_core::ResultPair],
    label: &str,
) {
    assert_eq!(got.len(), want.len(), "{label}: result count");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (g.dist - w.dist).abs() < 1e-9,
            "{label}: rank {i} distance {} != {}",
            g.dist,
            w.dist
        );
    }
}
