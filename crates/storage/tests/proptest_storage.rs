//! Property-based validation of the storage substrate: the spill queue
//! must behave exactly like a reference binary heap under arbitrary
//! push/pop interleavings, budgets, and boundary sets; the external
//! sorter must sort; the LRU must respect its budget.

use amdj_storage::codec::{put_f64, put_u64, CodecError, Reader};
use amdj_storage::{ByteLru, CostModel, ExternalSorter, SpillItem, SpillQueue, SpillQueueConfig};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Item {
    key: f64,
    id: u64,
}

impl SpillItem for Item {
    fn key(&self) -> f64 {
        self.key
    }
    fn encoded_len(&self) -> usize {
        16
    }
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.key);
        put_u64(out, self.id);
    }
    fn try_decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Item {
            key: r.try_f64("item key")?,
            id: r.try_u64("item id")?,
        })
    }
}

#[derive(Clone, Debug)]
enum Op {
    Push(u16),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![3 => (0u16..500).prop_map(Op::Push), 2 => Just(Op::Pop)],
        1..400,
    )
}

/// Duplicate-heavy interleavings: a handful of distinct keys forces the
/// equal-key degenerate split over and over.
fn dup_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![3 => (0u16..4).prop_map(Op::Push), 2 => Just(Op::Pop)],
        1..400,
    )
}

/// One `Item` costs this much heap memory inside the queue.
fn item_cost() -> usize {
    SpillQueue::<Item>::per_item_cost(16)
}

/// The queue may exceed its budget only transiently, by the one item a
/// push adds before the split runs (and a split needs two residents).
fn assert_budget(q: &SpillQueue<Item>, mem: usize) -> Result<(), TestCaseError> {
    prop_assert!(
        q.mem_bytes() <= mem + item_cost(),
        "heap holds {} bytes against a budget of {}",
        q.mem_bytes(),
        mem
    );
    Ok(())
}

fn run_against_reference(
    ops: Vec<Op>,
    mem: usize,
    page: usize,
    boundaries: Vec<f64>,
) -> Result<(), TestCaseError> {
    let cost = CostModel {
        page_size: page,
        ..CostModel::paper_1999_disk()
    };
    let mut q = SpillQueue::new(SpillQueueConfig {
        mem_budget: mem,
        boundaries,
        cost,
    });
    let mut reference: Vec<u16> = Vec::new();
    let mut id = 0u64;
    for op in ops {
        match op {
            Op::Push(k) => {
                q.push(Item { key: k as f64, id });
                id += 1;
                reference.push(k);
            }
            Op::Pop => {
                let got = q.pop().map(|i| i.key);
                let want = if reference.is_empty() {
                    None
                } else {
                    let min = *reference.iter().min().expect("non-empty");
                    let pos = reference.iter().position(|&v| v == min).expect("present");
                    reference.swap_remove(pos);
                    Some(min as f64)
                };
                prop_assert_eq!(got, want);
            }
        }
        assert_budget(&q, mem)?;
    }
    prop_assert_eq!(q.len() as usize, reference.len());
    // Drain the remainder: must come out sorted and complete, never
    // blowing the budget along the way.
    let mut rest: Vec<f64> = Vec::new();
    while let Some(i) = q.pop() {
        rest.push(i.key);
        assert_budget(&q, mem)?;
    }
    let mut want: Vec<f64> = reference.iter().map(|&v| v as f64).collect();
    want.sort_unstable_by(f64::total_cmp);
    prop_assert!(rest.windows(2).all(|w| w[0] <= w[1]));
    prop_assert_eq!(rest, want);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn spill_queue_matches_reference_heap(
        ops in ops(),
        mem in 64usize..2048,
        page in 64usize..512,
        nbounds in 0usize..8,
    ) {
        let boundaries: Vec<f64> = (1..=nbounds).map(|i| (i * 60) as f64).collect();
        run_against_reference(ops, mem, page, boundaries)?;
    }

    /// Duplicate-heavy keys under tiny budgets: every split is (or soon
    /// becomes) the equal-key degenerate case, and the budget fits only a
    /// couple of items, so pops constantly swap segments back in.
    #[test]
    fn spill_queue_survives_duplicate_keys_and_tiny_budgets(
        ops in dup_ops(),
        mem in 40usize..200,
        page in 64usize..256,
        with_bounds in any::<bool>(),
    ) {
        // Boundaries between the four live keys, so configured-boundary
        // splits and median splits both get exercised.
        let boundaries = if with_bounds { vec![0.5, 1.5, 2.5, 3.5] } else { Vec::new() };
        run_against_reference(ops, mem, page, boundaries)?;
    }

    #[test]
    fn external_sorter_sorts_everything(
        keys in prop::collection::vec(0u32..10_000, 0..600),
        mem in 64usize..1024,
        page in 64usize..512,
    ) {
        let cost = CostModel { page_size: page, ..CostModel::free() };
        let mut sorter = ExternalSorter::new(mem, cost);
        for (i, &k) in keys.iter().enumerate() {
            sorter.push(Item { key: k as f64, id: i as u64 });
        }
        let out: Vec<f64> = sorter.finish().map(|i| i.key).collect();
        let mut want: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        want.sort_unstable_by(f64::total_cmp);
        prop_assert_eq!(out, want);
    }

    #[test]
    fn lru_never_exceeds_budget(
        inserts in prop::collection::vec((0u16..64, 1usize..64), 1..200),
        budget in 16usize..256,
    ) {
        let mut lru: ByteLru<u16, u16> = ByteLru::new(budget);
        for (k, bytes) in inserts {
            lru.insert(k, k, bytes);
            prop_assert!(lru.used_bytes() <= budget);
            // A freshly inserted, affordable entry must be resident.
            if bytes <= budget {
                prop_assert!(lru.get(&k).is_some());
            }
        }
    }
}
