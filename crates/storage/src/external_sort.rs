//! A memory-budgeted external merge sort over the [`VirtualDisk`].
//!
//! The paper's SJ-SORT baseline runs a spatial join and then sorts the
//! candidate pairs by distance with an *external* sort (the candidate set
//! for large k does not fit the experiment's memory budget). This sorter
//! reproduces that cost profile: in-memory runs of at most the budget are
//! sorted and written out sequentially; [`finish`](ExternalSorter::finish)
//! merges the runs, streaming pages back in.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::codec::Reader;
use crate::spill::SpillItem;
use crate::{CostModel, DiskStats, PageId, VirtualDisk};

/// Bytes at the start of each run page recording the valid byte count.
const PAGE_HEADER: usize = 4;

/// A budgeted external merge sorter for [`SpillItem`]s, ordered by
/// ascending key.
pub struct ExternalSorter<T: SpillItem> {
    disk: VirtualDisk,
    mem_budget: usize,
    buffer: Vec<T>,
    buffer_bytes: usize,
    runs: Vec<Vec<PageId>>,
    items: u64,
}

impl<T: SpillItem> ExternalSorter<T> {
    /// Creates a sorter with `mem_budget` bytes of run memory and a backing
    /// disk charging `cost`.
    pub fn new(mem_budget: usize, cost: CostModel) -> Self {
        ExternalSorter {
            disk: VirtualDisk::new(cost),
            mem_budget,
            buffer: Vec::new(),
            buffer_bytes: 0,
            runs: Vec::new(),
            items: 0,
        }
    }

    /// Total items pushed.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// Whether no items were pushed.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Number of runs written to disk so far.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// I/O statistics of the sorter's backing disk.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Adds an item, flushing a sorted run when the buffer exceeds the
    /// memory budget.
    pub fn push(&mut self, item: T) {
        self.items += 1;
        self.buffer_bytes += item.encoded_len();
        self.buffer.push(item);
        if self.buffer_bytes > self.mem_budget && self.buffer.len() > 1 {
            self.flush_run();
        }
    }

    fn flush_run(&mut self) {
        self.buffer.sort_by(|a, b| a.key().total_cmp(&b.key()));
        let page_size = self.disk.page_size();
        let usable = page_size - PAGE_HEADER;
        // Estimate page count to allocate contiguously (sequential writes).
        let mut encoded = Vec::with_capacity(self.buffer_bytes);
        let mut page_breaks = vec![0usize];
        let mut page_used = 0usize;
        let mut scratch = Vec::new();
        for item in &self.buffer {
            scratch.clear();
            item.encode(&mut scratch);
            assert!(scratch.len() <= usable, "sort item exceeds page capacity");
            if page_used + scratch.len() > usable {
                page_breaks.push(encoded.len());
                page_used = 0;
            }
            encoded.extend_from_slice(&scratch);
            page_used += scratch.len();
        }
        page_breaks.push(encoded.len());
        let n_pages = page_breaks.len() - 1;
        let pages = self.disk.alloc_contiguous(n_pages);
        let mut page_buf = Vec::with_capacity(page_size);
        for (i, &pid) in pages.iter().enumerate() {
            let body = &encoded[page_breaks[i]..page_breaks[i + 1]];
            page_buf.clear();
            page_buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            page_buf.extend_from_slice(body);
            self.disk.write(pid, &page_buf);
        }
        self.runs.push(pages);
        self.buffer.clear();
        self.buffer_bytes = 0;
    }

    /// Finishes the sort, returning a streaming merge iterator over all
    /// items in ascending key order. The final in-memory buffer is merged
    /// directly without a disk round-trip.
    pub fn finish(mut self) -> SortedStream<T> {
        self.buffer.sort_by(|a, b| a.key().total_cmp(&b.key()));
        let mut cursors = Vec::with_capacity(self.runs.len() + 1);
        let runs = std::mem::take(&mut self.runs);
        for pages in runs {
            cursors.push(RunCursor {
                pages,
                next_page: 0,
                pending: std::collections::VecDeque::new(),
            });
        }
        let buffer: std::collections::VecDeque<T> = std::mem::take(&mut self.buffer).into();
        if !buffer.is_empty() {
            cursors.push(RunCursor {
                pages: Vec::new(),
                next_page: 0,
                pending: buffer,
            });
        }
        let mut stream = SortedStream {
            disk: self.disk,
            cursors,
            heap: BinaryHeap::new(),
        };
        for i in 0..stream.cursors.len() {
            stream.refill(i);
        }
        stream
    }
}

struct RunCursor<T> {
    pages: Vec<PageId>,
    next_page: usize,
    pending: std::collections::VecDeque<T>,
}

struct MergeHead {
    key: f64,
    cursor: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key) == Ordering::Equal && self.cursor == other.cursor
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by key (reversed for BinaryHeap), ties by cursor index.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.cursor.cmp(&self.cursor))
    }
}

/// Streaming k-way merge over sorted runs; yields items in ascending key
/// order. Produced by [`ExternalSorter::finish`].
pub struct SortedStream<T: SpillItem> {
    disk: VirtualDisk,
    cursors: Vec<RunCursor<T>>,
    heap: BinaryHeap<MergeHead>,
}

impl<T: SpillItem> SortedStream<T> {
    /// I/O statistics accumulated so far (includes run writes).
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// If the cursor has a pending item, (re-)register it in the merge
    /// heap; load its next page first when drained.
    fn refill(&mut self, idx: usize) {
        let cursor = &mut self.cursors[idx];
        if cursor.pending.is_empty() && cursor.next_page < cursor.pages.len() {
            let pid = cursor.pages[cursor.next_page];
            cursor.next_page += 1;
            let image = self.disk.read(pid).to_vec();
            let body_len =
                u32::from_le_bytes(image[..PAGE_HEADER].try_into().expect("header")) as usize;
            let mut r = Reader::new(&image[PAGE_HEADER..PAGE_HEADER + body_len]);
            while r.remaining() > 0 {
                cursor.pending.push_back(T::decode(&mut r));
            }
        }
        if let Some(front) = self.cursors[idx].pending.front() {
            let key = front.key();
            self.heap.push(MergeHead { key, cursor: idx });
        }
    }
}

impl<T: SpillItem> Iterator for SortedStream<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let head = self.heap.pop()?;
        let item = self.cursors[head.cursor]
            .pending
            .pop_front()
            .expect("heap head implies pending item");
        self.refill(head.cursor);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{put_f64, put_u64};

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Item {
        key: f64,
        id: u64,
    }

    impl SpillItem for Item {
        fn key(&self) -> f64 {
            self.key
        }
        fn encoded_len(&self) -> usize {
            16
        }
        fn encode(&self, out: &mut Vec<u8>) {
            put_f64(out, self.key);
            put_u64(out, self.id);
        }
        fn try_decode(r: &mut Reader<'_>) -> Result<Self, crate::codec::CodecError> {
            Ok(Item {
                key: r.try_f64("item key")?,
                id: r.try_u64("item id")?,
            })
        }
    }

    #[test]
    fn sorts_in_memory_when_small() {
        let mut s = ExternalSorter::new(1 << 20, CostModel::free());
        for &k in &[3.0, 1.0, 2.0] {
            s.push(Item { key: k, id: 0 });
        }
        assert_eq!(s.run_count(), 0);
        let keys: Vec<f64> = s.finish().map(|i| i.key).collect();
        assert_eq!(keys, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spills_runs_and_merges() {
        let cost = CostModel {
            page_size: 256,
            ..CostModel::paper_1999_disk()
        };
        let mut s = ExternalSorter::new(400, cost);
        let n = 1000u64;
        for i in 0..n {
            // Pseudo-random but deterministic keys.
            let k = ((i * 2654435761) % 10007) as f64;
            s.push(Item { key: k, id: i });
        }
        assert!(s.run_count() > 2, "budget must force multiple runs");
        let stream = s.finish();
        let items: Vec<Item> = stream.collect();
        assert_eq!(items.len(), n as usize);
        assert!(items.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn io_is_charged_for_runs() {
        let cost = CostModel {
            page_size: 256,
            ..CostModel::paper_1999_disk()
        };
        let mut s = ExternalSorter::new(300, cost);
        for i in 0..500u64 {
            s.push(Item {
                key: (500 - i) as f64,
                id: i,
            });
        }
        let mut stream = s.finish();
        while stream.next().is_some() {}
        let stats = stream.disk_stats();
        assert!(stats.pages_written > 0);
        assert_eq!(
            stats.pages_read, stats.pages_written,
            "every run page read back"
        );
        assert!(stats.io_seconds > 0.0);
        // Run writes are contiguous, so most writes are sequential.
        assert!(stats.seq_writes as f64 >= 0.5 * stats.pages_written as f64);
    }

    #[test]
    fn empty_sorter_yields_nothing() {
        let s: ExternalSorter<Item> = ExternalSorter::new(100, CostModel::free());
        assert!(s.is_empty());
        assert_eq!(s.finish().count(), 0);
    }

    #[test]
    fn duplicate_keys_all_survive() {
        let cost = CostModel {
            page_size: 128,
            ..CostModel::free()
        };
        let mut s = ExternalSorter::new(200, cost);
        for i in 0..300u64 {
            s.push(Item {
                key: (i % 3) as f64,
                id: i,
            });
        }
        let items: Vec<Item> = s.finish().collect();
        assert_eq!(items.len(), 300);
        assert_eq!(items.iter().filter(|i| i.key == 0.0).count(), 100);
        assert!(items.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn take_k_is_cheap_after_merge_start() {
        // Streaming: taking only k items must not read every run page.
        let cost = CostModel {
            page_size: 4096,
            ..CostModel::paper_1999_disk()
        };
        let mut s = ExternalSorter::new(40_000, cost);
        for i in 0..20_000u64 {
            s.push(Item {
                key: i as f64,
                id: i,
            });
        }
        let written = s.disk_stats().pages_written;
        let mut stream = s.finish();
        for _ in 0..10 {
            let _ = stream.next();
        }
        let read = stream.disk_stats().pages_read;
        assert!(read < written, "only the first page of each run is needed");
    }
}
