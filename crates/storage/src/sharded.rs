use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::ByteLru;

/// A sharded, internally synchronized [`ByteLru`]: the concurrent page
/// buffer behind shared-read R-tree access.
///
/// The byte budget is split evenly across `N` independent
/// `Mutex<ByteLru>` shards; a key's shard is chosen by hash, so two
/// threads faulting in different pages almost always lock different
/// shards. Hit/miss counters live outside the shards as `AtomicU64`s, so
/// statistics reads never take a lock.
///
/// Semantics compared to a single [`ByteLru`]:
///
/// * recency is tracked *per shard* — eviction is LRU within a shard,
///   approximately LRU globally (the standard sharded-cache trade-off);
/// * an entry larger than its shard's budget is not cached at all, so
///   pick a shard count that keeps `budget / shards` comfortably above
///   the entry size (see [`ShardedLru::shards_for`]);
/// * values are returned by clone, not by reference — callers cache
///   `Arc`s, making a hit one refcount bump.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Box<[Mutex<ByteLru<K, V>>]>,
    hasher: BuildHasherDefault<std::collections::hash_map::DefaultHasher>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache of `shards` shards sharing `budget` bytes evenly.
    ///
    /// Panics if `shards` is zero.
    pub fn new(budget: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let per_shard = budget / shards;
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(ByteLru::new(per_shard)))
                .collect(),
            hasher: BuildHasherDefault::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A shard count that balances contention against budget
    /// fragmentation: at most 16, and never so many that a shard holds
    /// fewer than four entries of `entry_bytes`.
    pub fn shards_for(budget: usize, entry_bytes: usize) -> usize {
        let max_by_budget = budget / (4 * entry_bytes.max(1));
        max_by_budget.clamp(1, 16)
    }

    fn shard(&self, key: &K) -> &Mutex<ByteLru<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self
            .shard(key)
            .lock()
            .expect("shard poisoned")
            .get(key)
            .cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value` charging `bytes` against the key's shard,
    /// evicting that shard's LRU entries as needed. Returns how many
    /// entries this insert evicted from its shard, so the calling
    /// thread can attribute the eviction pressure it caused.
    pub fn insert(&self, key: K, value: V, bytes: usize) -> u64 {
        self.shard(&key)
            .lock()
            .expect("shard poisoned")
            .insert(key, value, bytes)
    }

    /// Removes every entry (statistics are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("shard poisoned").clear();
        }
    }

    /// Cache hits observed by [`get`](ShardedLru::get).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed by [`get`](ShardedLru::get).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted across all shards to make room — the buffer's
    /// eviction-pressure signal. Summed from the shards under their
    /// locks (eviction is rare relative to stats reads in serve mode).
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").evictions())
            .sum()
    }

    /// Resets the hit/miss counters (contents are untouched).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Bytes currently cached across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").used_bytes())
            .sum()
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(1024, 4);
        assert!(c.get(&1).is_none());
        c.insert(1, 10, 8);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.reset_stats();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.get(&1), Some(10), "reset_stats keeps contents");
    }

    #[test]
    fn budget_split_across_shards() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(64, 4);
        // Each shard holds 16 bytes: two 8-byte entries per shard at most.
        for k in 0..32 {
            c.insert(k, k, 8);
        }
        assert!(c.used_bytes() <= 64);
        assert!(c.len() <= 8);
    }

    #[test]
    fn single_shard_behaves_like_byte_lru() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(30, 1);
        c.insert(1, 10, 10);
        c.insert(2, 20, 10);
        c.insert(3, 30, 10);
        let _ = c.get(&1);
        c.insert(4, 40, 10);
        assert!(c.get(&2).is_none(), "2 was LRU and must be evicted");
        assert_eq!(c.get(&1), Some(10));
    }

    #[test]
    fn shards_for_keeps_entries_cacheable() {
        // Paper defaults: 512 KB buffer, 4 KB pages → 16 shards.
        assert_eq!(ShardedLru::<u32, u32>::shards_for(512 * 1024, 4096), 16);
        // Test params: 4 pages of 256 B → a single shard.
        assert_eq!(ShardedLru::<u32, u32>::shards_for(1024, 256), 1);
        // Zero budget still needs one (empty) shard.
        assert_eq!(ShardedLru::<u32, u32>::shards_for(0, 4096), 1);
    }

    #[test]
    fn counters_consistent_under_contention() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(16 * 1024, 8);
        let threads = 8u64;
        let ops = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..ops {
                        let key = (t * 31 + i) % 64;
                        if c.get(&key).is_none() {
                            c.insert(key, key, 16);
                        }
                    }
                });
            }
        });
        assert_eq!(
            c.hits() + c.misses(),
            threads * ops,
            "every get counted exactly once"
        );
        assert!(c.hits() > 0, "warm keys must hit");
        assert!(c.used_bytes() <= 16 * 1024);
    }
}
