//! Little-endian binary encode/decode helpers.
//!
//! Every paged structure in the workspace (R-tree nodes, spill-queue
//! segments, sort runs) serializes through these helpers so the on-"disk"
//! format is explicit and testable.

/// Appends a `u8` to `out`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32` in little-endian order.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` in little-endian IEEE-754 order.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A decode failure: the input ended (or was malformed) where a field was
/// expected.
///
/// Carries the byte offset at which the read was attempted and the name of
/// the field being decoded, so a corrupt *file* (a checkpoint snapshot, as
/// opposed to a page the storage layer itself just wrote) can be reported
/// as a clean error rather than a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which the failed read started.
    pub offset: usize,
    /// The field that was being decoded.
    pub expected: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated or corrupt record at byte {}: expected {}",
            self.offset, self.expected
        )
    }
}

impl std::error::Error for CodecError {}

/// A cursor over an encoded byte slice.
///
/// The plain reads (`u8`, `u32`, …) panic on truncated input: the storage
/// layer writes complete records, so a short read there is a logic error,
/// not a recoverable condition. The `try_*` variants return a
/// [`CodecError`] instead — for input that crosses a trust boundary, such
/// as a checkpoint file supplied on the command line.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    #[inline]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(self.remaining() >= n, "codec: truncated record");
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    fn try_take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError {
                offset: self.pos,
                expected,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    #[inline]
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Fallibly reads a `u8`; `expected` names the field for the error.
    #[inline]
    pub fn try_u8(&mut self, expected: &'static str) -> Result<u8, CodecError> {
        Ok(self.try_take(1, expected)?[0])
    }

    /// Fallibly reads a little-endian `u32`.
    #[inline]
    pub fn try_u32(&mut self, expected: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.try_take(4, expected)?.try_into().expect("4 bytes"),
        ))
    }

    /// Fallibly reads a little-endian `u64`.
    #[inline]
    pub fn try_u64(&mut self, expected: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.try_take(8, expected)?.try_into().expect("8 bytes"),
        ))
    }

    /// Fallibly reads a little-endian `f64`.
    #[inline]
    pub fn try_f64(&mut self, expected: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(
            self.try_take(8, expected)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -1234.5678);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u32(), 0xDEAD_BEEF);
        assert_eq!(r.u64(), u64::MAX - 1);
        assert_eq!(r.f64(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn position_tracking() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2);
        let mut r = Reader::new(&buf);
        assert_eq!(r.position(), 0);
        let _ = r.u32();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_read_panics() {
        let buf = vec![1, 2];
        let mut r = Reader::new(&buf);
        let _ = r.u32();
    }

    #[test]
    fn try_reads_roundtrip_and_report_offsets() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        put_u32(&mut buf, 77);
        put_u64(&mut buf, 1 << 40);
        put_f64(&mut buf, 2.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.try_u8("tag"), Ok(9));
        assert_eq!(r.try_u32("count"), Ok(77));
        assert_eq!(r.try_u64("id"), Ok(1 << 40));
        assert_eq!(r.try_f64("dist"), Ok(2.5));
        // Exhausted: the error carries the attempted offset and field.
        let err = r.try_u32("next").unwrap_err();
        assert_eq!(
            err,
            CodecError {
                offset: buf.len(),
                expected: "next"
            }
        );
        assert!(err.to_string().contains("next"));
        assert!(err.to_string().contains(&buf.len().to_string()));
    }

    #[test]
    fn try_read_failure_does_not_advance() {
        let buf = vec![1u8, 2];
        let mut r = Reader::new(&buf);
        assert!(r.try_u64("wide").is_err());
        assert_eq!(r.position(), 0);
        assert_eq!(r.try_u8("narrow"), Ok(1));
    }

    #[test]
    fn f64_special_values() {
        let mut buf = Vec::new();
        put_f64(&mut buf, f64::INFINITY);
        put_f64(&mut buf, 0.0);
        put_f64(&mut buf, -0.0);
        let mut r = Reader::new(&buf);
        assert_eq!(r.f64(), f64::INFINITY);
        assert_eq!(r.f64(), 0.0);
        assert!(r.f64().is_sign_negative());
    }
}
