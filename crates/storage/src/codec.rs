//! Little-endian binary encode/decode helpers.
//!
//! Every paged structure in the workspace (R-tree nodes, spill-queue
//! segments, sort runs) serializes through these helpers so the on-"disk"
//! format is explicit and testable.

/// Appends a `u8` to `out`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32` in little-endian order.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` in little-endian IEEE-754 order.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over an encoded byte slice.
///
/// Reads panic on truncated input: the storage layer writes complete
/// records, so a short read is a logic error, not a recoverable condition.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    #[inline]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(self.remaining() >= n, "codec: truncated record");
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Reads a `u8`.
    #[inline]
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -1234.5678);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u32(), 0xDEAD_BEEF);
        assert_eq!(r.u64(), u64::MAX - 1);
        assert_eq!(r.f64(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn position_tracking() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2);
        let mut r = Reader::new(&buf);
        assert_eq!(r.position(), 0);
        let _ = r.u32();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_read_panics() {
        let buf = vec![1, 2];
        let mut r = Reader::new(&buf);
        let _ = r.u32();
    }

    #[test]
    fn f64_special_values() {
        let mut buf = Vec::new();
        put_f64(&mut buf, f64::INFINITY);
        put_f64(&mut buf, 0.0);
        put_f64(&mut buf, -0.0);
        let mut r = Reader::new(&buf);
        assert_eq!(r.f64(), f64::INFINITY);
        assert_eq!(r.f64(), 0.0);
        assert!(r.f64().is_sign_negative());
    }
}
