use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A byte-budgeted least-recently-used cache.
///
/// Used as the R-tree node buffer: each cached node charges one page worth
/// of bytes, and the total budget corresponds to the paper's "R-tree buffer
/// size" knob (64 KB – 1024 KB in §5.5). Eviction is strict LRU on *access*
/// (both hits and inserts refresh recency).
///
/// The implementation keeps a monotone access counter per entry and a
/// `BTreeMap` from counter to key, giving `O(log n)` operations without
/// unsafe linked-list code — plenty for buffers of a few hundred pages.
#[derive(Debug)]
pub struct ByteLru<K, V> {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<K, Slot<V>>,
    order: BTreeMap<u64, K>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: usize,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V> ByteLru<K, V> {
    /// Creates a cache that holds at most `budget` bytes. A zero budget
    /// caches nothing (every lookup is a miss).
    pub fn new(budget: usize) -> Self {
        ByteLru {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits observed by [`get`](ByteLru::get).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed by [`get`](ByteLru::get).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by [`insert`](ByteLru::insert) to make room —
    /// the buffer-pressure signal: a high rate relative to hits means
    /// the working set does not fit the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, key: &K) {
        let slot = self.map.get_mut(key).expect("touch of present key");
        self.order.remove(&slot.tick);
        self.tick += 1;
        slot.tick = self.tick;
        self.order.insert(self.tick, key.clone());
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.hits += 1;
            self.touch(key);
            Some(&self.map[key].value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts `key → value` charging `bytes`, evicting LRU entries as
    /// needed. An entry larger than the whole budget is not cached at all.
    /// Re-inserting an existing key replaces its value and cost. Returns
    /// how many entries this insert evicted, so callers can attribute
    /// eviction pressure to the thread that caused it.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> u64 {
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.tick);
            self.used -= old.bytes;
        }
        if bytes > self.budget {
            return 0;
        }
        let mut evicted = 0u64;
        while self.used + bytes > self.budget {
            let (&tick, _) = self
                .order
                .iter()
                .next()
                .expect("over budget implies entries");
            let victim = self.order.remove(&tick).expect("tick present");
            let slot = self.map.remove(&victim).expect("victim present");
            self.used -= slot.bytes;
            self.evictions += 1;
            evicted += 1;
        }
        self.tick += 1;
        self.order.insert(self.tick, key.clone());
        self.map.insert(
            key,
            Slot {
                value,
                bytes,
                tick: self.tick,
            },
        );
        self.used += bytes;
        evicted
    }

    /// Removes every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: ByteLru<u32, String> = ByteLru::new(100);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into(), 10);
        assert_eq!(c.get(&1).map(String::as_str), Some("one"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(30);
        c.insert(1, 10, 10);
        c.insert(2, 20, 10);
        c.insert(3, 30, 10);
        // Touch 1 so 2 becomes LRU.
        let _ = c.get(&1);
        c.insert(4, 40, 10);
        assert!(c.get(&2).is_none(), "2 was LRU and must be evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(10);
        c.insert(1, 1, 11);
        assert!(c.get(&1).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(0);
        c.insert(1, 1, 1);
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn reinsert_replaces_cost() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(20);
        c.insert(1, 1, 15);
        c.insert(1, 2, 5);
        assert_eq!(c.used_bytes(), 5);
        assert_eq!(c.get(&1), Some(&2));
        c.insert(2, 2, 15);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_frees_enough_for_large_entry() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        c.insert(4, 4, 30); // must evict everything
        assert_eq!(c.len(), 1);
        assert!(c.get(&4).is_some());
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn eviction_counter_tracks_victims() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        assert_eq!(c.evictions(), 0);
        c.insert(4, 4, 30); // must evict all three
        assert_eq!(c.evictions(), 3);
        // Re-inserting an existing key is a replacement, not an eviction.
        c.insert(4, 5, 30);
        assert_eq!(c.evictions(), 3);
    }

    #[test]
    fn clear_keeps_stats() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(10);
        c.insert(1, 1, 1);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        let _ = c.get(&1);
        assert_eq!(c.misses(), 1);
    }
}
