use crate::CostModel;

/// Identifier of a page on a [`VirtualDisk`]. Allocation order is physical
/// order: consecutive ids are "adjacent on the platter" for the purpose of
/// sequential/random classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Cumulative statistics of a [`VirtualDisk`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read.
    pub pages_read: u64,
    /// Pages read that were classified sequential.
    pub seq_reads: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Pages written that were classified sequential.
    pub seq_writes: u64,
    /// Total modeled I/O time in seconds, per the disk's [`CostModel`].
    pub io_seconds: f64,
}

impl DiskStats {
    /// Reads classified random.
    pub fn rand_reads(&self) -> u64 {
        self.pages_read - self.seq_reads
    }

    /// Writes classified random.
    pub fn rand_writes(&self) -> u64 {
        self.pages_written - self.seq_writes
    }

    /// Total page transfers.
    pub fn total_ios(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

/// An in-process paged store standing in for the paper's locally attached
/// disk.
///
/// `VirtualDisk` holds page images in memory but meters every transfer: a
/// page access immediately following an access to the physically previous
/// page is charged at the sequential rate, anything else at the random rate
/// (see [`CostModel`]). This keeps experiments hermetic and repeatable
/// while preserving the I/O economics that separate the paper's algorithms
/// — the quantity the harness reports as *modeled response time*.
///
/// Pages are fixed-size; short writes are zero-padded to the page size.
#[derive(Debug)]
pub struct VirtualDisk {
    page_size: usize,
    cost: CostModel,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
    last_accessed: Option<u64>,
    stats: DiskStats,
}

impl VirtualDisk {
    /// Creates an empty disk charging `cost` with `cost.page_size` pages.
    pub fn new(cost: CostModel) -> Self {
        VirtualDisk {
            page_size: cost.page_size,
            cost,
            pages: Vec::new(),
            free_list: Vec::new(),
            last_accessed: None,
            stats: DiskStats::default(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Allocates a fresh page (contents undefined until written). Reuses
    /// freed slots before growing.
    pub fn alloc(&mut self) -> PageId {
        if let Some(id) = self.free_list.pop() {
            self.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return id;
        }
        let id = PageId(self.pages.len() as u64);
        self.pages.push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        id
    }

    /// Allocates `n` physically contiguous pages (so a later in-order scan
    /// of them is charged sequentially).
    pub fn alloc_contiguous(&mut self, n: usize) -> Vec<PageId> {
        let start = self.pages.len() as u64;
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            self.pages.push(Some(vec![0u8; self.page_size].into_boxed_slice()));
            ids.push(PageId(start + i as u64));
        }
        ids
    }

    fn charge(&mut self, id: PageId, write: bool) {
        let sequential = self.last_accessed == Some(id.0.wrapping_sub(1));
        self.last_accessed = Some(id.0);
        self.stats.io_seconds += self.cost.page_time(sequential);
        if write {
            self.stats.pages_written += 1;
            if sequential {
                self.stats.seq_writes += 1;
            }
        } else {
            self.stats.pages_read += 1;
            if sequential {
                self.stats.seq_reads += 1;
            }
        }
    }

    /// Writes `data` to page `id` (padded with zeros to the page size).
    ///
    /// Panics if `data` exceeds the page size or `id` is not allocated.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(data.len() <= self.page_size, "write exceeds page size");
        let slot = self.pages[id.0 as usize].as_mut().expect("write to freed page");
        slot[..data.len()].copy_from_slice(data);
        slot[data.len()..].fill(0);
        self.charge(id, true);
    }

    /// Reads page `id`, returning its full (padded) image.
    ///
    /// Panics if `id` is not allocated.
    pub fn read(&mut self, id: PageId) -> &[u8] {
        self.charge(id, false);
        self.pages[id.0 as usize].as_deref().expect("read of freed page")
    }

    /// Frees page `id`, making the slot reusable. Freeing is a metadata
    /// operation and charges no I/O.
    pub fn free(&mut self, id: PageId) {
        let slot = &mut self.pages[id.0 as usize];
        assert!(slot.is_some(), "double free of page {id:?}");
        *slot = None;
        self.free_list.push(id);
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets the statistics (page contents are untouched). Useful to
    /// exclude index-construction I/O from query measurements.
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
        self.last_accessed = None;
    }

    /// Iterates the live pages (id + image) without charging I/O — the
    /// export path for persistence.
    pub fn live_page_images(&self) -> impl Iterator<Item = (PageId, &[u8])> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_deref().map(|img| (PageId(i as u64), img)))
    }

    /// Restores a page at a specific id (growing the slot table as
    /// needed), without charging I/O — the import path for persistence.
    /// Call [`finish_restore`](VirtualDisk::finish_restore) once all pages
    /// are in.
    pub fn restore_page(&mut self, id: PageId, data: &[u8]) {
        assert!(data.len() <= self.page_size, "restored page exceeds page size");
        let idx = id.0 as usize;
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || None);
        }
        let mut img = vec![0u8; self.page_size].into_boxed_slice();
        img[..data.len()].copy_from_slice(data);
        self.pages[idx] = Some(img);
    }

    /// Rebuilds the free list after a sequence of
    /// [`restore_page`](VirtualDisk::restore_page) calls, so later
    /// allocations reuse the holes left by deleted nodes.
    pub fn finish_restore(&mut self) {
        self.free_list = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| PageId(i as u64))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> VirtualDisk {
        VirtualDisk::new(CostModel { page_size: 64, ..CostModel::paper_1999_disk() })
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = disk();
        let p = d.alloc();
        d.write(p, b"hello");
        let img = d.read(p).to_vec();
        assert_eq!(&img[..5], b"hello");
        assert!(img[5..].iter().all(|&b| b == 0));
        assert_eq!(img.len(), 64);
    }

    #[test]
    fn sequential_classification() {
        let mut d = disk();
        let ids = d.alloc_contiguous(4);
        for &id in &ids {
            d.write(id, b"x");
        }
        let s = d.stats();
        assert_eq!(s.pages_written, 4);
        // First write is random (no predecessor), the rest sequential.
        assert_eq!(s.seq_writes, 3);

        for &id in &ids {
            let _ = d.read(id);
        }
        // Read of ids[0] follows write of ids[3]: random; rest sequential.
        let s = d.stats();
        assert_eq!(s.pages_read, 4);
        assert_eq!(s.seq_reads, 3);
    }

    #[test]
    fn random_access_costs_more() {
        let cost = CostModel { page_size: 4096, ..CostModel::paper_1999_disk() };
        let mut d = VirtualDisk::new(cost);
        let ids = d.alloc_contiguous(10);
        d.reset_stats();
        for &id in &ids {
            let _ = d.read(id);
        }
        let seq_time = d.stats().io_seconds;
        d.reset_stats();
        // Stride-2 reads are all classified random.
        for i in (0..10).step_by(2).chain((1..10).step_by(2)) {
            let _ = d.read(ids[i]);
        }
        let rand_time = d.stats().io_seconds;
        assert!(rand_time > seq_time * 5.0, "rand={rand_time} seq={seq_time}");
    }

    #[test]
    fn free_and_reuse() {
        let mut d = disk();
        let a = d.alloc();
        let _b = d.alloc();
        assert_eq!(d.live_pages(), 2);
        d.free(a);
        assert_eq!(d.live_pages(), 1);
        let c = d.alloc();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(d.live_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = disk();
        let a = d.alloc();
        d.free(a);
        d.free(a);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut d = disk();
        let a = d.alloc();
        d.write(a, &[0u8; 65]);
    }

    #[test]
    fn reset_stats_clears_everything() {
        let mut d = disk();
        let a = d.alloc();
        d.write(a, b"x");
        let _ = d.read(a);
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn stats_helpers() {
        let s = DiskStats { pages_read: 10, seq_reads: 4, pages_written: 6, seq_writes: 6, io_seconds: 0.0 };
        assert_eq!(s.rand_reads(), 6);
        assert_eq!(s.rand_writes(), 0);
        assert_eq!(s.total_ios(), 16);
    }
}
