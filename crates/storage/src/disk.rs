use std::sync::atomic::{AtomicU64, Ordering};

use crate::CostModel;

/// Identifier of a page on a [`VirtualDisk`]. Allocation order is physical
/// order: consecutive ids are "adjacent on the platter" for the purpose of
/// sequential/random classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Cumulative statistics of a [`VirtualDisk`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read.
    pub pages_read: u64,
    /// Pages read that were classified sequential.
    pub seq_reads: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Writes classified sequential.
    pub seq_writes: u64,
    /// Total modeled I/O time in seconds, per the disk's [`CostModel`].
    pub io_seconds: f64,
}

impl DiskStats {
    /// Reads classified random.
    pub fn rand_reads(&self) -> u64 {
        self.pages_read - self.seq_reads
    }

    /// Writes classified random.
    pub fn rand_writes(&self) -> u64 {
        self.pages_written - self.seq_writes
    }

    /// Total page transfers.
    pub fn total_ios(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

/// `last_accessed` sentinel: no page has been touched since the last
/// stats reset. Page ids never reach this value in practice.
const NO_PAGE: u64 = u64::MAX;

/// Atomic accumulator behind [`DiskStats`], so metering works from
/// `&self` and concurrent readers never contend on a lock.
///
/// `io_seconds` is an `f64` stored as its bit pattern in an `AtomicU64`
/// and accumulated with a compare-and-swap loop; counter updates use
/// relaxed ordering since they are statistics, not synchronization.
#[derive(Debug, Default)]
struct AtomicDiskStats {
    pages_read: AtomicU64,
    seq_reads: AtomicU64,
    pages_written: AtomicU64,
    seq_writes: AtomicU64,
    io_second_bits: AtomicU64,
}

impl AtomicDiskStats {
    fn add_io_seconds(&self, secs: f64) {
        if secs == 0.0 {
            return;
        }
        let mut current = self.io_second_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + secs).to_bits();
            match self.io_second_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    fn snapshot(&self) -> DiskStats {
        DiskStats {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            io_seconds: f64::from_bits(self.io_second_bits.load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.seq_reads.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.io_second_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// An in-process paged store standing in for the paper's locally attached
/// disk.
///
/// `VirtualDisk` holds page images in memory but meters every transfer: a
/// page access immediately following an access to the physically previous
/// page is charged at the sequential rate, anything else at the random rate
/// (see [`CostModel`]). This keeps experiments hermetic and repeatable
/// while preserving the I/O economics that separate the paper's algorithms
/// — the quantity the harness reports as *modeled response time*.
///
/// Reads are `&self`: metering runs on atomics, so any number of threads
/// may read pages of a shared disk concurrently. Structural mutation
/// (write / alloc / free / restore) still takes `&mut self`, which is what
/// makes the shared-read guarantee airtight — Rust's aliasing rules forbid
/// a writer while readers exist.
///
/// Pages are fixed-size; short writes are zero-padded to the page size.
#[derive(Debug)]
pub struct VirtualDisk {
    page_size: usize,
    cost: CostModel,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
    last_accessed: AtomicU64,
    stats: AtomicDiskStats,
}

impl VirtualDisk {
    /// Creates an empty disk charging `cost` with `cost.page_size` pages.
    pub fn new(cost: CostModel) -> Self {
        VirtualDisk {
            page_size: cost.page_size,
            cost,
            pages: Vec::new(),
            free_list: Vec::new(),
            last_accessed: AtomicU64::new(NO_PAGE),
            stats: AtomicDiskStats::default(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Allocates a fresh page (contents undefined until written). Reuses
    /// freed slots before growing.
    pub fn alloc(&mut self) -> PageId {
        if let Some(id) = self.free_list.pop() {
            self.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return id;
        }
        let id = PageId(self.pages.len() as u64);
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        id
    }

    /// Allocates `n` physically contiguous pages (so a later in-order scan
    /// of them is charged sequentially).
    pub fn alloc_contiguous(&mut self, n: usize) -> Vec<PageId> {
        let start = self.pages.len() as u64;
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            self.pages
                .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
            ids.push(PageId(start + i as u64));
        }
        ids
    }

    fn charge(&self, id: PageId, write: bool) {
        let prev = self.last_accessed.swap(id.0, Ordering::Relaxed);
        let sequential = prev != NO_PAGE && prev == id.0.wrapping_sub(1);
        self.stats.add_io_seconds(self.cost.page_time(sequential));
        if write {
            self.stats.pages_written.fetch_add(1, Ordering::Relaxed);
            if sequential {
                self.stats.seq_writes.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.stats.pages_read.fetch_add(1, Ordering::Relaxed);
            if sequential {
                self.stats.seq_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Writes `data` to page `id` (padded with zeros to the page size).
    ///
    /// Panics if `data` exceeds the page size or `id` is not allocated.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(data.len() <= self.page_size, "write exceeds page size");
        let slot = self.pages[id.0 as usize]
            .as_mut()
            .expect("write to freed page");
        slot[..data.len()].copy_from_slice(data);
        slot[data.len()..].fill(0);
        self.charge(id, true);
    }

    /// Reads page `id`, returning its full (padded) image.
    ///
    /// Panics if `id` is not allocated.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.charge(id, false);
        self.pages[id.0 as usize]
            .as_deref()
            .expect("read of freed page")
    }

    /// Frees page `id`, making the slot reusable. Freeing is a metadata
    /// operation and charges no I/O.
    pub fn free(&mut self, id: PageId) {
        let slot = &mut self.pages[id.0 as usize];
        assert!(slot.is_some(), "double free of page {id:?}");
        *slot = None;
        self.free_list.push(id);
    }

    /// Cumulative statistics (a consistent-enough snapshot: counters are
    /// read individually with relaxed ordering).
    pub fn stats(&self) -> DiskStats {
        self.stats.snapshot()
    }

    /// Resets the statistics (page contents are untouched). Useful to
    /// exclude index-construction I/O from query measurements.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.last_accessed.store(NO_PAGE, Ordering::Relaxed);
    }

    /// Iterates the live pages (id + image) without charging I/O — the
    /// export path for persistence.
    pub fn live_page_images(&self) -> impl Iterator<Item = (PageId, &[u8])> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_deref().map(|img| (PageId(i as u64), img)))
    }

    /// Restores a page at a specific id (growing the slot table as
    /// needed), without charging I/O — the import path for persistence.
    /// Call [`finish_restore`](VirtualDisk::finish_restore) once all pages
    /// are in.
    pub fn restore_page(&mut self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "restored page exceeds page size"
        );
        let idx = id.0 as usize;
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || None);
        }
        let mut img = vec![0u8; self.page_size].into_boxed_slice();
        img[..data.len()].copy_from_slice(data);
        self.pages[idx] = Some(img);
    }

    /// Rebuilds the free list after a sequence of
    /// [`restore_page`](VirtualDisk::restore_page) calls, so later
    /// allocations reuse the holes left by deleted nodes.
    pub fn finish_restore(&mut self) {
        self.free_list = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| PageId(i as u64))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> VirtualDisk {
        VirtualDisk::new(CostModel {
            page_size: 64,
            ..CostModel::paper_1999_disk()
        })
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = disk();
        let p = d.alloc();
        d.write(p, b"hello");
        let img = d.read(p).to_vec();
        assert_eq!(&img[..5], b"hello");
        assert!(img[5..].iter().all(|&b| b == 0));
        assert_eq!(img.len(), 64);
    }

    #[test]
    fn sequential_classification() {
        let mut d = disk();
        let ids = d.alloc_contiguous(4);
        for &id in &ids {
            d.write(id, b"x");
        }
        let s = d.stats();
        assert_eq!(s.pages_written, 4);
        // First write is random (no predecessor), the rest sequential.
        assert_eq!(s.seq_writes, 3);

        for &id in &ids {
            let _ = d.read(id);
        }
        // Read of ids[0] follows write of ids[3]: random; rest sequential.
        let s = d.stats();
        assert_eq!(s.pages_read, 4);
        assert_eq!(s.seq_reads, 3);
    }

    #[test]
    fn random_access_costs_more() {
        let cost = CostModel {
            page_size: 4096,
            ..CostModel::paper_1999_disk()
        };
        let mut d = VirtualDisk::new(cost);
        let ids = d.alloc_contiguous(10);
        d.reset_stats();
        for &id in &ids {
            let _ = d.read(id);
        }
        let seq_time = d.stats().io_seconds;
        d.reset_stats();
        // Stride-2 reads are all classified random.
        for i in (0..10).step_by(2).chain((1..10).step_by(2)) {
            let _ = d.read(ids[i]);
        }
        let rand_time = d.stats().io_seconds;
        assert!(
            rand_time > seq_time * 5.0,
            "rand={rand_time} seq={seq_time}"
        );
    }

    #[test]
    fn page_zero_after_reset_is_random() {
        let mut d = disk();
        let ids = d.alloc_contiguous(2);
        d.reset_stats();
        // No predecessor: must not be classified sequential, even though
        // the internal "no page" sentinel is numerically `0 - 1`.
        let _ = d.read(ids[0]);
        assert_eq!(d.stats().seq_reads, 0);
    }

    #[test]
    fn free_and_reuse() {
        let mut d = disk();
        let a = d.alloc();
        let _b = d.alloc();
        assert_eq!(d.live_pages(), 2);
        d.free(a);
        assert_eq!(d.live_pages(), 1);
        let c = d.alloc();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(d.live_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = disk();
        let a = d.alloc();
        d.free(a);
        d.free(a);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut d = disk();
        let a = d.alloc();
        d.write(a, &[0u8; 65]);
    }

    #[test]
    fn reset_stats_clears_everything() {
        let mut d = disk();
        let a = d.alloc();
        d.write(a, b"x");
        let _ = d.read(a);
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn stats_helpers() {
        let s = DiskStats {
            pages_read: 10,
            seq_reads: 4,
            pages_written: 6,
            seq_writes: 6,
            io_seconds: 0.0,
        };
        assert_eq!(s.rand_reads(), 6);
        assert_eq!(s.rand_writes(), 0);
        assert_eq!(s.total_ios(), 16);
    }

    #[test]
    fn concurrent_reads_count_exactly() {
        let cost = CostModel {
            page_size: 64,
            ..CostModel::paper_1999_disk()
        };
        let mut d = VirtualDisk::new(cost);
        let ids = d.alloc_contiguous(8);
        for &id in &ids {
            d.write(id, b"x");
        }
        d.reset_stats();
        let threads = 4;
        let reads_per_thread = 500;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let d = &d;
                let ids = &ids;
                scope.spawn(move || {
                    for i in 0..reads_per_thread {
                        let _ = d.read(ids[(t + i) % ids.len()]);
                    }
                });
            }
        });
        let s = d.stats();
        assert_eq!(s.pages_read, (threads * reads_per_thread) as u64);
        assert!(s.io_seconds > 0.0);
    }
}
