//! Paged storage substrate for the AMDJ distance-join library.
//!
//! The paper's evaluation (§5.1) runs on a workstation with a locally
//! attached disk (~0.5 MB/s random, ~5 MB/s sequential, 4 KB pages) and
//! measures algorithms under tight memory budgets for both the R-tree
//! buffer and the priority queues. This crate reproduces that substrate in
//! process:
//!
//! * [`VirtualDisk`] — a paged store that counts reads/writes, classifies
//!   them as sequential or random, and charges a configurable
//!   [`CostModel`], so "response time" can include modeled I/O exactly as
//!   the paper's wall-clock times included real I/O;
//! * [`ByteLru`] — a byte-budgeted LRU cache used as the R-tree page
//!   buffer;
//! * [`ShardedLru`] — the internally synchronized, sharded variant that
//!   lets any number of threads share one page buffer (`&self` reads);
//! * [`SpillQueue`] — the hybrid memory/disk priority queue of §4.4: an
//!   in-memory heap for the shortest-distance range plus unsorted
//!   disk-resident segments, with range boundaries derived from the
//!   paper's Equation (3);
//! * [`ExternalSorter`] — a budgeted external merge sort (used by the
//!   SJ-SORT baseline);
//! * [`codec`] — little-endian encode/decode helpers shared by all paged
//!   structures.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
mod cost;
mod disk;
mod external_sort;
mod lru;
mod sharded;
mod spill;

pub use cost::CostModel;
pub use disk::{DiskStats, PageId, VirtualDisk};
pub use external_sort::ExternalSorter;
pub use lru::ByteLru;
pub use sharded::ShardedLru;
pub use spill::{
    encode_page_framed, try_decode_page_framed, SpillItem, SpillQueue, SpillQueueConfig,
    SpillQueueStats, HEAP_ENTRY_OVERHEAD,
};
