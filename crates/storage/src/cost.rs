/// A disk I/O cost model.
///
/// The paper's testbed (§5.1) measured ~0.5 MB/s for random accesses and
/// ~5 MB/s for sequential accesses with 4 KB pages and Solaris direct I/O.
/// [`crate::VirtualDisk`] charges this model for every page transfer so the
/// experiment harness can report a *modeled response time* with the same
/// random:sequential penalty the paper's wall-clock numbers embodied.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Page size in bytes (paper: 4096).
    pub page_size: usize,
    /// Sequential transfer bandwidth in bytes/second (paper: ~5 MB/s).
    pub seq_bytes_per_sec: f64,
    /// Random transfer bandwidth in bytes/second (paper: ~0.5 MB/s).
    pub rand_bytes_per_sec: f64,
}

impl CostModel {
    /// The paper's testbed parameters: 4 KB pages, 5 MB/s sequential,
    /// 0.5 MB/s random.
    pub fn paper_1999_disk() -> Self {
        CostModel {
            page_size: 4096,
            seq_bytes_per_sec: 5.0 * 1024.0 * 1024.0,
            rand_bytes_per_sec: 0.5 * 1024.0 * 1024.0,
        }
    }

    /// A free cost model (no I/O time charged); useful in unit tests.
    pub fn free() -> Self {
        CostModel {
            page_size: 4096,
            seq_bytes_per_sec: f64::INFINITY,
            rand_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Modeled seconds to transfer one page.
    #[inline]
    pub fn page_time(&self, sequential: bool) -> f64 {
        let bw = if sequential {
            self.seq_bytes_per_sec
        } else {
            self.rand_bytes_per_sec
        };
        self.page_size as f64 / bw
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_1999_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_ratio() {
        let m = CostModel::paper_1999_disk();
        let r = m.page_time(false) / m.page_time(true);
        assert!((r - 10.0).abs() < 1e-9, "random:sequential must be 10:1");
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.page_time(true), 0.0);
        assert_eq!(m.page_time(false), 0.0);
    }

    #[test]
    fn page_time_scales_with_page_size() {
        let mut m = CostModel::paper_1999_disk();
        let t1 = m.page_time(true);
        m.page_size *= 2;
        assert!((m.page_time(true) - 2.0 * t1).abs() < 1e-12);
    }
}
