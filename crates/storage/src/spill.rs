//! The hybrid memory/disk priority queue of the paper's §4.4.
//!
//! A [`SpillQueue`] keeps the shortest-distance range of its contents in an
//! in-memory min-heap bounded by a byte budget; the rest lives on a
//! [`VirtualDisk`] as *unsorted piles* ("segments"), each covering a
//! distance range. Inserts whose key falls in a disk-resident range append
//! to that segment directly (a cheap, mostly sequential write) instead of
//! churning the heap. When the heap overflows it is *split* — the
//! longer-distance half is spilled as a new segment; when it empties, the
//! segment with the shortest range is *swapped in*.
//!
//! Split boundaries prefer the caller-provided candidate boundaries — the
//! paper derives them from Equation (3) as `b_i = sqrt(i · n · ρ)` for heap
//! capacity `n` — and fall back to the median key, so the queue behaves
//! sensibly even when the uniformity assumption behind Equation (3) fails.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::codec::{put_u32, put_u64, CodecError, Reader};
use crate::{CostModel, DiskStats, PageId, VirtualDisk};

/// Bookkeeping overhead charged per item resident in the in-memory heap, on
/// top of its encoded length (key copy, sequence number, heap slot).
///
/// Exported so callers sizing heap capacities — e.g. the Equation-3
/// boundary derivation, which needs the number of items a budget holds —
/// charge exactly what the queue charges. See
/// [`SpillQueue::per_item_cost`].
pub const HEAP_ENTRY_OVERHEAD: usize = 24;

/// Bytes at the start of each segment page recording the valid byte count.
const PAGE_HEADER: usize = 4;

/// Filled segment pages are buffered and flushed in contiguous extents of
/// this many pages, so segment traffic is charged mostly sequentially —
/// the behaviour of an OS write-buffered segment file, which is what the
/// paper's hybrid queue writes to.
const EXTENT_PAGES: usize = 8;

/// An item storable in a [`SpillQueue`].
///
/// Items are ordered by [`key`](SpillItem::key) (ascending; the queue is a
/// min-queue) and must serialize to exactly
/// [`encoded_len`](SpillItem::encoded_len) bytes.
pub trait SpillItem: Sized {
    /// The priority key. Must be finite and non-NaN.
    fn key(&self) -> f64;
    /// Serialized size in bytes (must match what [`encode`](SpillItem::encode) writes).
    fn encoded_len(&self) -> usize;
    /// Appends the serialized form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Fallibly decodes one item — the path for input that crosses a trust
    /// boundary (a checkpoint file). Implementations report truncation or
    /// malformed fields as a [`CodecError`] instead of panicking.
    fn try_decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
    /// Decodes one item the storage layer itself wrote; a failure here is
    /// a logic error, so it panics.
    fn decode(r: &mut Reader<'_>) -> Self {
        match Self::try_decode(r) {
            Ok(item) => item,
            Err(e) => panic!("codec: {e}"),
        }
    }
}

/// Serializes `items` in the spill segment page format: a `u64` item
/// count, then a run of pages, each a `u32` body length followed by that
/// many bytes of packed [`SpillItem`] encodings. Bodies hold at most
/// `page_size - PAGE_HEADER` bytes, exactly like an on-disk segment page
/// (minus the zero padding, which a byte stream has no use for).
///
/// This is the one serialization of "a queue's contents" in the
/// workspace: [`SpillQueue::save_contents`] writes it, engine snapshots
/// embed it, and [`try_decode_page_framed`] reads it back.
pub fn encode_page_framed<T: SpillItem>(items: &[T], page_size: usize, out: &mut Vec<u8>) {
    let capacity = page_size.saturating_sub(PAGE_HEADER).max(1);
    put_u64(out, items.len() as u64);
    let mut body: Vec<u8> = Vec::new();
    for item in items {
        let encoded = item.encoded_len();
        assert!(
            encoded <= capacity,
            "spill item of {encoded} bytes exceeds page capacity"
        );
        if body.len() + encoded > capacity {
            put_u32(out, body.len() as u32);
            out.extend_from_slice(&body);
            body.clear();
        }
        item.encode(&mut body);
    }
    if !body.is_empty() {
        put_u32(out, body.len() as u32);
        out.extend_from_slice(&body);
    }
}

/// Decodes a page-framed run written by [`encode_page_framed`], verifying
/// the declared item count and page framing. Errors carry the absolute
/// byte offset within `r`'s buffer.
pub fn try_decode_page_framed<T: SpillItem>(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    let declared = r.try_u64("queue item count")?;
    if declared > r.remaining() as u64 {
        // Each item encodes to at least one byte, so a count beyond the
        // remaining input is corrupt — reject before allocating for it.
        return Err(CodecError {
            offset: r.position().saturating_sub(8),
            expected: "plausible queue item count",
        });
    }
    let mut items = Vec::with_capacity(declared as usize);
    while (items.len() as u64) < declared {
        let body_len = r.try_u32("page body length")? as usize;
        if body_len > r.remaining() {
            return Err(CodecError {
                offset: r.position().saturating_sub(4),
                expected: "page body within input",
            });
        }
        let end = r.position() + body_len;
        while r.position() < end {
            items.push(T::try_decode(r)?);
            if items.len() as u64 > declared {
                return Err(CodecError {
                    offset: r.position(),
                    expected: "item count matching pages",
                });
            }
        }
        if r.position() != end {
            return Err(CodecError {
                offset: r.position(),
                expected: "item aligned to page body",
            });
        }
    }
    Ok(items)
}

/// Configuration of a [`SpillQueue`].
#[derive(Clone, Debug)]
pub struct SpillQueueConfig {
    /// Byte budget of the in-memory heap (the paper's "in-memory portion of
    /// a main queue", 64 KB – 1024 KB in the experiments).
    pub mem_budget: usize,
    /// Ascending candidate split boundaries (distances), typically from
    /// Equation (3). May be empty; the queue then always splits at the
    /// median.
    pub boundaries: Vec<f64>,
    /// I/O cost model for the queue's backing disk.
    pub cost: CostModel,
}

impl SpillQueueConfig {
    /// A queue that never spills (effectively unbounded memory) — used in
    /// tests and small examples.
    pub fn unbounded() -> Self {
        SpillQueueConfig {
            mem_budget: usize::MAX,
            boundaries: Vec::new(),
            cost: CostModel::free(),
        }
    }

    /// A memory-budgeted queue with the paper's disk cost model.
    pub fn budgeted(mem_budget: usize, boundaries: Vec<f64>) -> Self {
        SpillQueueConfig {
            mem_budget,
            boundaries,
            cost: CostModel::paper_1999_disk(),
        }
    }
}

/// Counters describing a [`SpillQueue`]'s work (disk traffic is reported
/// separately via [`SpillQueue::disk_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillQueueStats {
    /// Total items inserted.
    pub insertions: u64,
    /// Total items popped.
    pub pops: u64,
    /// Heap splits (heap overflow → new disk segment).
    pub splits: u64,
    /// Segment swap-ins (heap underflow → segment loaded).
    pub swap_ins: u64,
    /// Items that were ever written to a disk segment.
    pub items_spilled: u64,
    /// High-water mark of live items.
    pub max_len: u64,
}

#[derive(Debug)]
struct HeapEntry<T> {
    key: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key) == Ordering::Equal && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key on top.
        // Ties broken by insertion order (older first) for determinism.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An unsorted on-disk pile holding items with keys in `[lo, next.lo)`.
#[derive(Debug)]
struct Segment {
    lo: f64,
    pages: Vec<PageId>,
    /// Filled-but-unflushed page images awaiting an extent flush.
    pending: Vec<Vec<u8>>,
    /// Write buffer for the currently filling page (`PAGE_HEADER` bytes
    /// reserved at the front).
    tail: Vec<u8>,
    count: u64,
    bytes: u64,
}

impl Segment {
    fn new(lo: f64, page_size: usize) -> Self {
        let mut tail = Vec::with_capacity(page_size);
        tail.resize(PAGE_HEADER, 0);
        Segment {
            lo,
            pages: Vec::new(),
            pending: Vec::new(),
            tail,
            count: 0,
            bytes: 0,
        }
    }

    fn seal_tail(&mut self, page_size: usize) {
        let body_len = (self.tail.len() - PAGE_HEADER) as u32;
        self.tail[..PAGE_HEADER].copy_from_slice(&body_len.to_le_bytes());
        let sealed = std::mem::replace(&mut self.tail, {
            let mut t = Vec::with_capacity(page_size);
            t.resize(PAGE_HEADER, 0);
            t
        });
        self.pending.push(sealed);
    }

    /// Writes all pending page images as one contiguous extent.
    fn flush_extent(&mut self, disk: &mut VirtualDisk) {
        if self.pending.is_empty() {
            return;
        }
        let ids = disk.alloc_contiguous(self.pending.len());
        for (pid, image) in ids.iter().zip(self.pending.drain(..)) {
            disk.write(*pid, &image);
        }
        self.pages.extend(ids);
    }
}

/// The hybrid memory/disk min-priority queue of §4.4.
pub struct SpillQueue<T: SpillItem> {
    config: SpillQueueConfig,
    disk: VirtualDisk,
    heap: BinaryHeap<HeapEntry<T>>,
    heap_bytes: usize,
    seq: u64,
    /// Ascending by `lo`; `front` holds the shortest-distance range.
    segments: VecDeque<Segment>,
    stats: SpillQueueStats,
}

impl<T: SpillItem> SpillQueue<T> {
    /// Creates an empty queue with its own backing disk.
    pub fn new(config: SpillQueueConfig) -> Self {
        let disk = VirtualDisk::new(config.cost);
        SpillQueue {
            config,
            disk,
            heap: BinaryHeap::new(),
            heap_bytes: 0,
            seq: 0,
            segments: VecDeque::new(),
            stats: SpillQueueStats::default(),
        }
    }

    /// Live item count.
    pub fn len(&self) -> u64 {
        self.heap.len() as u64 + self.segments.iter().map(|s| s.count).sum::<u64>()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.segments.iter().all(|s| s.count == 0)
    }

    /// Number of disk-resident segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Bytes currently charged to the in-memory heap.
    pub fn mem_bytes(&self) -> usize {
        self.heap_bytes
    }

    /// Queue operation counters.
    pub fn stats(&self) -> SpillQueueStats {
        self.stats
    }

    /// I/O statistics of the queue's backing disk.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Memory charged for one heap-resident item of the given encoded
    /// length: the encoding plus [`HEAP_ENTRY_OVERHEAD`]. Callers deriving
    /// heap capacities from a byte budget (Equation-3 boundary sizing)
    /// must use this figure so their arithmetic cannot drift from the
    /// queue's own accounting.
    pub const fn per_item_cost(encoded_len: usize) -> usize {
        encoded_len + HEAP_ENTRY_OVERHEAD
    }

    fn item_cost(item: &T) -> usize {
        Self::per_item_cost(item.encoded_len())
    }

    /// Inserts an item.
    pub fn push(&mut self, item: T) {
        self.stats.insertions += 1;
        self.insert(item);
        self.stats.max_len = self.stats.max_len.max(self.len());
    }

    /// Puts a just-popped item back without counting it as a new
    /// insertion: `insertions` and `max_len` are untouched (the item was
    /// live moments ago, so the high-water mark already covers it). Used
    /// when a stage boundary parks a popped head for the next stage.
    pub fn reinsert(&mut self, item: T) {
        self.insert(item);
    }

    fn insert(&mut self, item: T) {
        let key = item.key();
        assert!(key.is_finite(), "spill queue key must be finite, got {key}");
        if let Some(front_lo) = self.segments.front().map(|s| s.lo) {
            if key >= front_lo {
                self.append_to_segment(item, key);
                return;
            }
        }
        self.heap_bytes += Self::item_cost(&item);
        self.seq += 1;
        self.heap.push(HeapEntry {
            key,
            seq: self.seq,
            item,
        });
        if self.heap_bytes > self.config.mem_budget && self.heap.len() > 1 {
            self.split();
        }
    }

    /// Removes and returns the item with the smallest key, or `None` when
    /// empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.heap.is_empty() {
            self.swap_in()?;
        }
        let entry = self.heap.pop()?;
        self.heap_bytes -= Self::item_cost(&entry.item);
        self.stats.pops += 1;
        Some(entry.item)
    }

    /// The smallest key currently in the in-memory heap, if any. (Segment
    /// contents are unsorted, so this is only a valid global minimum when
    /// the heap is non-empty — which [`pop`](SpillQueue::pop) guarantees
    /// between calls.)
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    /// The smallest key in the whole queue, swapping a segment in if the
    /// heap is empty. Returns `None` when the queue is empty.
    pub fn peek_min(&mut self) -> Option<f64> {
        if self.heap.is_empty() {
            self.swap_in()?;
        }
        self.peek_key()
    }

    /// Drains the queue in ascending key order (test/debug helper).
    pub fn drain_sorted(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }

    /// Serializes and drains the queue's entire contents, appended to
    /// `out` in the spill segment page format ([`encode_page_framed`]).
    /// Items are written in ascending pop order — the order a continued
    /// run would have consumed them, ties included — so restoring them in
    /// sequence reproduces the queue's exact future behaviour. Returns the
    /// number of items saved.
    pub fn save_contents(&mut self, out: &mut Vec<u8>) -> u64 {
        let items = self.drain_sorted();
        encode_page_framed(&items, self.disk.page_size(), out);
        items.len() as u64
    }

    /// Restores contents previously written by
    /// [`save_contents`](SpillQueue::save_contents), re-inserting each
    /// item in the saved order via the uncounted path (the items were
    /// counted when they first entered the queue that saved them; a
    /// restore is a continuation, not new work). Returns the number of
    /// items restored.
    pub fn restore_contents(&mut self, r: &mut Reader<'_>) -> Result<u64, CodecError> {
        let items: Vec<T> = try_decode_page_framed(r)?;
        for item in &items {
            if !item.key().is_finite() {
                return Err(CodecError {
                    offset: r.position(),
                    expected: "finite spill key",
                });
            }
        }
        let n = items.len() as u64;
        for item in items {
            self.reinsert(item);
        }
        Ok(n)
    }

    fn append_to_segment(&mut self, item: T, key: f64) {
        // Find the last segment whose lo <= key (segments ascend by lo;
        // the front one exists and front.lo <= key by the caller's check).
        let idx = match self.segments.iter().position(|s| s.lo > key) {
            Some(0) => unreachable!("caller checked key >= front lo"),
            Some(i) => i - 1,
            None => self.segments.len() - 1,
        };
        let page_size = self.disk.page_size();
        let encoded = item.encoded_len();
        assert!(
            encoded + PAGE_HEADER <= page_size,
            "spill item of {encoded} bytes exceeds page capacity"
        );
        Self::append_into(&mut self.segments[idx], &mut self.disk, item, page_size);
        self.stats.items_spilled += 1;
    }

    /// Low-level append of one encoded item to a segment's write buffer,
    /// flushing extents as pages fill.
    fn append_into(seg: &mut Segment, disk: &mut VirtualDisk, item: T, page_size: usize) {
        let encoded = item.encoded_len();
        if seg.tail.len() + encoded > page_size {
            seg.seal_tail(page_size);
            if seg.pending.len() >= EXTENT_PAGES {
                seg.flush_extent(disk);
            }
        }
        item.encode(&mut seg.tail);
        seg.count += 1;
        seg.bytes += encoded as u64;
    }

    /// Chooses a split boundary for the current heap contents: the
    /// configured (Equation 3) boundary closest to the median key if one
    /// separates the contents, otherwise the median key itself.
    fn choose_boundary(entries: &mut [HeapEntry<T>], configured: &[f64], upper: f64) -> f64 {
        let mid = entries.len() / 2;
        let (_, median, _) = entries.select_nth_unstable_by(mid, |a, b| a.key.total_cmp(&b.key));
        let median = median.key;
        let min = entries.iter().map(|e| e.key).fold(f64::INFINITY, f64::min);
        let max = entries
            .iter()
            .map(|e| e.key)
            .fold(f64::NEG_INFINITY, f64::max);
        let candidate = configured
            .iter()
            .copied()
            .filter(|&b| b > min && b <= max && b < upper)
            .min_by(|a, b| (a - median).abs().total_cmp(&(b - median).abs()));
        match candidate {
            Some(b) => b,
            None if median > min => median,
            // Degenerate distribution (median == min): split just above min
            // so at least the min-key items stay in memory.
            None => max,
        }
    }

    fn split(&mut self) {
        self.stats.splits += 1;
        let mut entries: Vec<HeapEntry<T>> = std::mem::take(&mut self.heap).into_vec();
        let upper = self.segments.front().map_or(f64::INFINITY, |s| s.lo);
        let boundary = Self::choose_boundary(&mut entries, &self.config.boundaries, upper);
        let page_size = self.disk.page_size();
        // Cap the number of segments (each keeps a one-page write buffer):
        // past the cap, widen the front segment's range downward instead of
        // creating a new one — it is an unsorted pile, so lowering its `lo`
        // bound is always legal.
        const MAX_SEGMENTS: usize = 64;
        if self.segments.len() >= MAX_SEGMENTS {
            self.segments.front_mut().expect("segments non-empty").lo = boundary;
        } else {
            self.segments.push_front(Segment::new(boundary, page_size));
        }

        let mut kept = Vec::new();
        let mut spill = Vec::new();
        for e in entries {
            if e.key < boundary {
                kept.push(e);
            } else {
                spill.push(e);
            }
        }
        if kept.is_empty() {
            // Degenerate split: every entry shares one key, so
            // `boundary == min == max` rejected them all. Keep the *older*
            // half in memory — the heap must stay non-empty or every
            // subsequent pop swaps straight back in from disk — and
            // forcibly spill only the newer half.
            spill.sort_by_key(|e| e.seq);
            let keep = spill.len() / 2;
            kept = spill.drain(..keep.max(1)).collect();
        }
        for e in spill {
            self.heap_bytes -= Self::item_cost(&e.item);
            self.append_to_segment(e.item, e.key);
        }
        self.heap = kept.into();
    }

    /// Loads the shortest-range segment into the heap. Returns `None` when
    /// no segment holds items. If the segment exceeds the memory budget,
    /// the excess is immediately re-spilled as a tighter segment.
    fn swap_in(&mut self) -> Option<()> {
        // Drop exhausted segments.
        while matches!(self.segments.front(), Some(s) if s.count == 0) {
            let seg = self.segments.pop_front().expect("checked front");
            for pid in seg.pages {
                self.disk.free(pid);
            }
        }
        let seg = self.segments.pop_front()?;
        self.stats.swap_ins += 1;

        let mut items: Vec<T> = Vec::with_capacity(seg.count as usize);
        for pid in &seg.pages {
            let image = self.disk.read(*pid).to_vec();
            let body_len =
                u32::from_le_bytes(image[..PAGE_HEADER].try_into().expect("header")) as usize;
            let mut r = Reader::new(&image[PAGE_HEADER..PAGE_HEADER + body_len]);
            while r.remaining() > 0 {
                items.push(T::decode(&mut r));
            }
        }
        for image in &seg.pending {
            let body_len =
                u32::from_le_bytes(image[..PAGE_HEADER].try_into().expect("header")) as usize;
            let mut r = Reader::new(&image[PAGE_HEADER..PAGE_HEADER + body_len]);
            while r.remaining() > 0 {
                items.push(T::decode(&mut r));
            }
        }
        if seg.tail.len() > PAGE_HEADER {
            let mut r = Reader::new(&seg.tail[PAGE_HEADER..]);
            while r.remaining() > 0 {
                items.push(T::decode(&mut r));
            }
        }
        for pid in seg.pages {
            self.disk.free(pid);
        }
        debug_assert_eq!(items.len() as u64, seg.count);

        let total: usize = items.iter().map(Self::item_cost).sum();
        if total > self.config.mem_budget && items.len() > 1 {
            // Partial swap-in: keep the smallest keys within budget and
            // re-spill the rest — into heap-sized segments, so each future
            // swap-in consumes exactly one segment and the total re-spill
            // I/O over the queue's life stays linear.
            items.sort_by(|a, b| a.key().total_cmp(&b.key()));
            let mut used = 0;
            let mut cut = items.len();
            for (i, it) in items.iter().enumerate() {
                used += Self::item_cost(it);
                if used > self.config.mem_budget && i > 0 {
                    cut = i;
                    break;
                }
            }
            let rest = items.split_off(cut);
            if !rest.is_empty() {
                let page_size = self.disk.page_size();
                let mut chunks: Vec<Segment> = Vec::new();
                let mut chunk: Option<Segment> = None;
                let mut chunk_cost = 0usize;
                for it in rest {
                    // Close the chunk *before* an item would push it past
                    // the budget, so every re-spilled chunk fits in memory
                    // and its own swap-in never re-splits it. (A single
                    // over-budget item still gets a chunk of its own.)
                    let cost = Self::item_cost(&it);
                    if chunk.is_none() || chunk_cost + cost > self.config.mem_budget {
                        if let Some(done) = chunk.take() {
                            chunks.push(done);
                        }
                        chunk = Some(Segment::new(it.key(), page_size));
                        chunk_cost = 0;
                    }
                    chunk_cost += cost;
                    let seg = chunk.as_mut().expect("just created");
                    Self::append_into(seg, &mut self.disk, it, page_size);
                    self.stats.items_spilled += 1;
                }
                if let Some(done) = chunk.take() {
                    chunks.push(done);
                }
                // Ascending ranges: push to the front in reverse.
                for seg in chunks.into_iter().rev() {
                    self.segments.push_front(seg);
                }
            }
        }
        for item in items {
            let key = item.key();
            self.heap_bytes += Self::item_cost(&item);
            self.seq += 1;
            self.heap.push(HeapEntry {
                key,
                seq: self.seq,
                item,
            });
        }
        if self.heap.is_empty() {
            // Segment was empty after all; try the next one.
            return self.swap_in();
        }
        Some(())
    }
}

impl<T: SpillItem> std::fmt::Debug for SpillQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillQueue")
            .field("len", &self.len())
            .field("heap_len", &self.heap.len())
            .field("heap_bytes", &self.heap_bytes)
            .field("segments", &self.segments.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal item: key + payload id.
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Item {
        key: f64,
        id: u64,
    }

    impl SpillItem for Item {
        fn key(&self) -> f64 {
            self.key
        }
        fn encoded_len(&self) -> usize {
            16
        }
        fn encode(&self, out: &mut Vec<u8>) {
            crate::codec::put_f64(out, self.key);
            crate::codec::put_u64(out, self.id);
        }
        fn try_decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Item {
                key: r.try_f64("item key")?,
                id: r.try_u64("item id")?,
            })
        }
    }

    fn items(keys: &[f64]) -> Vec<Item> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Item {
                key: k,
                id: i as u64,
            })
            .collect()
    }

    fn pop_keys<T: SpillItem>(q: &mut SpillQueue<T>) -> Vec<f64> {
        q.drain_sorted().iter().map(|i| i.key()).collect()
    }

    #[test]
    fn unbounded_orders_items() {
        let mut q = SpillQueue::new(SpillQueueConfig::unbounded());
        for it in items(&[5.0, 1.0, 3.0, 2.0, 4.0]) {
            q.push(it);
        }
        assert_eq!(pop_keys(&mut q), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.stats().splits, 0);
        assert_eq!(q.disk_stats().total_ios(), 0);
    }

    #[test]
    fn tiny_budget_spills_and_still_orders() {
        let mut cfg = SpillQueueConfig::budgeted(200, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        let n = 2000;
        // Pseudo-random insert order so disk segments keep receiving
        // appends (filling their pages) after the first splits.
        let mut keys: Vec<u64> = (0..n).collect();
        for i in 0..keys.len() {
            let j = (i * 48271 + 11) % keys.len();
            keys.swap(i, j);
        }
        for (id, &k) in keys.iter().enumerate() {
            q.push(Item {
                key: k as f64,
                id: id as u64,
            });
        }
        assert_eq!(q.len(), n);
        assert!(q.stats().splits > 0, "budget must force splits");
        let keys = pop_keys(&mut q);
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(keys, expect);
        assert!(q.disk_stats().pages_written > 0);
        assert!(q.disk_stats().pages_read > 0);
    }

    #[test]
    fn descending_inserts_bound_segment_count() {
        // Descending keys are the worst case for splits: every split wants
        // a new, lower segment. The cap must hold and ordering survive.
        let mut cfg = SpillQueueConfig::budgeted(200, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        let n = 1500u64;
        for i in (0..n).rev() {
            q.push(Item {
                key: i as f64,
                id: i,
            });
        }
        assert!(q.segment_count() <= 64, "segments = {}", q.segment_count());
        let keys = pop_keys(&mut q);
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn configured_boundaries_guide_splits() {
        let mut cfg = SpillQueueConfig::budgeted(300, vec![10.0, 20.0, 30.0, 40.0]);
        cfg.cost.page_size = 256;
        let mut q = SpillQueue::new(cfg);
        for i in 0..200 {
            q.push(Item {
                key: (i % 50) as f64,
                id: i,
            });
        }
        let keys = pop_keys(&mut q);
        let mut expect: Vec<f64> = (0..200u64).map(|i| (i % 50) as f64).collect();
        expect.sort_unstable_by(f64::total_cmp);
        assert_eq!(keys, expect);
    }

    #[test]
    fn inserts_below_and_above_spill_boundary() {
        let mut cfg = SpillQueueConfig::budgeted(256, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        // Force a split with large keys, then insert small keys (go to heap)
        // and large keys (go directly to segments).
        for i in 0..50 {
            q.push(Item {
                key: 100.0 + i as f64,
                id: i,
            });
        }
        assert!(q.segment_count() > 0);
        q.push(Item { key: 1.0, id: 1000 });
        q.push(Item {
            key: 500.0,
            id: 1001,
        });
        let keys = pop_keys(&mut q);
        assert_eq!(keys.first(), Some(&1.0));
        assert_eq!(keys.last(), Some(&500.0));
        assert_eq!(keys.len(), 52);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut cfg = SpillQueueConfig::budgeted(300, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        let mut popped = Vec::new();
        for round in 0..20u64 {
            for i in 0..30u64 {
                let k = ((i * 7919 + round * 104729) % 1000) as f64;
                q.push(Item {
                    key: k,
                    id: round * 100 + i,
                });
            }
            // Pop a few each round; popped values must never decrease below
            // a previously popped value *at pop time* relative to remaining
            // contents — global sortedness is checked at the end.
            for _ in 0..10 {
                popped.push(q.pop().expect("non-empty").key);
            }
        }
        popped.extend(pop_keys(&mut q));
        assert_eq!(popped.len(), 20 * 30);
        // Not globally sorted (pops interleave with pushes), but every
        // prefix pop was the minimum of what was live. Re-verify by
        // simulation with a reference heap.
        let mut reference = std::collections::BinaryHeap::new();
        let mut cfg = SpillQueueConfig::budgeted(300, vec![]);
        cfg.cost.page_size = 128;
        let mut q2 = SpillQueue::new(cfg);
        let mut idx = 0;
        for round in 0..20u64 {
            for i in 0..30u64 {
                let k = ((i * 7919 + round * 104729) % 1000) as f64;
                q2.push(Item {
                    key: k,
                    id: round * 100 + i,
                });
                reference.push(std::cmp::Reverse((k * 1000.0) as i64));
            }
            for _ in 0..10 {
                let got = q2.pop().unwrap().key;
                let want = (reference.pop().unwrap().0 as f64) / 1000.0;
                assert_eq!(got, want, "mismatch at pop {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn all_equal_keys_make_progress() {
        let mut cfg = SpillQueueConfig::budgeted(200, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        for i in 0..100 {
            q.push(Item { key: 7.0, id: i });
        }
        let keys = pop_keys(&mut q);
        assert_eq!(keys.len(), 100);
        assert!(keys.iter().all(|&k| k == 7.0));
    }

    #[test]
    fn equal_key_split_keeps_older_half_in_memory() {
        // Regression: the degenerate split (all heap keys equal) used to
        // spill *every* entry — `boundary == min == max` rejected them all
        // and the forced-half branch was unreachable — leaving the heap
        // empty so each pop swapped straight back in from disk.
        let mut cfg = SpillQueueConfig::budgeted(200, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        // item_cost = 16 encoded + 24 overhead = 40; the sixth push
        // overflows the 200-byte budget and triggers the only split.
        for i in 0..100 {
            q.push(Item { key: 7.0, id: i });
        }
        assert_eq!(q.stats().splits, 1);
        assert!(
            q.mem_bytes() > 0,
            "equal-key split must leave the heap non-empty"
        );
        // The forced-half branch kept floor(6/2) = 3 of the six resident
        // entries; everything after the split appends to the segment, so
        // exactly 97 items ever hit disk.
        assert_eq!(q.heap.len(), 3);
        assert_eq!(q.stats().items_spilled, 97);
        // The older entries are the ones that stayed resident.
        let resident: Vec<u64> = q.heap.iter().map(|e| e.item.id).collect();
        assert!(resident.iter().all(|&id| id < 3), "kept {resident:?}");
        let keys = pop_keys(&mut q);
        assert_eq!(keys.len(), 100);
        assert!(keys.iter().all(|&k| k == 7.0));
    }

    #[test]
    fn reinsert_skips_insertion_stats() {
        let mut q = SpillQueue::new(SpillQueueConfig::unbounded());
        for it in items(&[3.0, 1.0, 2.0]) {
            q.push(it);
        }
        let head = q.pop().expect("non-empty");
        let before = q.stats();
        q.reinsert(head);
        let after = q.stats();
        assert_eq!(after.insertions, before.insertions, "reinsert counted");
        assert_eq!(after.max_len, before.max_len, "reinsert moved max_len");
        assert_eq!(q.len(), 3);
        assert_eq!(pop_keys(&mut q), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn reinsert_routes_to_segment_when_range_is_spilled() {
        // A reinserted head whose key falls in a disk-resident range must
        // append to that segment like any insert would, still uncounted.
        let mut cfg = SpillQueueConfig::budgeted(200, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg);
        for i in 0..50 {
            q.push(Item {
                key: i as f64,
                id: i,
            });
        }
        assert!(q.segment_count() > 0);
        let insertions = q.stats().insertions;
        let head = q.pop().expect("non-empty");
        q.reinsert(Item { key: 40.0, ..head });
        assert_eq!(q.stats().insertions, insertions);
        assert_eq!(q.len(), 50);
        let keys = pop_keys(&mut q);
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn save_restore_roundtrips_contents_in_pop_order() {
        let mut cfg = SpillQueueConfig::budgeted(200, vec![]);
        cfg.cost.page_size = 128;
        let mut q = SpillQueue::new(cfg.clone());
        for i in 0..300u64 {
            q.push(Item {
                key: ((i * 7919) % 500) as f64,
                id: i,
            });
        }
        assert!(q.segment_count() > 0, "spilled state must be covered");
        let mut image = Vec::new();
        assert_eq!(q.save_contents(&mut image), 300);
        assert!(q.is_empty(), "save drains the queue");

        let mut restored: SpillQueue<Item> = SpillQueue::new(cfg);
        let mut r = Reader::new(&image);
        assert_eq!(restored.restore_contents(&mut r), Ok(300));
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.stats().insertions, 0, "restore is uncounted");
        // Same contents, same order — ties included (ids distinguish them).
        let mut q2 = SpillQueue::new(SpillQueueConfig::unbounded());
        for i in 0..300u64 {
            q2.push(Item {
                key: ((i * 7919) % 500) as f64,
                id: i,
            });
        }
        assert_eq!(restored.drain_sorted(), q2.drain_sorted());
    }

    #[test]
    fn save_restore_empty_queue() {
        let mut q: SpillQueue<Item> = SpillQueue::new(SpillQueueConfig::unbounded());
        let mut image = Vec::new();
        assert_eq!(q.save_contents(&mut image), 0);
        let mut restored: SpillQueue<Item> = SpillQueue::new(SpillQueueConfig::unbounded());
        assert_eq!(restored.restore_contents(&mut Reader::new(&image)), Ok(0));
        assert!(restored.is_empty());
    }

    #[test]
    fn restore_rejects_truncated_image() {
        let mut q = SpillQueue::new(SpillQueueConfig::unbounded());
        for it in items(&[1.0, 2.0, 3.0]) {
            q.push(it);
        }
        let mut image = Vec::new();
        q.save_contents(&mut image);
        for cut in [image.len() - 1, image.len() / 2, 9, 3] {
            let mut fresh: SpillQueue<Item> = SpillQueue::new(SpillQueueConfig::unbounded());
            let err = fresh
                .restore_contents(&mut Reader::new(&image[..cut]))
                .expect_err("truncated image must fail cleanly");
            assert!(err.offset <= cut, "offset {} past cut {}", err.offset, cut);
        }
    }

    #[test]
    fn restore_rejects_implausible_count() {
        let mut image = Vec::new();
        put_u64(&mut image, u64::MAX);
        let mut q: SpillQueue<Item> = SpillQueue::new(SpillQueueConfig::unbounded());
        let err = q
            .restore_contents(&mut Reader::new(&image))
            .expect_err("bogus count");
        assert_eq!(err.expected, "plausible queue item count");
    }

    #[test]
    fn restore_rejects_non_finite_key() {
        let bad = Item {
            key: 1.0,
            id: u64::MAX,
        };
        let mut image = Vec::new();
        encode_page_framed(&[bad], 128, &mut image);
        // Corrupt the key bytes in place: body starts after the u64 count
        // and u32 page header.
        let key_at = 8 + 4;
        image[key_at..key_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let mut q: SpillQueue<Item> = SpillQueue::new(SpillQueueConfig::unbounded());
        let err = q
            .restore_contents(&mut Reader::new(&image))
            .expect_err("NaN key");
        assert_eq!(err.expected, "finite spill key");
    }

    #[test]
    fn page_framed_splits_bodies_at_page_capacity() {
        let many = items(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let mut image = Vec::new();
        encode_page_framed(&many, 64, &mut image);
        // 64-byte pages hold floor((64-4)/16) = 3 items per body.
        let mut r = Reader::new(&image);
        assert_eq!(r.u64(), 100);
        let first_body = r.u32();
        assert_eq!(first_body, 48);
        let decoded: Vec<Item> = try_decode_page_framed(&mut Reader::new(&image)).unwrap();
        assert_eq!(decoded, many);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = SpillQueue::new(SpillQueueConfig::unbounded());
        assert!(q.is_empty());
        q.push(Item { key: 1.0, id: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn stats_count_operations() {
        let mut q = SpillQueue::new(SpillQueueConfig::unbounded());
        for it in items(&[1.0, 2.0, 3.0]) {
            q.push(it);
        }
        let _ = q.pop();
        let s = q.stats();
        assert_eq!(s.insertions, 3);
        assert_eq!(s.pops, 1);
        assert_eq!(s.max_len, 3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_keys() {
        let mut q = SpillQueue::new(SpillQueueConfig::unbounded());
        q.push(Item {
            key: f64::INFINITY,
            id: 0,
        });
    }

    #[test]
    fn partial_swap_in_respects_budget() {
        // A segment larger than memory must be split on swap-in rather than
        // blowing the budget.
        let mut cfg = SpillQueueConfig::budgeted(240, vec![]);
        cfg.cost.page_size = 4096;
        let mut q = SpillQueue::new(cfg);
        for i in 0..400u64 {
            q.push(Item {
                key: 1000.0 - i as f64,
                id: i,
            });
        }
        let keys = pop_keys(&mut q);
        assert_eq!(keys.len(), 400);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // The budget fits ~6 items; the heap must never have exceeded it by
        // more than one item's cost during the drain.
        assert!(q.mem_bytes() == 0);
    }

    #[test]
    fn respill_chunks_respect_budget() {
        // Regression: the re-spill loop used to check `chunk_cost >
        // mem_budget` *before* appending, so a chunk could exceed the
        // budget by one item and its own swap-in would re-split it.
        let budget = 400; // ten items at cost 40
        let cfg = SpillQueueConfig {
            mem_budget: budget,
            boundaries: Vec::new(),
            cost: CostModel {
                page_size: 4096,
                ..CostModel::free()
            },
        };
        let mut q: SpillQueue<Item> = SpillQueue::new(cfg);
        // Hand-build one oversized front segment (25 items against a
        // ten-item budget) so the first pop must partially swap it in.
        let page_size = q.disk.page_size();
        let mut seg = Segment::new(5.0, page_size);
        for i in 0..25u64 {
            SpillQueue::append_into(
                &mut seg,
                &mut q.disk,
                Item {
                    key: 5.0 + i as f64,
                    id: i,
                },
                page_size,
            );
        }
        q.segments.push_front(seg);
        let first = q.pop().expect("segment holds items");
        assert_eq!(first.key, 5.0);
        assert_eq!(q.stats().swap_ins, 1);
        // Ten stayed in memory (one popped); the other 15 were re-spilled
        // into chunks that each fit the budget — so no later swap-in of a
        // re-spilled chunk ever re-splits.
        let cost = SpillQueue::<Item>::per_item_cost(16);
        for s in &q.segments {
            assert!(
                s.count as usize * cost <= budget,
                "re-spilled chunk of {} items exceeds the budget",
                s.count
            );
        }
        let mut rest = vec![first.key];
        rest.extend(pop_keys(&mut q));
        let want: Vec<f64> = (0..25).map(|i| 5.0 + i as f64).collect();
        assert_eq!(rest, want);
        // The chunks of ten and five items swap in whole: three swap-ins
        // for the drain, no splits triggered by re-spilled chunks.
        assert_eq!(q.stats().swap_ins, 3);
        assert_eq!(q.stats().splits, 0);
    }
}
