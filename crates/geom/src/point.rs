use std::ops::Index;

/// A `D`-dimensional point.
///
/// Coordinates are finite `f64`s. The paper's experiments use `D = 2`
/// (TIGER/Line map data); all algorithms in this workspace are generic over
/// `D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates. Panics on non-finite values.
    #[inline]
    pub fn new(coords: [f64; D]) -> Self {
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite: {coords:?}"
        );
        Point { coords }
    }

    /// Returns the coordinate array.
    #[inline]
    pub fn coords(&self) -> [f64; D] {
        self.coords
    }

    /// Returns the coordinate along dimension `dim`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        self.coords[dim]
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(&self, other: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let delta = self.coords[d] - other.coords[d];
            acc += delta * delta;
        }
        acc
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point<D>) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub fn origin() -> Self {
        Point { coords: [0.0; D] }
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    #[inline]
    fn index(&self, dim: usize) -> &f64 {
        &self.coords[dim]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Point::new(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn indexing_and_accessors() {
        let p = Point::new([1.5, -2.5, 7.0]);
        assert_eq!(p[0], 1.5);
        assert_eq!(p.coord(2), 7.0);
        assert_eq!(p.coords(), [1.5, -2.5, 7.0]);
    }

    #[test]
    fn origin_is_zero() {
        let o: Point<2> = Point::origin();
        assert_eq!(o.coords(), [0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_coordinates() {
        let _ = Point::new([f64::NAN, 0.0]);
    }

    #[test]
    fn one_dimensional() {
        let a: Point<1> = Point::new([2.0]);
        let b: Point<1> = Point::new([-1.0]);
        assert_eq!(a.dist(&b), 3.0);
    }
}
