use crate::Point;

/// A `D`-dimensional axis-aligned rectangle — a minimum bounding rectangle
/// (MBR) in R-tree terms.
///
/// `Rect` carries all the metrics the distance-join algorithms need:
///
/// * [`min_dist`](Rect::min_dist) — the minimum Euclidean distance between
///   two MBRs (0 when they intersect); the priority used by every queue in
///   the paper,
/// * [`max_dist`](Rect::max_dist) — the maximum Euclidean distance,
/// * [`axis_dist`](Rect::axis_dist) — the separation along one axis, the
///   cheap lower bound used by the plane sweep (`axis_distance(n, m)` in
///   Algorithms 1–3),
/// * the usual R*-tree construction metrics (`area`, `margin`,
///   `enlargement`, `overlap_area`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from its lower and upper corners.
    ///
    /// Panics if any `lo[d] > hi[d]` or any coordinate is non-finite.
    #[inline]
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        for d in 0..D {
            assert!(
                lo[d].is_finite() && hi[d].is_finite() && lo[d] <= hi[d],
                "invalid rect bounds on dim {d}: lo={:?} hi={:?}",
                lo,
                hi
            );
        }
        Rect { lo, hi }
    }

    /// A degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point<D>) -> Self {
        Rect {
            lo: p.coords(),
            hi: p.coords(),
        }
    }

    /// The smallest rectangle containing both corner points (in any order).
    #[inline]
    pub fn from_corners(a: Point<D>, b: Point<D>) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            lo[d] = a[d].min(b[d]);
            hi[d] = a[d].max(b[d]);
        }
        Rect { lo, hi }
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> [f64; D] {
        self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> [f64; D] {
        self.hi
    }

    /// Side length along dimension `dim` (the paper's `|r|_x`).
    #[inline]
    pub fn side(&self, dim: usize) -> f64 {
        self.hi[dim] - self.lo[dim]
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = 0.5 * (self.lo[d] + self.hi[d]);
        }
        Point::new(c)
    }

    /// Volume (area for `D = 2`).
    #[inline]
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for d in 0..D {
            a *= self.side(d);
        }
        a
    }

    /// Sum of side lengths (the R*-tree "margin" metric, up to a constant).
    #[inline]
    pub fn margin(&self) -> f64 {
        let mut m = 0.0;
        for d in 0..D {
            m += self.side(d);
        }
        m
    }

    /// The smallest rectangle containing `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for d in 0..D {
            lo[d] = lo[d].min(other.lo[d]);
            hi[d] = hi[d].max(other.hi[d]);
        }
        Rect { lo, hi }
    }

    /// Grows `self` in place to contain `other`.
    #[inline]
    pub fn union_assign(&mut self, other: &Rect<D>) {
        for d in 0..D {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Area increase needed for `self` to contain `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Whether the two rectangles intersect (closed intervals: touching
    /// counts).
    #[inline]
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        for d in 0..D {
            if self.lo[d] > other.hi[d] || other.lo[d] > self.hi[d] {
                return false;
            }
        }
        true
    }

    /// Area of the intersection, 0 when disjoint.
    #[inline]
    pub fn overlap_area(&self, other: &Rect<D>) -> f64 {
        let mut a = 1.0;
        for d in 0..D {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if lo >= hi {
                return 0.0;
            }
            a *= hi - lo;
        }
        a
    }

    /// The intersection rectangle, if non-empty (touching rectangles yield a
    /// degenerate rect).
    #[inline]
    pub fn intersection(&self, other: &Rect<D>) -> Option<Rect<D>> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if lo[d] > hi[d] {
                return None;
            }
        }
        Some(Rect { lo, hi })
    }

    /// Whether `self` fully contains `other`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        for d in 0..D {
            if other.lo[d] < self.lo[d] || other.hi[d] > self.hi[d] {
                return false;
            }
        }
        true
    }

    /// Whether `self` contains the point `p`.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        for d in 0..D {
            if p[d] < self.lo[d] || p[d] > self.hi[d] {
                return false;
            }
        }
        true
    }

    /// Separation along dimension `dim`: 0 when the projections overlap,
    /// otherwise the gap between them. This is the `axis_distance` of the
    /// paper's plane-sweep pruning and always lower-bounds
    /// [`min_dist`](Rect::min_dist).
    #[inline]
    pub fn axis_dist(&self, other: &Rect<D>, dim: usize) -> f64 {
        let gap = (self.lo[dim] - other.hi[dim]).max(other.lo[dim] - self.hi[dim]);
        gap.max(0.0)
    }

    /// Squared minimum Euclidean distance between the MBRs.
    #[inline]
    pub fn min_dist_sq(&self, other: &Rect<D>) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let gap = self.axis_dist(other, d);
            acc += gap * gap;
        }
        acc
    }

    /// Minimum Euclidean distance between the MBRs (`dist(r, s)` in the
    /// paper; 0 when they intersect).
    #[inline]
    pub fn min_dist(&self, other: &Rect<D>) -> f64 {
        self.min_dist_sq(other).sqrt()
    }

    /// Squared maximum Euclidean distance between the MBRs.
    #[inline]
    pub fn max_dist_sq(&self, other: &Rect<D>) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let a = (self.hi[d] - other.lo[d]).abs();
            let b = (other.hi[d] - self.lo[d]).abs();
            let m = a.max(b);
            acc += m * m;
        }
        acc
    }

    /// Maximum Euclidean distance between the MBRs (used when non-object
    /// pairs enter a distance queue — see the paper's footnote 1).
    #[inline]
    pub fn max_dist(&self, other: &Rect<D>) -> f64 {
        self.max_dist_sq(other).sqrt()
    }

    /// Distance between centers; a convenient tie-break heuristic.
    #[inline]
    pub fn center_dist(&self, other: &Rect<D>) -> f64 {
        self.center().dist(&other.center())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(lo, hi)
    }

    #[test]
    fn basic_metrics() {
        let a = r([0.0, 0.0], [2.0, 4.0]);
        assert_eq!(a.side(0), 2.0);
        assert_eq!(a.side(1), 4.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center().coords(), [1.0, 2.0]);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 2.0], [3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, r([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        let mut c = a;
        c.union_assign(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn intersection_cases() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        let c = r([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert_eq!(a.intersection(&b), Some(r([1.0, 1.0], [2.0, 2.0])));
        assert!(a.intersection(&c).is_none());
        // Touching rectangles intersect with zero overlap area.
        let t = r([2.0, 0.0], [4.0, 2.0]);
        assert!(a.intersects(&t));
        assert_eq!(a.overlap_area(&t), 0.0);
    }

    #[test]
    fn containment() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        let b = r([1.0, 1.0], [2.0, 2.0]);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_point(&Point::new([0.0, 4.0])));
        assert!(!a.contains_point(&Point::new([-0.1, 2.0])));
    }

    #[test]
    fn axis_and_min_dist() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([4.0, 5.0], [6.0, 7.0]);
        assert_eq!(a.axis_dist(&b, 0), 3.0);
        assert_eq!(a.axis_dist(&b, 1), 4.0);
        assert_eq!(a.min_dist(&b), 5.0);
        assert_eq!(b.min_dist(&a), 5.0);
        // Overlapping projections give zero axis distance.
        let c = r([0.5, 10.0], [2.0, 11.0]);
        assert_eq!(a.axis_dist(&c, 0), 0.0);
        assert_eq!(a.min_dist(&c), 9.0);
    }

    #[test]
    fn min_dist_zero_when_intersecting() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.min_dist(&b), 0.0);
    }

    #[test]
    fn max_dist() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 0.0], [3.0, 1.0]);
        // Farthest corners: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1).
        assert!((a.max_dist(&b) - 10.0_f64.sqrt()).abs() < 1e-12);
        // max_dist of a rect with itself is its diagonal.
        assert!((a.max_dist(&a) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn axis_dist_lower_bounds_min_dist() {
        let a = r([0.0, 0.0], [1.0, 2.0]);
        let b = r([5.0, 7.0], [6.0, 9.0]);
        for d in 0..2 {
            assert!(a.axis_dist(&b, d) <= a.min_dist(&b));
        }
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Rect::from_point(Point::new([1.0, 2.0]));
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.min_dist(&p), 0.0);
        let q = Rect::from_point(Point::new([4.0, 6.0]));
        assert_eq!(p.min_dist(&q), 5.0);
        assert_eq!(p.max_dist(&q), 5.0);
    }

    #[test]
    fn from_corners_normalizes() {
        let a = Rect::from_corners(Point::new([3.0, 1.0]), Point::new([0.0, 2.0]));
        assert_eq!(a, r([0.0, 1.0], [3.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "invalid rect")]
    fn rejects_inverted_bounds() {
        let _ = Rect::new([1.0, 0.0], [0.0, 1.0]);
    }
}
