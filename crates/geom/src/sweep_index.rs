//! The *sweeping index* (paper §3.2, Equation 2, Table 1) and the sweep
//! *direction* rule (§3.3).
//!
//! For a node pair ⟨r, s⟩ about to be expanded bidirectionally, the paper
//! defines, per dimension `x`:
//!
//! ```text
//! SweepingIndex_x = ∫₀^{|r|ₓ} Overlap(qDmax, r, t) / |s|ₓ dt
//!                 + ∫₀^{|s|ₓ} Overlap(qDmax, s, t) / |r|ₓ dt
//! ```
//!
//! where `Overlap(w, r, t)` is the length of `s`'s projection covered by a
//! window `[t, t + w]` whose left end sweeps across `r`'s projection. The
//! index is a normalized estimate of how many child pairs will need real
//! distance computations if dimension `x` is chosen as the sweeping axis;
//! the axis with the *minimum* index is chosen.
//!
//! Rather than transcribing Table 1's case analysis (which covers only
//! disjoint projections), we integrate the piecewise-linear overlap function
//! exactly for *all* configurations — disjoint, overlapping, and contained —
//! which both subsumes Table 1 and is validated against it (and against
//! numeric integration) in the tests below.

use crate::Rect;

/// The direction a plane sweep scans child entries in (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepDirection {
    /// Scan in increasing coordinate order along the sweeping axis.
    Forward,
    /// Scan in decreasing coordinate order along the sweeping axis.
    Backward,
}

/// Exact value of `∫ overlap([u, u+w], [s0, s1]) du` for `u ∈ [r0, r1]`.
///
/// The integrand `f(u) = max(0, min(u+w, s1) - max(u, s0))` is piecewise
/// linear with breakpoints at `u = s0`, `u = s1 - w` and the zero crossings
/// of `min(u+w, s1) - max(u, s0)`; we integrate each linear piece in closed
/// form.
fn overlap_integral(r0: f64, r1: f64, s0: f64, s1: f64, w: f64) -> f64 {
    debug_assert!(r1 >= r0 && s1 >= s0 && w >= 0.0);
    if r1 == r0 {
        return 0.0;
    }
    // h(u) = min(u + w, s1) - max(u, s0); f = max(0, h).
    let h = |u: f64| (u + w).min(s1) - u.max(s0);
    // Sort the interior breakpoints into [r0, r1].
    let mut cuts = [r0, r1, s0.clamp(r0, r1), (s1 - w).clamp(r0, r1)];
    cuts.sort_unstable_by(f64::total_cmp);
    let mut total = 0.0;
    for i in 0..cuts.len() - 1 {
        let (a, b) = (cuts[i], cuts[i + 1]);
        if b <= a {
            continue;
        }
        let (ha, hb) = (h(a), h(b));
        // h is linear on [a, b]; integrate max(0, h).
        total += if ha >= 0.0 && hb >= 0.0 {
            0.5 * (ha + hb) * (b - a)
        } else if ha <= 0.0 && hb <= 0.0 {
            0.0
        } else {
            // One zero crossing at c = a + (b - a) * ha / (ha - hb).
            let c = a + (b - a) * ha / (ha - hb);
            if ha > 0.0 {
                0.5 * ha * (c - a)
            } else {
                0.5 * hb * (b - c)
            }
        };
    }
    total
}

/// One integral term of Equation (2), normalized by the anchor extent: the
/// expected fraction of `s`-children encountered per `r`-anchor, along `dim`.
///
/// Equation (2) as printed integrates `Overlap/|s|` over `t ∈ [0, |r|ₓ]`
/// without dividing by `|r|ₓ`. Taken literally the index then scales with
/// the extent length and *prefers the shorter axis*, contradicting the
/// paper's own Figure 5 discussion (child nodes spread widely along `y` ⇒
/// choose `y`). Reading "a normalized estimation of the number of node
/// pairs" as intended, each integral must be averaged over its anchor
/// extent — anchors are spread across `|r|ₓ` — which is what we implement;
/// the resulting index is the expected *fraction of child pairs* needing a
/// real distance computation (range `[0, 2]`).
///
/// Degenerate projections are handled so the index stays meaningful:
/// * `|s| = 0`: the fraction becomes an indicator (the window either covers
///   the point or not), integrating to the length of `[s0 - w, s0] ∩ [r0, r1]`,
/// * `|r| = 0`: the sweep has a single anchor position, so we use the
///   integrand's value at that position instead of an integral over a
///   zero-length interval.
fn one_term(r0: f64, r1: f64, s0: f64, s1: f64, w: f64) -> f64 {
    let rlen = r1 - r0;
    let slen = s1 - s0;
    if slen == 0.0 {
        // Indicator: window [u, u+w] covers the point s0 iff u ∈ [s0-w, s0].
        if rlen == 0.0 {
            return if r0 >= s0 - w && r0 <= s0 { 1.0 } else { 0.0 };
        }
        let lo = (s0 - w).max(r0);
        let hi = s0.min(r1);
        return ((hi - lo).max(0.0)) / rlen;
    }
    if rlen == 0.0 {
        // Point anchor: evaluate the overlap fraction at u = r0.
        let f = ((r0 + w).min(s1) - r0.max(s0)).max(0.0);
        return f / slen;
    }
    overlap_integral(r0, r1, s0, s1, w) / (slen * rlen)
}

/// The sweeping index of Equation (2) for dimension `dim`, window (cutoff)
/// length `w`, normalized per anchor extent (see `one_term`): the expected
/// fraction of child pairs that will need a real distance computation if
/// `dim` is the sweeping axis. Lower is better.
pub fn sweeping_index<const D: usize>(r: &Rect<D>, s: &Rect<D>, w: f64, dim: usize) -> f64 {
    let (r0, r1) = (r.lo()[dim], r.hi()[dim]);
    let (s0, s1) = (s.lo()[dim], s.hi()[dim]);
    one_term(r0, r1, s0, s1, w) + one_term(s0, s1, r0, r1, w)
}

/// The probability that two independent uniform points — one on segment
/// `[a0, a1]`, one on `[b0, b1]` — lie within `d` of each other along the
/// axis. Degenerate (zero-length) segments are treated as point masses.
///
/// This is the per-axis building block for separable pair-selectivity
/// models (e.g. the histogram `eDmax` estimator in `amdj-core`).
pub fn axis_within_probability(a0: f64, a1: f64, b0: f64, b1: f64, d: f64) -> f64 {
    debug_assert!(a1 >= a0 && b1 >= b0 && d >= 0.0);
    let (la, lb) = (a1 - a0, b1 - b0);
    if la == 0.0 && lb == 0.0 {
        return if (a0 - b0).abs() <= d { 1.0 } else { 0.0 };
    }
    if la == 0.0 {
        // Point vs segment: the fraction of [b0, b1] within d of a0.
        let lo = (a0 - d).max(b0);
        let hi = (a0 + d).min(b1);
        return ((hi - lo).max(0.0)) / lb;
    }
    if lb == 0.0 {
        return axis_within_probability(b0, b0, a0, a1, d);
    }
    // |u − v| ≤ d  ⇔  v ∈ [u − d, u + d]: a window of length 2d whose
    // start sweeps [a0 − d, a1 − d].
    overlap_integral(a0 - d, a1 - d, b0, b1, 2.0 * d) / (la * lb)
}

/// Chooses the sweeping axis: the dimension with the minimum sweeping index
/// (§3.2). `w` is the current pruning cutoff (`qDmax`, or `eDmax` during the
/// aggressive stage). A non-finite `w` (no cutoff known yet) falls back to
/// the dimension with the larger combined spread, which is the limit
/// behaviour of the index.
pub fn choose_sweep_axis<const D: usize>(r: &Rect<D>, s: &Rect<D>, w: f64) -> usize {
    if D == 1 {
        return 0;
    }
    if !w.is_finite() {
        // With an unbounded window every pair must be examined; prefer the
        // widest spread so a finite cutoff later prunes best.
        let mut best = 0;
        let mut best_spread = f64::MIN;
        for d in 0..D {
            let spread = r.union(s).side(d);
            if spread > best_spread {
                best_spread = spread;
                best = d;
            }
        }
        return best;
    }
    let mut best = 0;
    let mut best_idx = f64::INFINITY;
    for d in 0..D {
        let idx = sweeping_index(r, s, w, d);
        if idx < best_idx {
            best_idx = idx;
            best = d;
        }
    }
    best
}

/// Chooses the sweeping direction (§3.3).
///
/// Project both nodes on the sweeping axis; of the three consecutive
/// intervals the four endpoints induce, compare the leftmost and rightmost:
/// if the left interval is shorter, sweep forward, else backward. This makes
/// close pairs meet early, driving `qDmax` down fast.
pub fn choose_sweep_direction<const D: usize>(
    r: &Rect<D>,
    s: &Rect<D>,
    dim: usize,
) -> SweepDirection {
    let mut ends = [r.lo()[dim], r.hi()[dim], s.lo()[dim], s.hi()[dim]];
    ends.sort_unstable_by(f64::total_cmp);
    let left = ends[1] - ends[0];
    let right = ends[3] - ends[2];
    if left < right {
        SweepDirection::Forward
    } else {
        SweepDirection::Backward
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric (midpoint-rule) reference for the overlap integral.
    fn numeric_overlap_integral(r0: f64, r1: f64, s0: f64, s1: f64, w: f64) -> f64 {
        let n = 200_000;
        let step = (r1 - r0) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let u = r0 + (i as f64 + 0.5) * step;
            let f = ((u + w).min(s1) - u.max(s0)).max(0.0);
            acc += f * step;
        }
        acc
    }

    #[test]
    fn integral_matches_numeric_disjoint() {
        // r = [0, 4], s = [7, 10] (alpha = 3), varying window lengths.
        for &w in &[0.0, 1.0, 2.5, 3.0, 3.5, 5.0, 6.5, 7.0, 8.0, 12.0, 20.0] {
            let exact = overlap_integral(0.0, 4.0, 7.0, 10.0, w);
            let numeric = numeric_overlap_integral(0.0, 4.0, 7.0, 10.0, w);
            assert!(
                (exact - numeric).abs() < 1e-4,
                "w={w}: exact={exact} numeric={numeric}"
            );
        }
    }

    #[test]
    fn integral_matches_numeric_overlapping() {
        // Overlapping projections r = [0, 6], s = [4, 9].
        for &w in &[0.0, 0.5, 1.0, 2.0, 4.0, 5.0, 9.0, 15.0] {
            let exact = overlap_integral(0.0, 6.0, 4.0, 9.0, w);
            let numeric = numeric_overlap_integral(0.0, 6.0, 4.0, 9.0, w);
            assert!(
                (exact - numeric).abs() < 1e-4,
                "w={w}: exact={exact} numeric={numeric}"
            );
        }
    }

    #[test]
    fn integral_matches_numeric_contained() {
        // s contained in r: r = [0, 10], s = [3, 5].
        for &w in &[0.0, 0.5, 1.0, 2.0, 3.0, 6.0, 11.0] {
            let exact = overlap_integral(0.0, 10.0, 3.0, 5.0, w);
            let numeric = numeric_overlap_integral(0.0, 10.0, 3.0, 5.0, w);
            assert!(
                (exact - numeric).abs() < 1e-4,
                "w={w}: exact={exact} numeric={numeric}"
            );
        }
    }

    #[test]
    fn integral_matches_numeric_s_before_r() {
        // s entirely before r — the window never reaches s.
        for &w in &[0.5, 2.0, 5.0] {
            let exact = overlap_integral(10.0, 14.0, 0.0, 3.0, w);
            let numeric = numeric_overlap_integral(10.0, 14.0, 0.0, 3.0, w);
            assert!((exact - numeric).abs() < 1e-4);
        }
    }

    #[test]
    fn table1_case_zero_window() {
        // qDmax <= alpha: term is 0.
        let slen = 3.0;
        let term = overlap_integral(0.0, 4.0, 7.0, 10.0, 2.0) / slen;
        assert_eq!(term, 0.0);
    }

    #[test]
    fn table1_case_small_window() {
        // alpha < qDmax <= |r|+alpha, qDmax < |s|+alpha:
        // term = (qD - alpha)^2 / (2|s|).
        let (rlen, slen, alpha) = (4.0, 3.0, 3.0);
        let w = 5.0; // alpha < 5 <= 7, 5 < 6
        let term = overlap_integral(0.0, rlen, rlen + alpha, rlen + alpha + slen, w) / slen;
        let expected = (w - alpha) * (w - alpha) / (2.0 * slen);
        assert!(
            (term - expected).abs() < 1e-10,
            "term={term} expected={expected}"
        );
        // NOTE: Table 1 as printed subtracts |s|/2 in this sub-case, which
        // disagrees with direct integration (and with the numeric reference
        // tested above); we follow the exact integral.
    }

    #[test]
    fn table1_case_window_covers_s() {
        // The right diagram of Figure 6: |s|+alpha <= qDmax <= |r|+alpha.
        // Exact: ((w-a)^2 - (w-a-|s|)^2) / (2|s|) — the trapezoid the figure
        // shades.
        let (rlen, slen, alpha) = (8.0, 2.0, 1.0);
        let w = 5.0; // |s|+alpha = 3 <= 5 <= 9 = |r|+alpha
        let term = overlap_integral(0.0, rlen, rlen + alpha, rlen + alpha + slen, w) / slen;
        let expected = ((w - alpha).powi(2) - (w - alpha - slen).powi(2)) / (2.0 * slen);
        assert!(
            (term - expected).abs() < 1e-10,
            "term={term} expected={expected}"
        );
    }

    #[test]
    fn wider_spread_gives_smaller_index() {
        // Child nodes spread widely along y (Figure 5): y is the better axis.
        let r: Rect<2> = Rect::new([0.0, 0.0], [2.0, 40.0]);
        let s: Rect<2> = Rect::new([1.0, 10.0], [3.0, 60.0]);
        let w = 3.0;
        let ix = sweeping_index(&r, &s, w, 0);
        let iy = sweeping_index(&r, &s, w, 1);
        assert!(iy < ix, "ix={ix} iy={iy}");
        assert_eq!(choose_sweep_axis(&r, &s, w), 1);
    }

    #[test]
    fn axis_choice_unbounded_window() {
        let r: Rect<2> = Rect::new([0.0, 0.0], [10.0, 1.0]);
        let s: Rect<2> = Rect::new([5.0, 0.5], [20.0, 2.0]);
        assert_eq!(choose_sweep_axis(&r, &s, f64::INFINITY), 0);
    }

    #[test]
    fn direction_rule() {
        // r's left overhang shorter than s's right overhang -> Forward.
        let r: Rect<2> = Rect::new([0.0, 0.0], [4.0, 1.0]);
        let s: Rect<2> = Rect::new([1.0, 0.0], [10.0, 1.0]);
        assert_eq!(choose_sweep_direction(&r, &s, 0), SweepDirection::Forward);
        // Mirror image -> Backward.
        let r2: Rect<2> = Rect::new([6.0, 0.0], [10.0, 1.0]);
        let s2: Rect<2> = Rect::new([0.0, 0.0], [9.0, 1.0]);
        assert_eq!(
            choose_sweep_direction(&r2, &s2, 0),
            SweepDirection::Backward
        );
    }

    #[test]
    fn direction_rule_symmetric_is_backward() {
        // Equal intervals: left not shorter than right -> Backward (per the
        // paper's "otherwise" branch).
        let r: Rect<2> = Rect::new([0.0, 0.0], [4.0, 1.0]);
        let s: Rect<2> = Rect::new([0.0, 0.0], [4.0, 1.0]);
        assert_eq!(choose_sweep_direction(&r, &s, 0), SweepDirection::Backward);
    }

    #[test]
    fn index_is_symmetric_in_r_and_s() {
        let r: Rect<2> = Rect::new([0.0, 0.0], [5.0, 3.0]);
        let s: Rect<2> = Rect::new([7.0, 1.0], [9.0, 8.0]);
        for d in 0..2 {
            let a = sweeping_index(&r, &s, 2.5, d);
            let b = sweeping_index(&s, &r, 2.5, d);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_rects_do_not_panic() {
        let p: Rect<2> = Rect::new([1.0, 1.0], [1.0, 1.0]);
        let q: Rect<2> = Rect::new([2.0, 1.0], [2.0, 1.0]);
        let idx = sweeping_index(&p, &q, 3.0, 0);
        assert!(idx.is_finite());
        // Window covers the other point from the single anchor position.
        assert!(idx > 0.0);
        let far: Rect<2> = Rect::new([100.0, 1.0], [100.0, 1.0]);
        assert_eq!(sweeping_index(&p, &far, 3.0, 0), 0.0);
        let _ = choose_sweep_axis(&p, &q, 3.0);
        let _ = choose_sweep_direction(&p, &q, 0);
    }

    #[test]
    fn axis_within_probability_cases() {
        // Identical unit segments: P(|u−v| ≤ d) = 2d − d² for d ≤ 1.
        for d in [0.1, 0.3, 0.7] {
            let p = axis_within_probability(0.0, 1.0, 0.0, 1.0, d);
            assert!((p - (2.0 * d - d * d)).abs() < 1e-9, "d={d}: {p}");
        }
        assert_eq!(axis_within_probability(0.0, 1.0, 0.0, 1.0, 1.0), 1.0);
        // Disjoint segments with gap 1: zero until d reaches the gap.
        assert_eq!(axis_within_probability(0.0, 1.0, 2.0, 3.0, 0.5), 0.0);
        assert!(axis_within_probability(0.0, 1.0, 2.0, 3.0, 3.0) == 1.0);
        // Point masses.
        assert_eq!(axis_within_probability(1.0, 1.0, 4.0, 4.0, 2.9), 0.0);
        assert_eq!(axis_within_probability(1.0, 1.0, 4.0, 4.0, 3.0), 1.0);
        // Point vs segment.
        let p = axis_within_probability(0.5, 0.5, 0.0, 1.0, 0.25);
        assert!((p - 0.5).abs() < 1e-12);
        // Symmetry.
        let a = axis_within_probability(0.0, 2.0, 1.0, 5.0, 0.8);
        let b = axis_within_probability(1.0, 5.0, 0.0, 2.0, 0.8);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn axis_within_probability_monotone() {
        let mut prev = -1.0;
        for i in 0..40 {
            let d = i as f64 * 0.1;
            let p = axis_within_probability(0.0, 2.0, 1.5, 4.0, d);
            assert!(p >= prev && (0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn monotone_in_window_length() {
        let r: Rect<2> = Rect::new([0.0, 0.0], [5.0, 5.0]);
        let s: Rect<2> = Rect::new([6.0, 0.0], [11.0, 5.0]);
        let mut prev = -1.0;
        for &w in &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let idx = sweeping_index(&r, &s, w, 0);
            assert!(idx >= prev, "index must grow with the window");
            prev = idx;
        }
    }
}
