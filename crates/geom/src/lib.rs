//! Geometry substrate for the AMDJ spatial distance-join library.
//!
//! This crate provides the low-level geometric machinery that the R*-tree
//! ([`amdj_rtree`](https://docs.rs/amdj-rtree)) and the distance-join
//! algorithms ([`amdj_core`](https://docs.rs/amdj-core)) are built on:
//!
//! * [`Point`] — a `D`-dimensional point,
//! * [`Rect`] — a `D`-dimensional axis-aligned rectangle (an MBR), with the
//!   full set of distance metrics used by distance joins (`min_dist`,
//!   `max_dist`, per-axis separation),
//! * [`TotalF64`] — a totally ordered, finite `f64` wrapper used as a
//!   priority-queue key,
//! * [`sweep_index`] — the closed-form *sweeping index* of the paper's
//!   Equation (2) / Table 1, used to pick the plane-sweep axis, plus the
//!   sweep-direction rule of §3.3.
//!
//! Everything is const-generic over the dimension `D`; the paper (and the
//! experiment harness) use `D = 2`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod point;
mod rect;
pub mod sweep_index;
mod total;

pub use point::Point;
pub use rect::Rect;
pub use sweep_index::{choose_sweep_axis, choose_sweep_direction, sweeping_index, SweepDirection};
pub use total::TotalF64;
