use std::cmp::Ordering;
use std::fmt;

/// A finite `f64` with a total order, usable as a key in heaps and B-trees.
///
/// Distances produced by the join algorithms are always finite and
/// non-negative; `TotalF64` encodes that invariant once so that priority
/// queues do not need to reason about NaN. Construction panics (in debug and
/// release) on NaN, keeping the ordering total by construction.
#[derive(Clone, Copy)]
pub struct TotalF64(f64);

impl TotalF64 {
    /// Wraps `v`, panicking if it is NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "TotalF64 cannot hold NaN");
        TotalF64(v)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for TotalF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord` below: equality under the total order,
        // so -0.0 and +0.0 are distinct (total_cmp orders them).
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is excluded at construction, so total_cmp agrees with the
        // IEEE order on every value this can hold (and never panics).
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64::new(v)
    }
}

impl From<TotalF64> for f64 {
    #[inline]
    fn from(v: TotalF64) -> Self {
        v.0
    }
}

impl fmt::Debug for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        let a = TotalF64::new(1.0);
        let b = TotalF64::new(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn handles_infinities() {
        let inf = TotalF64::new(f64::INFINITY);
        let x = TotalF64::new(1e300);
        assert!(x < inf);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = TotalF64::new(f64::NAN);
    }

    #[test]
    fn roundtrips() {
        let v = TotalF64::from(3.5);
        assert_eq!(f64::from(v), 3.5);
        assert_eq!(v.get(), 3.5);
    }

    #[test]
    fn sorts_in_heap() {
        use std::collections::BinaryHeap;
        let mut h: BinaryHeap<TotalF64> =
            [3.0, 1.0, 2.0].iter().map(|&v| TotalF64::new(v)).collect();
        assert_eq!(h.pop().map(f64::from), Some(3.0));
        assert_eq!(h.pop().map(f64::from), Some(2.0));
        assert_eq!(h.pop().map(f64::from), Some(1.0));
    }
}
