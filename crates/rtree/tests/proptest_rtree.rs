//! Property-based validation of the R*-tree: any sequence of inserts and
//! deletes must keep every structural invariant, and queries must agree
//! with a linear scan.

use amdj_geom::{Point, Rect};
use amdj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (0.0..100.0f64, 0.0..100.0f64, 0.0..3.0f64, 0.0..3.0f64)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn insert_preserves_invariants_and_queries(rects in prop::collection::vec(arb_rect(), 1..300)) {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for (i, &mbr) in rects.iter().enumerate() {
            t.insert(mbr, i as u64);
        }
        t.validate().expect("valid after inserts");
        prop_assert_eq!(t.len() as usize, rects.len());
        // Range query agrees with a scan.
        let window = Rect::new([20.0, 20.0], [60.0, 70.0]);
        let mut got: Vec<u64> = t.range_query(&window).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let want: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_insert_built_contents(rects in prop::collection::vec(arb_rect(), 1..250)) {
        let items: Vec<(Rect<2>, u64)> =
            rects.iter().enumerate().map(|(i, &r)| (r, i as u64)).collect();
        let bulk = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
        bulk.validate().expect("valid bulk tree");
        let mut incr: RTree<2> = RTree::new(RTreeParams::for_tests());
        for &(r, id) in &items {
            incr.insert(r, id);
        }
        let everything = Rect::new([-1.0, -1.0], [200.0, 200.0]);
        let mut a: Vec<u64> = bulk.range_query(&everything).into_iter().map(|(id, _)| id).collect();
        let mut b: Vec<u64> = incr.range_query(&everything).into_iter().map(|(id, _)| id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn delete_inverse_of_insert(
        rects in prop::collection::vec(arb_rect(), 2..200),
        delete_mask in prop::collection::vec(any::<bool>(), 2..200),
    ) {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for (i, &mbr) in rects.iter().enumerate() {
            t.insert(mbr, i as u64);
        }
        let mut live: Vec<(Rect<2>, u64)> = Vec::new();
        for (i, &mbr) in rects.iter().enumerate() {
            if *delete_mask.get(i).unwrap_or(&false) {
                prop_assert!(t.delete(&mbr, i as u64), "delete of live id {i}");
            } else {
                live.push((mbr, i as u64));
            }
        }
        t.validate().expect("valid after deletes");
        prop_assert_eq!(t.len() as usize, live.len());
        let everything = Rect::new([-1.0, -1.0], [200.0, 200.0]);
        let mut got: Vec<u64> = t.range_query(&everything).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = live.iter().map(|&(_, id)| id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_agrees_with_scan(
        rects in prop::collection::vec(arb_rect(), 1..200),
        qx in 0.0..100.0f64,
        qy in 0.0..100.0f64,
        k in 1usize..20,
    ) {
        let items: Vec<(Rect<2>, u64)> =
            rects.iter().enumerate().map(|(i, &r)| (r, i as u64)).collect();
        let t = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
        let q = Point::new([qx, qy]);
        let got = t.nearest_neighbors(&q, k);
        let mut want: Vec<f64> = items
            .iter()
            .map(|(r, _)| r.min_dist(&Rect::from_point(q)))
            .collect();
        want.sort_unstable_by(f64::total_cmp);
        prop_assert_eq!(got.len(), k.min(items.len()));
        for (n, w) in got.iter().zip(want.iter()) {
            prop_assert!((n.dist - w).abs() < 1e-9);
        }
    }
}
