use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amdj_storage::{CostModel, PageId, ShardedLru, VirtualDisk};

use crate::{AccessStats, Node};

thread_local! {
    static TL_BUFFER_HITS: Cell<u64> = const { Cell::new(0) };
    static TL_BUFFER_MISSES: Cell<u64> = const { Cell::new(0) };
    static TL_BUFFER_EVICTIONS: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative buffer `(hits, misses)` observed by the *calling thread*,
/// across every [`BufferManager`] it has ever fetched through.
///
/// The sharded buffer's own hit/miss counters are process-wide atomics;
/// they cannot say *which* worker enjoyed the hits. These monotone
/// thread-local counters can: a caller attributes a span of work to
/// itself by reading the counters before and after and differencing —
/// which is how the join engine builds its per-worker
/// cache-residency aggregates. Never reset; always cheap (no atomics).
pub fn thread_buffer_counters() -> (u64, u64) {
    (TL_BUFFER_HITS.get(), TL_BUFFER_MISSES.get())
}

/// Cumulative buffer `(hits, misses, evictions)` observed (or, for
/// evictions, *caused*) by the calling thread. The eviction count
/// attributes buffer pressure the way the hit/miss counters attribute
/// residency: every page this thread's inserts pushed out of a buffer,
/// across every [`BufferManager`]. Never reset; always cheap.
pub fn thread_buffer_stats() -> (u64, u64, u64) {
    (
        TL_BUFFER_HITS.get(),
        TL_BUFFER_MISSES.get(),
        TL_BUFFER_EVICTIONS.get(),
    )
}

/// The shared-read page-access layer of an [`crate::RTree`]: a virtual
/// disk plus a sharded LRU node buffer behind interior mutability.
///
/// [`fetch`](BufferManager::fetch) takes `&self`, so any number of
/// threads can traverse a tree concurrently: the buffer synchronizes
/// internally (one mutex per shard, chosen by page-id hash) and the
/// node-access counters are `AtomicU64`s. Structural mutation —
/// [`alloc`](BufferManager::alloc), [`write`](BufferManager::write),
/// [`free`](BufferManager::free), restore — still takes `&mut self`;
/// that exclusivity is exactly what makes the shared-read path sound
/// without any unsafe code.
///
/// Decoded nodes are cached as `Arc<Node<D>>`, so a buffer hit is one
/// lock acquisition and one refcount bump; no page is ever decoded twice
/// while it stays resident.
#[derive(Debug)]
pub struct BufferManager<const D: usize> {
    disk: VirtualDisk,
    cache: ShardedLru<PageId, Arc<Node<D>>>,
    page_size: usize,
    requests: AtomicU64,
    disk_reads: AtomicU64,
}

impl<const D: usize> BufferManager<D> {
    /// Creates a manager over a fresh disk charging `cost`, with a node
    /// buffer of `buffer_bytes` (zero disables buffering).
    pub fn new(cost: CostModel, buffer_bytes: usize) -> Self {
        let page_size = cost.page_size;
        let shards = ShardedLru::<PageId, Arc<Node<D>>>::shards_for(buffer_bytes, page_size);
        BufferManager {
            disk: VirtualDisk::new(cost),
            cache: ShardedLru::new(buffer_bytes, shards),
            page_size,
            requests: AtomicU64::new(0),
            disk_reads: AtomicU64::new(0),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Fetches a node through the buffer, charging the disk's cost model
    /// on a miss.
    pub fn fetch(&self, pid: PageId) -> Arc<Node<D>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self.cache.get(&pid) {
            TL_BUFFER_HITS.set(TL_BUFFER_HITS.get() + 1);
            return hit;
        }
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        TL_BUFFER_MISSES.set(TL_BUFFER_MISSES.get() + 1);
        let node = Arc::new(Node::decode(self.disk.read(pid)));
        let evicted = self.cache.insert(pid, Arc::clone(&node), self.page_size);
        TL_BUFFER_EVICTIONS.set(TL_BUFFER_EVICTIONS.get() + evicted);
        node
    }

    /// Allocates a page for a new node.
    pub fn alloc(&mut self) -> PageId {
        self.disk.alloc()
    }

    /// Encodes and writes `node` to `pid`, keeping the buffer coherent.
    ///
    /// Panics if the encoded node exceeds the page size.
    pub fn write(&mut self, pid: PageId, node: &Node<D>) {
        let mut buf = Vec::with_capacity(Node::<D>::encoded_len(node.entries.len()));
        node.encode(&mut buf);
        assert!(
            buf.len() <= self.page_size,
            "node with {} entries exceeds page size",
            node.entries.len()
        );
        self.disk.write(pid, &buf);
        let evicted = self
            .cache
            .insert(pid, Arc::new(node.clone()), self.page_size);
        TL_BUFFER_EVICTIONS.set(TL_BUFFER_EVICTIONS.get() + evicted);
    }

    /// Frees `pid` on the disk. A buffered copy may linger until LRU
    /// eviction — harmless, since the tree never references a freed page
    /// again.
    pub fn free(&mut self, pid: PageId) {
        self.disk.free(pid);
    }

    /// Node access counters since the last
    /// [`reset_stats`](BufferManager::reset_stats).
    pub fn access_stats(&self) -> AccessStats {
        AccessStats {
            requests: self.requests.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
        }
    }

    /// Buffer hits/misses as counted by the cache itself.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Buffer misses as counted by the cache itself.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Pages evicted from the node buffer to make room — the eviction-
    /// pressure signal serve mode watches for cross-query thrashing.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Clears node-access and disk statistics (lock-free).
    pub fn reset_stats(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.disk_reads.store(0, Ordering::Relaxed);
        self.cache.reset_stats();
        self.disk.reset_stats();
    }

    /// Empties the node buffer (statistics are kept).
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// The underlying disk (read-only: stats, persistence export).
    pub fn disk(&self) -> &VirtualDisk {
        &self.disk
    }

    /// The underlying disk, mutably (persistence import).
    pub fn disk_mut(&mut self) -> &mut VirtualDisk {
        &mut self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(buffer_bytes: usize) -> BufferManager<2> {
        let cost = CostModel {
            page_size: 256,
            ..CostModel::free()
        };
        BufferManager::new(cost, buffer_bytes)
    }

    #[test]
    fn fetch_counts_through_shared_ref() {
        let mut m = manager(4 * 256);
        let pid = m.alloc();
        m.write(
            pid,
            &Node {
                level: 0,
                entries: vec![],
            },
        );
        m.reset_stats();
        m.clear();
        let m = &m; // all reads below go through &BufferManager
        let _ = m.fetch(pid); // miss
        let _ = m.fetch(pid); // hit
        let s = m.access_stats();
        assert_eq!((s.requests, s.disk_reads), (2, 1));
        assert_eq!((m.cache_hits(), m.cache_misses()), (1, 1));
    }

    #[test]
    fn thread_counters_track_the_calling_thread_only() {
        let mut m = manager(4 * 256);
        let pid = m.alloc();
        m.write(
            pid,
            &Node {
                level: 0,
                entries: vec![],
            },
        );
        m.clear();
        let (h0, m0) = thread_buffer_counters();
        let _ = m.fetch(pid); // miss
        let _ = m.fetch(pid); // hit
        let _ = m.fetch(pid); // hit
        let (h1, m1) = thread_buffer_counters();
        assert_eq!((h1 - h0, m1 - m0), (2, 1));
        // A fetch on another thread moves that thread's counters, not ours.
        std::thread::scope(|scope| {
            let m = &m;
            scope.spawn(move || {
                let (h, ms) = thread_buffer_counters();
                assert_eq!((h, ms), (0, 0), "fresh thread starts at zero");
                let _ = m.fetch(pid);
                assert_eq!(thread_buffer_counters(), (h + 1, ms));
            });
        });
        assert_eq!(thread_buffer_counters(), (h1, m1));
    }

    #[test]
    fn concurrent_fetches_count_every_request() {
        let mut m = manager(4 * 256);
        let pids: Vec<PageId> = (0..8)
            .map(|_| {
                let pid = m.alloc();
                m.write(
                    pid,
                    &Node {
                        level: 0,
                        entries: vec![],
                    },
                );
                pid
            })
            .collect();
        m.reset_stats();
        let threads = 4;
        let per_thread = 250;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let m = &m;
                let pids = &pids;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let node = m.fetch(pids[(t + i) % pids.len()]);
                        assert_eq!(node.level, 0);
                    }
                });
            }
        });
        let s = m.access_stats();
        assert_eq!(s.requests, (threads * per_thread) as u64);
        assert!(s.disk_reads >= 1, "at least the cold pages missed");
        assert_eq!(s.requests, m.cache_hits() + m.cache_misses());
    }
}
