//! Structural invariant checking, used heavily by the test suites.

use amdj_storage::PageId;

use crate::RTree;

/// A violated R*-tree invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A child's level is not exactly one less than its parent's.
    LevelMismatch {
        /// Page of the offending child.
        page: u64,
        /// Expected level.
        expected: u32,
        /// Level found.
        found: u32,
    },
    /// A parent entry's MBR does not tightly bound its child node.
    LooseMbr {
        /// Page of the child whose MBR is stale.
        page: u64,
    },
    /// A non-root node's entry count is out of `[min_fill, capacity]`.
    BadFill {
        /// Offending page.
        page: u64,
        /// Its entry count.
        count: usize,
    },
    /// The number of reachable objects differs from `len()`.
    WrongObjectCount {
        /// Objects reachable from the root.
        found: u64,
        /// The tree's recorded length.
        expected: u64,
    },
    /// The root is recorded at the wrong height.
    WrongHeight {
        /// Root node's level + 1.
        found: u32,
        /// The tree's recorded height.
        expected: u32,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidationError {}

impl<const D: usize> RTree<D> {
    /// Checks every structural invariant: consecutive levels, tight parent
    /// MBRs, fill factors, object count, and height.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let Some(root) = self.root_page() else {
            return if self.is_empty() && self.height() == 0 {
                Ok(())
            } else {
                Err(ValidationError::WrongObjectCount {
                    found: 0,
                    expected: self.len(),
                })
            };
        };
        let cap = self.params().capacity::<D>();
        let min_fill = self.params().min_fill::<D>();
        let root_node = self.fetch(root);
        if root_node.level + 1 != self.height() {
            return Err(ValidationError::WrongHeight {
                found: root_node.level + 1,
                expected: self.height(),
            });
        }
        let mut objects = 0u64;
        // (page, expected level, required tight mbr or None for root)
        let mut stack = vec![(root, root_node.level, None)];
        while let Some((pid, expected_level, required_mbr)) = stack.pop() {
            let node = self.fetch(pid);
            if node.level != expected_level {
                return Err(ValidationError::LevelMismatch {
                    page: pid.0,
                    expected: expected_level,
                    found: node.level,
                });
            }
            let is_root = pid == root;
            if node.entries.len() > cap || (!is_root && node.entries.len() < min_fill) {
                return Err(ValidationError::BadFill {
                    page: pid.0,
                    count: node.entries.len(),
                });
            }
            if let Some(req) = required_mbr {
                if node.mbr() != req {
                    return Err(ValidationError::LooseMbr { page: pid.0 });
                }
            }
            if node.is_leaf() {
                objects += node.entries.len() as u64;
            } else {
                for e in &node.entries {
                    stack.push((PageId(e.child), node.level - 1, Some(e.mbr)));
                }
            }
        }
        if objects != self.len() {
            return Err(ValidationError::WrongObjectCount {
                found: objects,
                expected: self.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Entry, Node, RTreeParams};
    use amdj_geom::{Point, Rect};

    #[test]
    fn empty_tree_is_valid() {
        let t: RTree<2> = RTree::new(RTreeParams::for_tests());
        t.validate().expect("empty is valid");
    }

    #[test]
    fn detects_stale_parent_mbr() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for i in 0..200u64 {
            t.insert(
                Rect::from_point(Point::new([(i % 14) as f64, (i / 14) as f64])),
                i,
            );
        }
        t.validate().expect("valid before corruption");
        // Corrupt: widen one child's content beyond its parent entry.
        let root = t.root_page().unwrap();
        let root_node = (*t.fetch(root)).clone();
        let victim = PageId(root_node.entries[0].child);
        let mut child = (*t.fetch(victim)).clone();
        child.entries.push(Entry {
            mbr: Rect::from_point(Point::new([999.0, 999.0])),
            child: 12345,
        });
        t.write_node(victim, &child);
        let err = t.validate().expect_err("corruption detected");
        assert!(
            matches!(
                err,
                ValidationError::LooseMbr { .. } | ValidationError::WrongObjectCount { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn detects_wrong_object_count() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        t.insert(Rect::from_point(Point::new([0.0, 0.0])), 0);
        t.len += 5;
        assert!(matches!(
            t.validate().expect_err("count mismatch"),
            ValidationError::WrongObjectCount {
                found: 1,
                expected: 6
            }
        ));
    }

    #[test]
    fn detects_bad_fill() {
        // Build a two-level tree whose leaf is underfull.
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let leaf_pid = t.alloc_page();
        let leaf = Node {
            level: 0,
            entries: vec![Entry {
                mbr: Rect::from_point(Point::new([0.0, 0.0])),
                child: 0,
            }],
        };
        t.write_node(leaf_pid, &leaf);
        let root_pid = t.alloc_page();
        let root = Node {
            level: 1,
            entries: vec![Entry {
                mbr: leaf.mbr(),
                child: leaf_pid.0,
            }],
        };
        t.write_node(root_pid, &root);
        t.root = Some(root_pid);
        t.height = 2;
        t.len = 1;
        assert!(matches!(
            t.validate().expect_err("underfull leaf"),
            ValidationError::BadFill { .. }
        ));
    }
}
