//! A from-scratch R*-tree over a paged [`amdj_storage::VirtualDisk`].
//!
//! This is the index substrate of the AMDJ reproduction: the paper (§5.1)
//! builds R*-trees with 4 KB pages over the TIGER/Line data sets and gives
//! every join algorithm a byte-budgeted node buffer. Correspondingly:
//!
//! * nodes are encoded to fixed-size pages ([`Node`] ⇄ page bytes),
//! * all node access goes through an LRU buffer, with *node requests* and
//!   *disk reads* counted separately — exactly the two quantities of the
//!   paper's Table 2 (with and without buffer),
//! * trees can be built by STR bulk loading ([`RTree::bulk_load`]) or by
//!   R*-tree insertion ([`RTree::insert`]: ChooseSubtree, forced reinsert,
//!   R* split),
//! * classic queries (range, within-distance, best-first nearest
//!   neighbour) are provided so the crate stands alone as a spatial index.
//!
//! The distance-join algorithms themselves live in `amdj-core`; they drive
//! the tree through [`RTree::fetch`] and the [`Entry`] type.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod buffer;
mod bulk;
mod delete;
mod insert;
mod node;
mod params;
mod persist;
mod query;
mod tree;
mod validate;

pub use buffer::{thread_buffer_counters, thread_buffer_stats, BufferManager};
pub use node::{Entry, Node};
pub use params::RTreeParams;
pub use query::Neighbor;
pub use tree::{AccessStats, RTree};
pub use validate::ValidationError;
