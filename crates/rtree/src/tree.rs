use std::sync::Arc;

use amdj_geom::Rect;
use amdj_storage::{DiskStats, PageId};

use crate::{BufferManager, Node, RTreeParams};

/// Node access counters.
///
/// `requests` counts every logical node access; `disk_reads` counts the
/// subset that missed the LRU buffer and hit the disk. The paper's Table 2
/// reports `disk_reads` (and, in parentheses, the no-buffer figure — which
/// equals `requests`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Logical node accesses.
    pub requests: u64,
    /// Accesses that read the page from disk (buffer misses).
    pub disk_reads: u64,
}

/// An R*-tree over object MBRs, stored on a paged virtual disk and
/// accessed through a sharded, byte-budgeted LRU buffer.
///
/// Leaf entries carry `(object MBR, object id)`; internal entries carry
/// `(subtree MBR, child page id)`. Build one with
/// [`bulk_load`](RTree::bulk_load) (STR packing, what the experiments use)
/// or incrementally with [`insert`](RTree::insert) (full R* insertion).
///
/// Every query path takes `&self` — the page buffer synchronizes
/// internally (see [`BufferManager`]) — so a tree can be shared across
/// threads (`RTree<D>: Send + Sync`) and any number of joins or queries
/// can read it concurrently. Only structural mutation (insert, delete,
/// load) needs `&mut self`.
///
/// ```
/// use amdj_geom::{Point, Rect};
/// use amdj_rtree::{RTree, RTreeParams};
///
/// let items: Vec<(Rect<2>, u64)> = (0..1000)
///     .map(|i| (Rect::from_point(Point::new([(i % 32) as f64, (i / 32) as f64])), i))
///     .collect();
/// let mut tree = RTree::bulk_load(RTreeParams::paper_defaults(), items);
///
/// let hits = tree.range_query(&Rect::new([3.0, 3.0], [5.0, 5.0]));
/// assert_eq!(hits.len(), 9);
///
/// let nn = tree.nearest_neighbors(&Point::new([10.2, 10.3]), 1);
/// assert_eq!(nn[0].mbr, Rect::from_point(Point::new([10.0, 10.0])));
///
/// tree.insert(Rect::from_point(Point::new([100.0, 100.0])), 9999);
/// assert!(tree.delete(&Rect::from_point(Point::new([100.0, 100.0])), 9999));
/// tree.validate().expect("invariants hold");
/// ```
pub struct RTree<const D: usize> {
    params: RTreeParams,
    pub(crate) pages: BufferManager<D>,
    pub(crate) root: Option<PageId>,
    pub(crate) height: u32,
    pub(crate) len: u64,
}

impl<const D: usize> RTree<D> {
    /// Creates an empty tree.
    pub fn new(params: RTreeParams) -> Self {
        let cost = amdj_storage::CostModel {
            page_size: params.page_size,
            ..params.cost
        };
        let pages = BufferManager::new(cost, params.buffer_bytes);
        RTree {
            params,
            pages,
            root: None,
            height: 0,
            len: 0,
        }
    }

    /// The tree's configuration.
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Number of objects stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree stores no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (0 when empty; a single leaf root is height 1).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id, if any.
    pub fn root_page(&self) -> Option<PageId> {
        self.root
    }

    /// The bounding rectangle of the whole data set, if non-empty.
    pub fn bounds(&self) -> Option<Rect<D>> {
        let root = self.root?;
        Some(self.fetch(root).mbr())
    }

    /// Total pages (≈ nodes) allocated on the tree's disk.
    pub fn page_count(&self) -> usize {
        self.pages.disk().live_pages()
    }

    /// Node access counters since the last [`reset_stats`](RTree::reset_stats).
    pub fn access_stats(&self) -> AccessStats {
        self.pages.access_stats()
    }

    /// Disk-level I/O statistics (reads, writes, modeled seconds).
    pub fn disk_stats(&self) -> DiskStats {
        self.pages.disk().stats()
    }

    /// Node-buffer hits as counted by the shared cache itself
    /// (process-wide, unlike the per-thread
    /// [`thread_buffer_counters`](crate::thread_buffer_counters)).
    pub fn buffer_hits(&self) -> u64 {
        self.pages.cache_hits()
    }

    /// Node-buffer misses as counted by the shared cache itself.
    pub fn buffer_misses(&self) -> u64 {
        self.pages.cache_misses()
    }

    /// Pages evicted from the node buffer to make room — the
    /// eviction-pressure signal serve mode reports per query batch.
    pub fn buffer_evictions(&self) -> u64 {
        self.pages.cache_evictions()
    }

    /// Clears access and disk statistics — typically called after building
    /// an index so measurements cover queries only. Lock-free.
    pub fn reset_stats(&self) {
        self.pages.reset_stats();
    }

    /// Empties the node buffer (statistics are kept). Used by experiments
    /// to cold-start each query.
    pub fn clear_buffer(&self) {
        self.pages.clear();
    }

    /// Fetches a node, through the buffer.
    pub fn fetch(&self, pid: PageId) -> Arc<Node<D>> {
        self.pages.fetch(pid)
    }

    /// Allocates a page for a new node.
    pub(crate) fn alloc_page(&mut self) -> PageId {
        self.pages.alloc()
    }

    /// Encodes and writes `node` to `pid`, keeping the buffer coherent.
    pub(crate) fn write_node(&mut self, pid: PageId, node: &Node<D>) {
        self.pages.write(pid, node);
    }
}

impl<const D: usize> std::fmt::Debug for RTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("len", &self.len)
            .field("height", &self.height)
            .field("pages", &self.pages.disk().live_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: RTree<2> = RTree::new(RTreeParams::for_tests());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
        assert!(t.root_page().is_none());
    }

    #[test]
    fn fetch_counts_requests_and_misses() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let pid = t.alloc_page();
        let node = Node {
            level: 0,
            entries: vec![],
        };
        t.write_node(pid, &node);
        t.reset_stats();
        t.clear_buffer();
        let t = &t; // the whole read path is &self
        let _ = t.fetch(pid); // miss
        let _ = t.fetch(pid); // hit
        let s = t.access_stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn zero_buffer_always_misses() {
        let mut p = RTreeParams::for_tests();
        p.buffer_bytes = 0;
        let mut t: RTree<2> = RTree::new(p);
        let pid = t.alloc_page();
        t.write_node(
            pid,
            &Node {
                level: 0,
                entries: vec![],
            },
        );
        t.reset_stats();
        for _ in 0..5 {
            let _ = t.fetch(pid);
        }
        let s = t.access_stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.disk_reads, 5);
    }

    #[test]
    fn trees_are_send_and_sync() {
        // Compile-time assertion: the whole point of the buffer manager.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RTree<2>>();
        assert_send_sync::<RTree<3>>();
        assert_send_sync::<BufferManager<2>>();
    }
}
