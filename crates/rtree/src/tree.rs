use std::sync::Arc;

use amdj_geom::Rect;
use amdj_storage::{ByteLru, DiskStats, PageId, VirtualDisk};

use crate::{Node, RTreeParams};

/// Node access counters.
///
/// `requests` counts every logical node access; `disk_reads` counts the
/// subset that missed the LRU buffer and hit the disk. The paper's Table 2
/// reports `disk_reads` (and, in parentheses, the no-buffer figure — which
/// equals `requests`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Logical node accesses.
    pub requests: u64,
    /// Accesses that read the page from disk (buffer misses).
    pub disk_reads: u64,
}

/// An R*-tree over object MBRs, stored on a paged virtual disk and
/// accessed through a byte-budgeted LRU buffer.
///
/// Leaf entries carry `(object MBR, object id)`; internal entries carry
/// `(subtree MBR, child page id)`. Build one with
/// [`bulk_load`](RTree::bulk_load) (STR packing, what the experiments use)
/// or incrementally with [`insert`](RTree::insert) (full R* insertion).
///
/// ```
/// use amdj_geom::{Point, Rect};
/// use amdj_rtree::{RTree, RTreeParams};
///
/// let items: Vec<(Rect<2>, u64)> = (0..1000)
///     .map(|i| (Rect::from_point(Point::new([(i % 32) as f64, (i / 32) as f64])), i))
///     .collect();
/// let mut tree = RTree::bulk_load(RTreeParams::paper_defaults(), items);
///
/// let hits = tree.range_query(&Rect::new([3.0, 3.0], [5.0, 5.0]));
/// assert_eq!(hits.len(), 9);
///
/// let nn = tree.nearest_neighbors(&Point::new([10.2, 10.3]), 1);
/// assert_eq!(nn[0].mbr, Rect::from_point(Point::new([10.0, 10.0])));
///
/// tree.insert(Rect::from_point(Point::new([100.0, 100.0])), 9999);
/// assert!(tree.delete(&Rect::from_point(Point::new([100.0, 100.0])), 9999));
/// tree.validate().expect("invariants hold");
/// ```
pub struct RTree<const D: usize> {
    params: RTreeParams,
    pub(crate) disk: VirtualDisk,
    buffer: ByteLru<PageId, Arc<Node<D>>>,
    pub(crate) root: Option<PageId>,
    pub(crate) height: u32,
    pub(crate) len: u64,
    stats: AccessStats,
}

impl<const D: usize> RTree<D> {
    /// Creates an empty tree.
    pub fn new(params: RTreeParams) -> Self {
        let disk = VirtualDisk::new(amdj_storage::CostModel {
            page_size: params.page_size,
            ..params.cost
        });
        let buffer = ByteLru::new(params.buffer_bytes);
        RTree { params, disk, buffer, root: None, height: 0, len: 0, stats: AccessStats::default() }
    }

    /// The tree's configuration.
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Number of objects stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree stores no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (0 when empty; a single leaf root is height 1).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id, if any.
    pub fn root_page(&self) -> Option<PageId> {
        self.root
    }

    /// The bounding rectangle of the whole data set, if non-empty.
    pub fn bounds(&mut self) -> Option<Rect<D>> {
        let root = self.root?;
        Some(self.fetch(root).mbr())
    }

    /// Total pages (≈ nodes) allocated on the tree's disk.
    pub fn page_count(&self) -> usize {
        self.disk.live_pages()
    }

    /// Node access counters since the last [`reset_stats`](RTree::reset_stats).
    pub fn access_stats(&self) -> AccessStats {
        self.stats
    }

    /// Disk-level I/O statistics (reads, writes, modeled seconds).
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Clears access and disk statistics — typically called after building
    /// an index so measurements cover queries only.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
        self.disk.reset_stats();
    }

    /// Empties the node buffer (statistics are kept). Used by experiments
    /// to cold-start each query.
    pub fn clear_buffer(&mut self) {
        self.buffer.clear();
    }

    /// Fetches a node, through the buffer.
    pub fn fetch(&mut self, pid: PageId) -> Arc<Node<D>> {
        self.stats.requests += 1;
        if let Some(hit) = self.buffer.get(&pid) {
            return Arc::clone(hit);
        }
        self.stats.disk_reads += 1;
        let node = Arc::new(Node::decode(self.disk.read(pid)));
        self.buffer.insert(pid, Arc::clone(&node), self.params.page_size);
        node
    }

    /// Allocates a page for a new node.
    pub(crate) fn alloc_page(&mut self) -> PageId {
        self.disk.alloc()
    }

    /// Encodes and writes `node` to `pid`, keeping the buffer coherent.
    pub(crate) fn write_node(&mut self, pid: PageId, node: &Node<D>) {
        let mut buf = Vec::with_capacity(Node::<D>::encoded_len(node.entries.len()));
        node.encode(&mut buf);
        assert!(
            buf.len() <= self.params.page_size,
            "node with {} entries exceeds page size",
            node.entries.len()
        );
        self.disk.write(pid, &buf);
        self.buffer.insert(pid, Arc::new(node.clone()), self.params.page_size);
    }
}

impl<const D: usize> std::fmt::Debug for RTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("len", &self.len)
            .field("height", &self.height)
            .field("pages", &self.disk.live_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
        assert!(t.root_page().is_none());
    }

    #[test]
    fn fetch_counts_requests_and_misses() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let pid = t.alloc_page();
        let node = Node { level: 0, entries: vec![] };
        t.write_node(pid, &node);
        t.reset_stats();
        t.clear_buffer();
        let _ = t.fetch(pid); // miss
        let _ = t.fetch(pid); // hit
        let s = t.access_stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn zero_buffer_always_misses() {
        let mut p = RTreeParams::for_tests();
        p.buffer_bytes = 0;
        let mut t: RTree<2> = RTree::new(p);
        let pid = t.alloc_page();
        t.write_node(pid, &Node { level: 0, entries: vec![] });
        t.reset_stats();
        for _ in 0..5 {
            let _ = t.fetch(pid);
        }
        let s = t.access_stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.disk_reads, 5);
    }
}
