//! R-tree deletion: FindLeaf + CondenseTree (Guttman) with R*-style
//! reinsertion of orphaned entries. Rounds out the index substrate so the
//! library supports full lifecycle workloads, not just bulk-loaded
//! read-only experiments.

use amdj_geom::Rect;
use amdj_storage::PageId;

use crate::{Entry, RTree};

impl<const D: usize> RTree<D> {
    /// Deletes one object identified by `(mbr, oid)`. Returns `false` (and
    /// changes nothing) when no such entry exists. When several identical
    /// entries exist, one of them is removed.
    pub fn delete(&mut self, mbr: &Rect<D>, oid: u64) -> bool {
        let Some(root) = self.root else {
            return false;
        };
        let mut path: Vec<(PageId, usize)> = Vec::new();
        if !self.find_leaf(root, mbr, oid, &mut path) {
            return false;
        }
        self.len -= 1;

        // Remove from the leaf, then condense upward.
        let (leaf_pid, entry_idx) = path.pop().expect("find_leaf pushes the leaf");
        let mut current = (*self.fetch(leaf_pid)).clone();
        current.entries.remove(entry_idx);
        let mut current_pid = leaf_pid;
        let min_fill = self.params().min_fill::<D>();
        let mut orphans: Vec<(Entry<D>, u32)> = Vec::new();

        loop {
            match path.pop() {
                None => {
                    // At the root.
                    if current.entries.is_empty() {
                        self.pages.free(current_pid);
                        self.root = None;
                        self.height = 0;
                    } else {
                        self.write_node(current_pid, &current);
                    }
                    break;
                }
                Some((ppid, idx)) => {
                    let mut parent = (*self.fetch(ppid)).clone();
                    if current.entries.len() < min_fill {
                        // Orphan the underfull node; its entries re-enter
                        // at their own level.
                        parent.entries.remove(idx);
                        let level = current.level;
                        orphans.extend(current.entries.drain(..).map(|e| (e, level)));
                        self.pages.free(current_pid);
                    } else {
                        self.write_node(current_pid, &current);
                        parent.entries[idx].mbr = current.mbr();
                    }
                    current = parent;
                    current_pid = ppid;
                }
            }
        }

        // Shrink the root while it is an internal node with a single child.
        while let Some(rpid) = self.root {
            let root_node = self.fetch(rpid);
            if root_node.is_leaf() || root_node.entries.len() != 1 {
                break;
            }
            let child = PageId(root_node.entries[0].child);
            self.pages.free(rpid);
            self.root = Some(child);
            self.height -= 1;
        }

        // Reinsert orphans (deepest levels first so the tree regrows from
        // the bottom). Each reinsertion may trigger forced reinserts and
        // splits of its own.
        orphans.sort_by_key(|&(_, level)| level);
        for (entry, level) in orphans {
            if self.root.is_none() {
                debug_assert_eq!(level, 0, "only leaf entries can seed an empty tree");
                let pid = self.alloc_page();
                self.write_node(
                    pid,
                    &crate::Node {
                        level: 0,
                        entries: vec![entry],
                    },
                );
                self.root = Some(pid);
                self.height = 1;
                continue;
            }
            let mut flags = vec![false; self.height as usize];
            let mut pending = vec![(entry, level)];
            while let Some((e, lvl)) = pending.pop() {
                self.insert_at_level(e, lvl, &mut flags, &mut pending);
            }
        }
        true
    }

    /// Depth-first search for a leaf entry matching `(mbr, oid)`; fills
    /// `path` with `(page, child index)` steps, the last being the leaf
    /// and the entry's index.
    fn find_leaf(
        &mut self,
        pid: PageId,
        mbr: &Rect<D>,
        oid: u64,
        path: &mut Vec<(PageId, usize)>,
    ) -> bool {
        let node = self.fetch(pid);
        if node.is_leaf() {
            if let Some(i) = node
                .entries
                .iter()
                .position(|e| e.child == oid && e.mbr == *mbr)
            {
                path.push((pid, i));
                return true;
            }
            return false;
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.mbr.contains_rect(mbr) {
                path.push((pid, i));
                if self.find_leaf(PageId(e.child), mbr, oid, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;
    use amdj_geom::Point;

    fn pt(x: f64, y: f64) -> Rect<2> {
        Rect::from_point(Point::new([x, y]))
    }

    fn grid_items(n: usize) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| (pt((i % n) as f64, (i / n) as f64), i as u64))
            .collect()
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), grid_items(5));
        assert!(!t.delete(&pt(100.0, 100.0), 0));
        assert!(!t.delete(&pt(0.0, 0.0), 999));
        assert_eq!(t.len(), 25);
        t.validate().expect("unchanged tree stays valid");
    }

    #[test]
    fn delete_single_object() {
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), grid_items(6));
        assert!(t.delete(&pt(2.0, 3.0), 3 * 6 + 2));
        assert_eq!(t.len(), 35);
        t.validate().expect("valid after delete");
        let hits = t.range_query(&pt(2.0, 3.0));
        assert!(hits.is_empty(), "deleted object must be gone");
    }

    #[test]
    fn delete_half_keeps_rest_findable() {
        let items = grid_items(12);
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
        for (mbr, id) in items.iter().filter(|(_, id)| id % 2 == 0) {
            assert!(t.delete(mbr, *id), "id {id}");
            t.validate()
                .unwrap_or_else(|e| panic!("after deleting {id}: {e:?}"));
        }
        assert_eq!(t.len(), 72);
        let found = t.range_query(&Rect::new([-1.0, -1.0], [20.0, 20.0]));
        assert_eq!(found.len(), 72);
        assert!(found.iter().all(|(id, _)| id % 2 == 1));
    }

    #[test]
    fn delete_everything_empties_the_tree() {
        let items = grid_items(8);
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
        for (mbr, id) in &items {
            assert!(t.delete(mbr, *id));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.root_page().is_none());
        t.validate().expect("empty tree is valid");
        // And it can be refilled.
        t.insert(pt(1.0, 1.0), 7);
        assert_eq!(t.len(), 1);
        t.validate().expect("refilled tree is valid");
    }

    #[test]
    fn height_shrinks_after_mass_deletion() {
        let items = grid_items(20);
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
        let tall = t.height();
        assert!(tall >= 3);
        for (mbr, id) in items.iter().take(390) {
            assert!(t.delete(mbr, *id));
        }
        t.validate().expect("valid after mass deletion");
        assert!(
            t.height() < tall,
            "height {} should shrink below {tall}",
            t.height()
        );
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn interleaved_insert_delete() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        // Deterministic churn: insert 3, delete 1, repeatedly.
        let mut live = Vec::new();
        let mut next_id = 0u64;
        for round in 0..300 {
            for _ in 0..3 {
                let mbr = pt((next_id % 31) as f64, ((next_id / 31) % 29) as f64);
                t.insert(mbr, next_id);
                live.push((mbr, next_id));
                next_id += 1;
            }
            let victim = live.remove((round * 7) % live.len());
            assert!(t.delete(&victim.0, victim.1));
        }
        assert_eq!(t.len() as usize, live.len());
        t.validate().expect("valid after churn");
        let found = t.range_query(&Rect::new([-1.0, -1.0], [40.0, 40.0]));
        assert_eq!(found.len(), live.len());
    }

    #[test]
    fn delete_rect_objects() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let rects: Vec<(Rect<2>, u64)> = (0..200)
            .map(|i| {
                let x = (i % 14) as f64;
                let y = (i / 14) as f64;
                (Rect::new([x, y], [x + 0.6, y + 0.9]), i)
            })
            .collect();
        for &(mbr, id) in &rects {
            t.insert(mbr, id);
        }
        for &(mbr, id) in rects.iter().step_by(3) {
            assert!(t.delete(&mbr, id));
        }
        t.validate().expect("valid");
        assert_eq!(t.len(), 200 - rects.iter().step_by(3).count() as u64);
    }

    #[test]
    fn duplicate_entries_removed_one_at_a_time() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for _ in 0..5 {
            t.insert(pt(3.0, 3.0), 42);
        }
        assert_eq!(t.len(), 5);
        for remaining in (0..5).rev() {
            assert!(t.delete(&pt(3.0, 3.0), 42));
            assert_eq!(t.len(), remaining);
        }
        assert!(!t.delete(&pt(3.0, 3.0), 42));
    }
}
