//! Classic single-index queries: range, within-distance, and best-first
//! k-nearest-neighbour search. These make the index usable on its own and
//! serve as correctness probes for the tree structure.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use amdj_geom::{Point, Rect};
use amdj_storage::PageId;

use crate::RTree;

/// One k-NN result: object id, its MBR, and its distance from the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<const D: usize> {
    /// Object id.
    pub oid: u64,
    /// Object MBR.
    pub mbr: Rect<D>,
    /// Minimum distance from the query point to the MBR.
    pub dist: f64,
}

enum HeapRef {
    Node(PageId),
    Object(u64),
}

struct HeapItem<const D: usize> {
    dist: f64,
    tie: u64,
    mbr: Rect<D>,
    target: HeapRef,
}

impl<const D: usize> PartialEq for HeapItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.dist.total_cmp(&other.dist) == Ordering::Equal && self.tie == other.tie
    }
}
impl<const D: usize> Eq for HeapItem<D> {}
impl<const D: usize> PartialOrd for HeapItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for HeapItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap semantics under std's max-heap; total_cmp keeps the
        // order total even if a NaN distance ever slips in.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

impl<const D: usize> RTree<D> {
    /// All objects whose MBRs intersect `query` (touching counts).
    pub fn range_query(&self, query: &Rect<D>) -> Vec<(u64, Rect<D>)> {
        let mut out = Vec::new();
        let Some(root) = self.root_page() else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            let node = self.fetch(pid);
            for e in &node.entries {
                if e.mbr.intersects(query) {
                    if node.is_leaf() {
                        out.push((e.child, e.mbr));
                    } else {
                        stack.push(PageId(e.child));
                    }
                }
            }
        }
        out
    }

    /// All objects whose MBRs lie within distance `dist` of `query`
    /// (boundary inclusive).
    pub fn within_distance(&self, query: &Rect<D>, dist: f64) -> Vec<(u64, Rect<D>)> {
        let mut out = Vec::new();
        let Some(root) = self.root_page() else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            let node = self.fetch(pid);
            for e in &node.entries {
                if e.mbr.min_dist(query) <= dist {
                    if node.is_leaf() {
                        out.push((e.child, e.mbr));
                    } else {
                        stack.push(PageId(e.child));
                    }
                }
            }
        }
        out
    }

    /// The `k` objects nearest to the point `query`, ascending by
    /// distance, by best-first (Hjaltason–Samet) traversal.
    pub fn nearest_neighbors(&self, query: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        self.nearest_neighbors_rect(&Rect::from_point(*query), k)
    }

    /// The `k` objects whose MBRs are nearest to the rectangle `query`
    /// (minimum MBR-to-MBR distance), ascending.
    pub fn nearest_neighbors_rect(&self, query: &Rect<D>, k: usize) -> Vec<Neighbor<D>> {
        let mut out = Vec::new();
        let Some(root) = self.root_page() else {
            return out;
        };
        if k == 0 {
            return out;
        }
        let q = *query;
        let mut tie = 0u64;
        let mut heap: BinaryHeap<HeapItem<D>> = BinaryHeap::new();
        let root_node = self.fetch(root);
        let root_mbr = root_node.mbr();
        heap.push(HeapItem {
            dist: root_mbr.min_dist(&q),
            tie,
            mbr: root_mbr,
            target: HeapRef::Node(root),
        });
        while let Some(item) = heap.pop() {
            match item.target {
                HeapRef::Object(oid) => {
                    out.push(Neighbor {
                        oid,
                        mbr: item.mbr,
                        dist: item.dist,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                HeapRef::Node(pid) => {
                    let node = self.fetch(pid);
                    for e in &node.entries {
                        tie += 1;
                        let target = if node.is_leaf() {
                            HeapRef::Object(e.child)
                        } else {
                            HeapRef::Node(PageId(e.child))
                        };
                        heap.push(HeapItem {
                            dist: e.mbr.min_dist(&q),
                            tie,
                            mbr: e.mbr,
                            target,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;

    fn grid_tree(n_side: usize) -> RTree<2> {
        let items: Vec<(Rect<2>, u64)> = (0..n_side * n_side)
            .map(|i| {
                let x = (i % n_side) as f64;
                let y = (i / n_side) as f64;
                (Rect::from_point(Point::new([x, y])), i as u64)
            })
            .collect();
        RTree::bulk_load(RTreeParams::for_tests(), items)
    }

    #[test]
    fn range_query_exact_window() {
        let t = grid_tree(20);
        let hits = t.range_query(&Rect::new([2.0, 3.0], [4.0, 5.0]));
        assert_eq!(hits.len(), 9, "3×3 grid points in the window");
    }

    #[test]
    fn range_query_misses_outside() {
        let t = grid_tree(10);
        assert!(t
            .range_query(&Rect::new([100.0, 100.0], [101.0, 101.0]))
            .is_empty());
    }

    #[test]
    fn within_distance_matches_brute_force() {
        let t = grid_tree(15);
        let q = Rect::from_point(Point::new([7.3, 7.9]));
        for dist in [0.5, 1.0, 2.5, 5.0] {
            let mut got: Vec<u64> = t
                .within_distance(&q, dist)
                .into_iter()
                .map(|h| h.0)
                .collect();
            got.sort_unstable();
            let mut want = Vec::new();
            for i in 0..15 * 15 {
                let p = Point::new([(i % 15) as f64, (i / 15) as f64]);
                if Rect::from_point(p).min_dist(&q) <= dist {
                    want.push(i as u64);
                }
            }
            assert_eq!(got, want, "dist = {dist}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let t = grid_tree(12);
        let q = Point::new([5.2, 6.8]);
        for k in [1, 3, 10, 50] {
            let got = t.nearest_neighbors(&q, k);
            assert_eq!(got.len(), k);
            // Ascending distances.
            assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
            // Same distance multiset as brute force.
            let mut want: Vec<f64> = (0..144)
                .map(|i| Point::new([(i % 12) as f64, (i / 12) as f64]).dist(&q))
                .collect();
            want.sort_unstable_by(f64::total_cmp);
            for (n, w) in got.iter().zip(want.iter()) {
                assert!((n.dist - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_dataset() {
        let t = grid_tree(3);
        let got = t.nearest_neighbors(&Point::new([0.0, 0.0]), 100);
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn queries_on_empty_tree() {
        let t: RTree<2> = RTree::new(RTreeParams::for_tests());
        assert!(t.range_query(&Rect::new([0.0, 0.0], [1.0, 1.0])).is_empty());
        assert!(t.nearest_neighbors(&Point::new([0.0, 0.0]), 5).is_empty());
        assert!(t
            .within_distance(&Rect::from_point(Point::new([0.0, 0.0])), 10.0)
            .is_empty());
    }

    #[test]
    fn knn_zero_k() {
        let t = grid_tree(5);
        assert!(t.nearest_neighbors(&Point::new([1.0, 1.0]), 0).is_empty());
    }
}
