use amdj_storage::CostModel;

/// Configuration of an [`crate::RTree`].
#[derive(Clone, Debug)]
pub struct RTreeParams {
    /// Node page size in bytes (paper: 4096).
    pub page_size: usize,
    /// Byte budget of the LRU node buffer (paper: 512 KB by default,
    /// 64 KB – 1024 KB in §5.5). Zero disables buffering entirely.
    pub buffer_bytes: usize,
    /// Minimum node fill as a fraction of capacity (R*: 0.4).
    pub min_fill_ratio: f64,
    /// Fraction of entries re-inserted by R* overflow treatment (0.3).
    pub reinsert_ratio: f64,
    /// I/O cost model for the tree's backing disk.
    pub cost: CostModel,
}

impl RTreeParams {
    /// The paper's configuration: 4 KB pages, 512 KB buffer, R* constants,
    /// 1999-era disk cost model.
    pub fn paper_defaults() -> Self {
        RTreeParams {
            page_size: 4096,
            buffer_bytes: 512 * 1024,
            min_fill_ratio: 0.4,
            reinsert_ratio: 0.3,
            cost: CostModel::paper_1999_disk(),
        }
    }

    /// Small pages and a small buffer; drives deep trees out of small data
    /// sets, which is what unit tests want.
    pub fn for_tests() -> Self {
        RTreeParams {
            page_size: 256,
            buffer_bytes: 4 * 256,
            min_fill_ratio: 0.4,
            reinsert_ratio: 0.3,
            cost: CostModel {
                page_size: 256,
                ..CostModel::free()
            },
        }
    }

    /// Maximum entries per node for dimension `D`.
    ///
    /// Node layout: 8-byte header, then per entry `2·D` coordinates
    /// (8 bytes each) plus an 8-byte child/object id.
    pub fn capacity<const D: usize>(&self) -> usize {
        let entry = 16 * D + 8;
        let cap = (self.page_size - 8) / entry;
        assert!(
            cap >= 4,
            "page size {} too small for 4 entries of dim {D}",
            self.page_size
        );
        cap
    }

    /// Minimum entries per non-root node for dimension `D`.
    pub fn min_fill<const D: usize>(&self) -> usize {
        ((self.capacity::<D>() as f64 * self.min_fill_ratio).floor() as usize).max(2)
    }

    /// Entries removed by a forced reinsert for dimension `D` (at least 1).
    pub fn reinsert_count<const D: usize>(&self) -> usize {
        ((self.capacity::<D>() as f64 * self.reinsert_ratio).floor() as usize).max(1)
    }
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_is_about_100() {
        let p = RTreeParams::paper_defaults();
        let cap = p.capacity::<2>();
        assert_eq!(cap, (4096 - 8) / 40);
        assert!(cap >= 100, "paper-like fanout, got {cap}");
        assert_eq!(p.min_fill::<2>(), (cap as f64 * 0.4) as usize);
    }

    #[test]
    fn capacity_scales_with_dimension() {
        let p = RTreeParams::paper_defaults();
        assert!(p.capacity::<3>() < p.capacity::<2>());
    }

    #[test]
    fn reinsert_count_at_least_one() {
        let mut p = RTreeParams::for_tests();
        p.reinsert_ratio = 0.0;
        assert_eq!(p.reinsert_count::<2>(), 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_rejected() {
        let mut p = RTreeParams::for_tests();
        p.page_size = 64;
        let _ = p.capacity::<2>();
    }
}
