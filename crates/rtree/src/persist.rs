//! Index persistence: save a built tree to a file (or any writer) and
//! load it back. The on-disk format is a small superblock followed by the
//! live page images — byte-for-byte what the virtual disk holds, so a
//! loaded tree is identical to the saved one (including the holes left by
//! deletions, which stay reusable).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "AMDJRT01" | dim u32 | page_size u32 | height u32 | pad u32
//! len u64 | root+1 u64 (0 = empty) | page_count u64
//! page_count × (page_id u64, image page_size bytes)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use amdj_storage::PageId;

use crate::{RTree, RTreeParams};

const MAGIC: &[u8; 8] = b"AMDJRT01";

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_exact_array<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

impl<const D: usize> RTree<D> {
    /// Serializes the tree to `w`. Statistics are not persisted.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(D as u32).to_le_bytes())?;
        w.write_all(&(self.params().page_size as u32).to_le_bytes())?;
        w.write_all(&self.height.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&self.len.to_le_bytes())?;
        w.write_all(&self.root.map_or(0, |p| p.0 + 1).to_le_bytes())?;
        let pages: Vec<(PageId, &[u8])> = self.pages.disk().live_page_images().collect();
        w.write_all(&(pages.len() as u64).to_le_bytes())?;
        for (pid, img) in pages {
            w.write_all(&pid.0.to_le_bytes())?;
            w.write_all(img)?;
        }
        Ok(())
    }

    /// Saves to a file (created or truncated).
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.save(&mut w)?;
        w.flush()
    }

    /// Loads a tree saved by [`save`](RTree::save). `params` supplies the
    /// runtime configuration (buffer size, cost model); its page size must
    /// match the saved one.
    pub fn load(r: &mut impl Read, params: RTreeParams) -> io::Result<Self> {
        let magic = read_exact_array::<8>(r)?;
        if &magic != MAGIC {
            return Err(bad("not an AMDJ R-tree file"));
        }
        let dim = u32::from_le_bytes(read_exact_array::<4>(r)?);
        if dim as usize != D {
            return Err(bad("dimension mismatch"));
        }
        let page_size = u32::from_le_bytes(read_exact_array::<4>(r)?) as usize;
        if page_size != params.page_size {
            return Err(bad("page size mismatch"));
        }
        let height = u32::from_le_bytes(read_exact_array::<4>(r)?);
        let _pad = read_exact_array::<4>(r)?;
        let len = u64::from_le_bytes(read_exact_array::<8>(r)?);
        let root_plus1 = u64::from_le_bytes(read_exact_array::<8>(r)?);
        let page_count = u64::from_le_bytes(read_exact_array::<8>(r)?);

        let mut tree = RTree::new(params);
        let mut img = vec![0u8; page_size];
        for _ in 0..page_count {
            let pid = u64::from_le_bytes(read_exact_array::<8>(r)?);
            r.read_exact(&mut img)?;
            tree.pages.disk_mut().restore_page(PageId(pid), &img);
        }
        tree.pages.disk_mut().finish_restore();
        tree.reset_stats();
        tree.root = if root_plus1 == 0 {
            None
        } else {
            Some(PageId(root_plus1 - 1))
        };
        tree.height = height;
        tree.len = len;
        if tree.root.is_some() != (len > 0) || (tree.root.is_none() && height != 0) {
            return Err(bad("inconsistent superblock"));
        }
        Ok(tree)
    }

    /// Loads from a file.
    pub fn load_from_path(path: impl AsRef<Path>, params: RTreeParams) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        RTree::load(&mut r, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdj_geom::{Point, Rect};

    fn grid(n: usize) -> Vec<(Rect<2>, u64)> {
        (0..n * n)
            .map(|i| {
                (
                    Rect::from_point(Point::new([(i % n) as f64, (i / n) as f64])),
                    i as u64,
                )
            })
            .collect()
    }

    fn roundtrip(t: &RTree<2>) -> RTree<2> {
        let mut buf = Vec::new();
        t.save(&mut buf).expect("save");
        RTree::load(&mut buf.as_slice(), t.params().clone()).expect("load")
    }

    #[test]
    fn save_load_roundtrip() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid(15));
        let back = roundtrip(&t);
        assert_eq!(back.len(), 225);
        assert_eq!(back.height(), t.height());
        back.validate().expect("loaded tree valid");
        let hits = back.range_query(&Rect::new([2.0, 2.0], [4.0, 4.0]));
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn roundtrip_after_deletions_preserves_holes() {
        let items = grid(12);
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
        for (mbr, id) in items.iter().take(80) {
            assert!(t.delete(mbr, *id));
        }
        let pages_before = t.page_count();
        let mut back = roundtrip(&t);
        back.validate()
            .expect("valid after loading a deleted-from tree");
        assert_eq!(back.len(), t.len());
        assert_eq!(back.page_count(), pages_before);
        // Inserting reuses freed slots rather than growing unboundedly.
        back.insert(Rect::from_point(Point::new([50.0, 50.0])), 9999);
        back.validate().expect("valid after post-load insert");
    }

    #[test]
    fn empty_tree_roundtrip() {
        let t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let back = roundtrip(&t);
        assert!(back.is_empty());
        assert!(back
            .range_query(&Rect::new([0.0, 0.0], [1.0, 1.0]))
            .is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("amdj_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.amdj");
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid(10));
        t.save_to_path(&path).expect("save file");
        let back: RTree<2> =
            RTree::load_from_path(&path, RTreeParams::for_tests()).expect("load file");
        back.validate().expect("valid");
        assert_eq!(back.len(), 100);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut data = b"NOTATREE".to_vec();
        data.extend_from_slice(&[0u8; 64]);
        let err = RTree::<2>::load(&mut data.as_slice(), RTreeParams::for_tests()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid(5));
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let err = RTree::<3>::load(&mut buf.as_slice(), RTreeParams::for_tests()).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn rejects_page_size_mismatch() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid(5));
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let other = RTreeParams::paper_defaults();
        let err = RTree::<2>::load(&mut buf.as_slice(), other).unwrap_err();
        assert!(err.to_string().contains("page size"));
    }

    #[test]
    fn rejects_truncated_file() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid(8));
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(RTree::<2>::load(&mut buf.as_slice(), RTreeParams::for_tests()).is_err());
    }

    #[test]
    fn loaded_tree_joins_identically() {
        // End-to-end: a saved+loaded index must answer queries exactly as
        // the original.
        let a = grid(10);
        let t = RTree::bulk_load(RTreeParams::for_tests(), a);
        let orig = roundtrip(&t);
        let reloaded = roundtrip(&t);
        let q = Point::new([4.3, 4.7]);
        let x = orig.nearest_neighbors(&q, 7);
        let y = reloaded.nearest_neighbors(&q, 7);
        for (g, w) in x.iter().zip(y.iter()) {
            assert_eq!(g.oid, w.oid);
        }
    }
}
