use amdj_geom::Rect;
use amdj_storage::codec::{put_f64, put_u32, put_u64, put_u8, Reader};

/// One slot of an R-tree node.
///
/// At level 0 (leaves) `child` is an **object id**; above level 0 it is the
/// **page id** of the child node. The `mbr` tightly bounds the object or
/// the child subtree respectively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<const D: usize> {
    /// Minimum bounding rectangle of the object / subtree.
    pub mbr: Rect<D>,
    /// Object id (leaf) or child page id (internal).
    pub child: u64,
}

/// An R-tree node: its level (0 = leaf) and its entries.
#[derive(Clone, Debug, PartialEq)]
pub struct Node<const D: usize> {
    /// 0 for leaves, parents of leaves are 1, and so on.
    pub level: u32,
    /// The node's entries, at most [`crate::RTreeParams::capacity`] many.
    pub entries: Vec<Entry<D>>,
}

impl<const D: usize> Node<D> {
    /// Creates an empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// Whether this node's entries reference objects.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The tight bounding rectangle of all entries.
    ///
    /// Panics on an empty node (an empty node has no MBR).
    pub fn mbr(&self) -> Rect<D> {
        let mut it = self.entries.iter();
        let first = it.next().expect("mbr of empty node").mbr;
        it.fold(first, |acc, e| acc.union(&e.mbr))
    }

    /// Serializes the node. Layout (little-endian):
    /// `level: u8`, 3 pad bytes, `count: u32`, then per entry
    /// `lo[0..D], hi[0..D]: f64` and `child: u64`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, u8::try_from(self.level).expect("level fits u8"));
        out.extend_from_slice(&[0, 0, 0]);
        put_u32(out, self.entries.len() as u32);
        for e in &self.entries {
            for d in 0..D {
                put_f64(out, e.mbr.lo()[d]);
            }
            for d in 0..D {
                put_f64(out, e.mbr.hi()[d]);
            }
            put_u64(out, e.child);
        }
    }

    /// Deserializes a node from a page image produced by
    /// [`encode`](Node::encode).
    pub fn decode(buf: &[u8]) -> Self {
        let mut r = Reader::new(buf);
        let level = r.u8() as u32;
        let _ = r.u8();
        let _ = r.u8();
        let _ = r.u8();
        let count = r.u32() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for slot in lo.iter_mut() {
                *slot = r.f64();
            }
            for slot in hi.iter_mut() {
                *slot = r.f64();
            }
            let child = r.u64();
            entries.push(Entry {
                mbr: Rect::new(lo, hi),
                child,
            });
        }
        Node { level, entries }
    }

    /// Encoded size in bytes for `n` entries of dimension `D`.
    pub fn encoded_len(n: usize) -> usize {
        8 + n * (16 * D + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Node<2> {
        Node {
            level: 3,
            entries: vec![
                Entry {
                    mbr: Rect::new([0.0, 1.0], [2.0, 3.0]),
                    child: 42,
                },
                Entry {
                    mbr: Rect::new([-5.5, -1.0], [0.0, 0.5]),
                    child: u64::MAX,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let node = sample();
        let mut buf = Vec::new();
        node.encode(&mut buf);
        assert_eq!(buf.len(), Node::<2>::encoded_len(2));
        let back = Node::<2>::decode(&buf);
        assert_eq!(back, node);
    }

    #[test]
    fn empty_node_roundtrip() {
        let node: Node<2> = Node::new(0);
        let mut buf = Vec::new();
        node.encode(&mut buf);
        let back = Node::<2>::decode(&buf);
        assert_eq!(back.level, 0);
        assert!(back.entries.is_empty());
    }

    #[test]
    fn decode_tolerates_page_padding() {
        // Pages are zero-padded past the encoded bytes; decode must stop at
        // `count` entries.
        let node = sample();
        let mut buf = Vec::new();
        node.encode(&mut buf);
        buf.resize(4096, 0);
        assert_eq!(Node::<2>::decode(&buf), node);
    }

    #[test]
    fn mbr_is_union() {
        let node = sample();
        assert_eq!(node.mbr(), Rect::new([-5.5, -1.0], [2.0, 3.0]));
    }

    #[test]
    fn leaf_flag() {
        assert!(Node::<2>::new(0).is_leaf());
        assert!(!Node::<2>::new(1).is_leaf());
    }

    #[test]
    #[should_panic(expected = "empty node")]
    fn mbr_of_empty_panics() {
        let _ = Node::<2>::new(0).mbr();
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let node: Node<3> = Node {
            level: 1,
            entries: vec![Entry {
                mbr: Rect::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]),
                child: 7,
            }],
        };
        let mut buf = Vec::new();
        node.encode(&mut buf);
        assert_eq!(Node::<3>::decode(&buf), node);
    }
}
