//! R*-tree insertion: ChooseSubtree, forced reinsert, and the R* split
//! (Beckmann et al., SIGMOD 1990) — the index construction path the paper
//! assumes for its R*-trees.

use amdj_geom::Rect;
use amdj_storage::PageId;

use crate::{Entry, Node, RTree};

impl<const D: usize> RTree<D> {
    /// Inserts one object by full R* insertion.
    pub fn insert(&mut self, mbr: Rect<D>, oid: u64) {
        self.len += 1;
        let entry = Entry { mbr, child: oid };
        if self.root.is_none() {
            let pid = self.alloc_page();
            self.write_node(
                pid,
                &Node {
                    level: 0,
                    entries: vec![entry],
                },
            );
            self.root = Some(pid);
            self.height = 1;
            return;
        }
        // Forced reinsert fires at most once per level per insert operation.
        let mut reinserted = vec![false; self.height as usize];
        let mut pending: Vec<(Entry<D>, u32)> = vec![(entry, 0)];
        while let Some((e, lvl)) = pending.pop() {
            self.insert_at_level(e, lvl, &mut reinserted, &mut pending);
        }
    }

    pub(crate) fn insert_at_level(
        &mut self,
        entry: Entry<D>,
        target_level: u32,
        reinserted: &mut Vec<bool>,
        pending: &mut Vec<(Entry<D>, u32)>,
    ) {
        // Descend from the root to the target level, recording the path.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut pid = self.root.expect("insert_at_level needs a root");
        let mut node = (*self.fetch(pid)).clone();
        while node.level > target_level {
            let idx = choose_subtree(&node, &entry.mbr);
            path.push((pid, idx));
            pid = PageId(node.entries[idx].child);
            node = (*self.fetch(pid)).clone();
        }
        debug_assert_eq!(node.level, target_level, "tree levels must be consecutive");
        node.entries.push(entry);

        // Unwind, treating overflows on the way up.
        let cap = self.params().capacity::<D>();
        let min_fill = self.params().min_fill::<D>();
        let reinsert_n = self.params().reinsert_count::<D>();
        let mut carry: Option<Entry<D>> = None;
        loop {
            let is_root = path.is_empty();
            if node.entries.len() > cap {
                let lvl = node.level as usize;
                if !is_root && !reinserted[lvl] {
                    reinserted[lvl] = true;
                    for e in pick_reinsert(&mut node, reinsert_n) {
                        pending.push((e, node.level));
                    }
                } else {
                    let (keep, split_off) =
                        rstar_split(std::mem::take(&mut node.entries), min_fill);
                    node.entries = keep;
                    let sibling = Node {
                        level: node.level,
                        entries: split_off,
                    };
                    let spid = self.alloc_page();
                    let smbr = sibling.mbr();
                    self.write_node(spid, &sibling);
                    carry = Some(Entry {
                        mbr: smbr,
                        child: spid.0,
                    });
                }
            }
            self.write_node(pid, &node);
            let node_mbr = node.mbr();
            match path.pop() {
                None => {
                    if let Some(c) = carry.take() {
                        // Root split: grow the tree by one level.
                        let new_root = Node {
                            level: node.level + 1,
                            entries: vec![
                                Entry {
                                    mbr: node_mbr,
                                    child: pid.0,
                                },
                                c,
                            ],
                        };
                        let rpid = self.alloc_page();
                        self.write_node(rpid, &new_root);
                        self.root = Some(rpid);
                        self.height += 1;
                        // The new top level never force-reinserts (it only
                        // holds the root).
                        reinserted.push(true);
                    }
                    return;
                }
                Some((ppid, idx)) => {
                    let mut parent = (*self.fetch(ppid)).clone();
                    parent.entries[idx].mbr = node_mbr;
                    if let Some(c) = carry.take() {
                        parent.entries.push(c);
                    }
                    pid = ppid;
                    node = parent;
                }
            }
        }
    }
}

/// R* ChooseSubtree: for parents of leaves, minimize overlap enlargement
/// (ties: area enlargement, then area); above that, minimize area
/// enlargement (ties: area).
fn choose_subtree<const D: usize>(node: &Node<D>, mbr: &Rect<D>) -> usize {
    debug_assert!(!node.entries.is_empty());
    if node.level == 1 {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let enlarged = e.mbr.union(mbr);
            let mut overlap_delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if i != j {
                    overlap_delta +=
                        enlarged.overlap_area(&other.mbr) - e.mbr.overlap_area(&other.mbr);
                }
            }
            let key = (overlap_delta, e.mbr.enlargement(mbr), e.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let key = (e.mbr.enlargement(mbr), e.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// Removes the `n` entries whose centers lie farthest from the node's MBR
/// center, returning them in *increasing* distance order ("close reinsert",
/// which Beckmann et al. found best); the stack-based driver then reinserts
/// the closest last-removed entry first.
fn pick_reinsert<const D: usize>(node: &mut Node<D>, n: usize) -> Vec<Entry<D>> {
    let center = node.mbr().center();
    let mut tagged: Vec<(f64, Entry<D>)> = node
        .entries
        .drain(..)
        .map(|e| (e.mbr.center().dist_sq(&center), e))
        .collect();
    // Ascending by distance; the tail is removed.
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0));
    let keep_n = tagged.len() - n.min(tagged.len() - 1);
    let removed: Vec<Entry<D>> = tagged
        .split_off(keep_n)
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    node.entries = tagged.into_iter().map(|(_, e)| e).collect();
    removed
}

/// The R* split: choose the split axis by minimum margin sum over all
/// allowed distributions, then the distribution with minimum overlap
/// (ties: minimum combined area).
fn rstar_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min_fill: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let total = entries.len();
    debug_assert!(
        total >= 2 * min_fill,
        "split needs at least 2·min_fill entries"
    );

    // For each axis, two sort orders (by lo and by hi).
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin = 0.0;
        for by_hi in [false, true] {
            let sorted = sorted_entries(&entries, axis, by_hi);
            let (prefix, suffix) = boundary_mbrs(&sorted);
            for k in min_fill..=(total - min_fill) {
                margin += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    let mut best: Option<(f64, f64, Vec<Entry<D>>, usize)> = None;
    for by_hi in [false, true] {
        let sorted = sorted_entries(&entries, best_axis, by_hi);
        let (prefix, suffix) = boundary_mbrs(&sorted);
        for k in min_fill..=(total - min_fill) {
            let overlap = prefix[k - 1].overlap_area(&suffix[k]);
            let area = prefix[k - 1].area() + suffix[k].area();
            let better = match &best {
                None => true,
                Some((o, a, _, _)) => (overlap, area) < (*o, *a),
            };
            if better {
                best = Some((overlap, area, sorted.clone(), k));
            }
        }
    }
    let (_, _, sorted, k) = best.expect("at least one distribution");
    let mut left = sorted;
    let right = left.split_off(k);
    (left, right)
}

fn sorted_entries<const D: usize>(entries: &[Entry<D>], axis: usize, by_hi: bool) -> Vec<Entry<D>> {
    let mut v = entries.to_vec();
    v.sort_by(|a, b| {
        let (x, y) = if by_hi {
            (a.mbr.hi()[axis], b.mbr.hi()[axis])
        } else {
            (a.mbr.lo()[axis], b.mbr.lo()[axis])
        };
        x.total_cmp(&y)
    });
    v
}

/// `prefix[i]` bounds entries `0..=i`; `suffix[i]` bounds entries `i..`.
fn boundary_mbrs<const D: usize>(sorted: &[Entry<D>]) -> (Vec<Rect<D>>, Vec<Rect<D>>) {
    let n = sorted.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = sorted[0].mbr;
    for e in sorted {
        acc.union_assign(&e.mbr);
        prefix.push(acc);
    }
    let mut suffix = vec![sorted[n - 1].mbr; n];
    let mut acc = sorted[n - 1].mbr;
    for i in (0..n).rev() {
        acc.union_assign(&sorted[i].mbr);
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;
    use amdj_geom::Point;

    fn pt(x: f64, y: f64) -> Rect<2> {
        Rect::from_point(Point::new([x, y]))
    }

    #[test]
    fn single_insert_creates_root() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        t.insert(pt(1.0, 2.0), 7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.bounds().unwrap(), pt(1.0, 2.0));
        t.validate().expect("valid");
    }

    #[test]
    fn many_inserts_stay_valid() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for i in 0..2000u64 {
            let x = ((i * 7919) % 1000) as f64;
            let y = ((i * 104729) % 1000) as f64;
            t.insert(pt(x, y), i);
        }
        assert_eq!(t.len(), 2000);
        assert!(t.height() >= 3, "height = {}", t.height());
        t.validate().expect("valid after many inserts");
    }

    #[test]
    fn clustered_inserts_stay_valid() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let mut id = 0;
        for c in 0..10 {
            let cx = (c * 137) as f64;
            for i in 0..150 {
                t.insert(pt(cx + (i % 13) as f64 * 0.1, (i % 17) as f64 * 0.1), id);
                id += 1;
            }
        }
        t.validate().expect("valid clustered tree");
        assert_eq!(t.len(), 1500);
    }

    #[test]
    fn inserted_objects_are_all_findable() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        let n = 800u64;
        for i in 0..n {
            t.insert(pt((i % 29) as f64, (i % 31) as f64), i);
        }
        let found = t.range_query(&Rect::new([-1.0, -1.0], [40.0, 40.0]));
        assert_eq!(found.len(), n as usize);
        let mut ids: Vec<u64> = found.into_iter().map(|f| f.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_positions_are_kept() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for i in 0..100 {
            t.insert(pt(5.0, 5.0), i);
        }
        assert_eq!(t.len(), 100);
        t.validate().expect("valid with duplicates");
        let found = t.range_query(&pt(5.0, 5.0));
        assert_eq!(found.len(), 100);
    }

    #[test]
    fn rects_not_just_points() {
        let mut t: RTree<2> = RTree::new(RTreeParams::for_tests());
        for i in 0..300u64 {
            let x = (i % 20) as f64 * 3.0;
            let y = (i / 20) as f64 * 3.0;
            t.insert(Rect::new([x, y], [x + 2.5, y + 1.5]), i);
        }
        t.validate().expect("valid rect tree");
        let hits = t.range_query(&Rect::new([0.0, 0.0], [2.0, 2.0]));
        assert!(hits.iter().any(|h| h.0 == 0));
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<Entry<2>> = (0..11)
            .map(|i| Entry {
                mbr: pt(i as f64, 0.0),
                child: i,
            })
            .collect();
        let (a, b) = rstar_split(entries, 4);
        assert!(a.len() >= 4 && b.len() >= 4);
        assert_eq!(a.len() + b.len(), 11);
        // Points on a line split cleanly: no overlap between halves.
        let am: Rect<2> = a.iter().skip(1).fold(a[0].mbr, |acc, e| acc.union(&e.mbr));
        let bm: Rect<2> = b.iter().skip(1).fold(b[0].mbr, |acc, e| acc.union(&e.mbr));
        assert_eq!(am.overlap_area(&bm), 0.0);
    }

    #[test]
    fn reinsert_removes_farthest() {
        let mut node: Node<2> = Node {
            level: 0,
            entries: vec![],
        };
        for i in 0..10 {
            node.entries.push(Entry {
                mbr: pt(i as f64, 0.0),
                child: i,
            });
        }
        // Center x = 4.5; farthest are 0 and 9, then 1 and 8.
        let removed = pick_reinsert(&mut node, 2);
        let mut ids: Vec<u64> = removed.iter().map(|e| e.child).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 9]);
        assert_eq!(node.entries.len(), 8);
    }

    #[test]
    fn mixed_bulk_and_insert() {
        let pts: Vec<(Rect<2>, u64)> = (0..500)
            .map(|i| (pt((i % 50) as f64, (i / 50) as f64), i))
            .collect();
        let mut t = RTree::bulk_load(RTreeParams::for_tests(), pts);
        for i in 500..700u64 {
            t.insert(pt((i % 50) as f64 + 0.5, (i % 10) as f64 + 0.5), i);
        }
        assert_eq!(t.len(), 700);
        t.validate().expect("valid mixed tree");
    }
}
