//! STR (Sort-Tile-Recursive) bulk loading.
//!
//! The experiments build their indexes up front from full data sets, for
//! which STR packing produces well-clustered, nearly full nodes with
//! contiguous page allocation per level — so level-order scans are
//! sequential on the virtual disk, like a freshly built index file.

use amdj_geom::Rect;

use crate::{Entry, Node, RTree, RTreeParams};

impl<const D: usize> RTree<D> {
    /// Builds a tree from `(object MBR, object id)` pairs by STR packing.
    ///
    /// Duplicate object ids are permitted (the tree never interprets them).
    pub fn bulk_load(params: RTreeParams, items: Vec<(Rect<D>, u64)>) -> Self {
        let mut tree = RTree::new(params);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len() as u64;
        let cap = tree.params().capacity::<D>();

        // Build level 0 from the objects, then pack each level's nodes into
        // the next until one node remains: the root.
        let mut level_items: Vec<(Rect<D>, u64)> = items;
        let mut level: u32 = 0;
        loop {
            let nodes = pack_level(&mut level_items, cap);
            let single = nodes.len() == 1;
            let mut next: Vec<(Rect<D>, u64)> = Vec::with_capacity(nodes.len());
            for entries in nodes {
                let node = Node { level, entries };
                let mbr = node.mbr();
                let pid = tree.alloc_page();
                tree.write_node(pid, &node);
                next.push((mbr, pid.0));
            }
            if single {
                tree.root = Some(amdj_storage::PageId(next[0].1));
                tree.height = level + 1;
                break;
            }
            level_items = next;
            level += 1;
        }
        tree.reset_stats();
        tree
    }
}

/// Orders `items` by STR tiling and cuts them into balanced chunks of at
/// most `cap` entries (all chunks within a factor ~1 of each other, so the
/// R* minimum fill holds whenever more than one node is needed).
fn pack_level<const D: usize>(items: &mut [(Rect<D>, u64)], cap: usize) -> Vec<Vec<Entry<D>>> {
    str_order(items, 0, cap);
    let n = items.len();
    let chunks = n.div_ceil(cap);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut idx = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        let entries = items[idx..idx + size]
            .iter()
            .map(|&(mbr, child)| Entry { mbr, child })
            .collect();
        out.push(entries);
        idx += size;
    }
    debug_assert_eq!(idx, n);
    out
}

/// Recursive STR ordering: sort by center along `dim`, slice into slabs,
/// recurse on the remaining dimensions within each slab.
fn str_order<const D: usize>(items: &mut [(Rect<D>, u64)], dim: usize, cap: usize) {
    let n = items.len();
    if n <= cap || dim + 1 >= D {
        items.sort_by(|a, b| center(&a.0, dim.min(D - 1)).total_cmp(&center(&b.0, dim.min(D - 1))));
        return;
    }
    items.sort_by(|a, b| center(&a.0, dim).total_cmp(&center(&b.0, dim)));
    let pages = n.div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / (D - dim) as f64).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut idx = 0;
    while idx < n {
        let end = (idx + slab_size).min(n);
        str_order(&mut items[idx..end], dim + 1, cap);
        idx = end;
    }
}

fn center<const D: usize>(r: &Rect<D>, dim: usize) -> f64 {
    0.5 * (r.lo()[dim] + r.hi()[dim])
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdj_geom::Point;

    fn grid_points(n_side: usize) -> Vec<(Rect<2>, u64)> {
        let mut v = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let p = Point::new([i as f64, j as f64]);
                v.push((Rect::from_point(p), (i * n_side + j) as u64));
            }
        }
        v
    }

    #[test]
    fn builds_single_leaf_for_tiny_input() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid_points(2));
        assert_eq!(t.len(), 4);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn builds_multi_level_tree() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid_points(40));
        assert_eq!(t.len(), 1600);
        assert!(t.height() >= 2, "height = {}", t.height());
        assert_eq!(t.bounds().unwrap(), Rect::new([0.0, 0.0], [39.0, 39.0]));
        t.validate().expect("valid tree");
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let t: RTree<2> = RTree::bulk_load(RTreeParams::for_tests(), vec![]);
        assert!(t.is_empty());
    }

    #[test]
    fn stats_reset_after_build() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid_points(20));
        assert_eq!(t.access_stats(), crate::AccessStats::default());
        assert_eq!(t.disk_stats().total_ios(), 0);
    }

    #[test]
    fn all_objects_reachable() {
        let t = RTree::bulk_load(RTreeParams::for_tests(), grid_points(15));
        let found = t.range_query(&Rect::new([-1.0, -1.0], [20.0, 20.0]));
        assert_eq!(found.len(), 225);
        let mut ids: Vec<u64> = found.iter().map(|f| f.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 225, "no duplicates, none missing");
    }

    #[test]
    fn respects_min_fill_everywhere() {
        for n in [5usize, 6, 7, 13, 50, 333, 1000] {
            let pts: Vec<(Rect<2>, u64)> = (0..n)
                .map(|i| {
                    (
                        Rect::from_point(Point::new([(i % 97) as f64, (i / 97) as f64])),
                        i as u64,
                    )
                })
                .collect();
            let t = RTree::bulk_load(RTreeParams::for_tests(), pts);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e:?}"));
        }
    }

    #[test]
    fn three_dimensional_build() {
        let pts: Vec<(Rect<3>, u64)> = (0..500)
            .map(|i| {
                let f = i as f64;
                (
                    Rect::from_point(Point::new([f % 8.0, (f / 8.0) % 8.0, f / 64.0])),
                    i as u64,
                )
            })
            .collect();
        let t = RTree::bulk_load(RTreeParams::for_tests(), pts);
        assert_eq!(t.len(), 500);
        t.validate().expect("valid 3-D tree");
    }
}
